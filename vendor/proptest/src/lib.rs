//! Minimal offline drop-in for the `proptest` surface this workspace
//! uses: the `proptest!` macro, range/tuple/collection strategies,
//! `any`, `prop_map`/`prop_flat_map`, `prop_assume!` and the
//! `prop_assert*` family. No shrinking: a failing case panics with the
//! failure message (inputs are printed via the assert messages).

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...)` block
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; one test item per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            $crate::test_runner::run_cases(
                &__config,
                &__strategy,
                stringify!($name),
                |($($pat,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items!{ @cfg($cfg) $($rest)* }
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fail the current case unless the operands differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}
