//! Case runner and configuration.

use crate::strategy::Strategy;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The inputs did not satisfy a `prop_assume!` precondition.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Deterministic RNG used by strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Hash a test name into an RNG seed so different tests explore
/// different sequences while staying reproducible run to run.
fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Drive `case` over generated inputs until `config.cases` successes.
///
/// # Panics
/// Panics on the first failing case, or when rejection (via
/// `prop_assume!`) starves the run.
pub fn run_cases<S, F>(config: &ProptestConfig, strategy: &S, name: &str, mut case: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(seed_for(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    while passed < config.cases {
        match case(strategy.generate(&mut rng)) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{name}: too many rejected cases ({rejected}) for {} successes",
                        passed
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed after {passed} passing case(s)\n{msg}");
            }
        }
    }
}
