//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Admissible sizes for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`
/// (best effort: stops early if the element domain is exhausted).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 10 + 16 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
