//! `any::<T>()` support.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
