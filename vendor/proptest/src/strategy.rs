//! Strategies: deterministic pseudo-random value generators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A generator of values of one type.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}
