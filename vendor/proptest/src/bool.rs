//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy generating fair booleans.
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

/// The canonical boolean strategy (`proptest::bool::ANY`).
pub const ANY: BoolAny = BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
