//! Minimal offline drop-in for the `criterion` surface this workspace
//! uses: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`.
//!
//! Measurement is a simple calibrated loop (median-free mean over a
//! bounded window) — adequate for relative comparisons in an offline
//! environment, not a statistics engine. `--test` runs every benchmark
//! body exactly once, which is what CI smoke uses; a positional filter
//! restricts by substring like real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of one benchmark, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher<'a> {
    mode: &'a RunMode,
    /// (iterations, total) recorded by `iter`.
    sample: Option<(u64, Duration)>,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly and record its mean time.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        match self.mode {
            RunMode::Test => {
                black_box(routine());
                self.sample = Some((1, Duration::ZERO));
            }
            RunMode::Measure { window } => {
                // Warm-up + calibration round.
                let t0 = Instant::now();
                black_box(routine());
                let once = t0.elapsed().max(Duration::from_nanos(1));
                let budget = (*window / 10).max(Duration::from_millis(20));
                let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
                let t1 = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                self.sample = Some((iters, t1.elapsed()));
            }
        }
    }
}

#[derive(Debug, Clone)]
enum RunMode {
    /// Run every routine once, no timing (`--test`).
    Test,
    /// Measure within roughly this time window per benchmark.
    Measure { window: Duration },
}

/// Top-level benchmark harness state.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Set the nominal sample count (kept for API compatibility; the
    /// shim derives its iteration count from the time window).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "criterion requires sample_size >= 10");
        self.sample_size = n;
        self
    }

    /// Set the per-benchmark measurement window.
    pub fn measurement_time(mut self, window: Duration) -> Self {
        self.measurement_time = window;
        self
    }

    /// Apply command-line arguments (`--test`, positional filter;
    /// cargo's own `--bench` marker is ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" | "-t" => self.test_mode = true,
                "--bench" | "--profile-time" => {}
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--sample-size" | "--warm-up-time" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_owned()),
            }
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let id = id.into();
        let name = id.text.clone();
        run_one(self, &name, None, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the group's measurement window.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.criterion.measurement_time = window;
        self
    }

    /// Override the group's nominal sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().text);
        run_one(self.criterion, &full, self.throughput, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one(
    criterion: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher<'_>),
) {
    if let Some(filter) = &criterion.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mode = if criterion.test_mode {
        RunMode::Test
    } else {
        RunMode::Measure {
            window: criterion.measurement_time,
        }
    };
    let mut bencher = Bencher {
        mode: &mode,
        sample: None,
    };
    f(&mut bencher);
    match (criterion.test_mode, bencher.sample) {
        (true, _) => println!("test {name} ... ok"),
        (false, Some((iters, total))) => {
            let per_iter = total.as_secs_f64() / iters as f64;
            let rate = throughput.map(|t| match t {
                Throughput::Bytes(b) => {
                    format!(", {:.3} GiB/s", b as f64 / per_iter / (1u64 << 30) as f64)
                }
                Throughput::Elements(e) => {
                    format!(", {:.3} Melem/s", e as f64 / per_iter / 1e6)
                }
            });
            println!(
                "{name}: {:.3} ms/iter ({iters} iters{})",
                per_iter * 1e3,
                rate.unwrap_or_default()
            );
        }
        (false, None) => println!("{name}: no sample recorded"),
    }
}

/// Declare a named group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Produce a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
