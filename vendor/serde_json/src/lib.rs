//! Minimal offline drop-in for `serde_json`, backed by the vendored
//! `serde` shim's [`Value`] tree: `to_string` / `from_str` / `to_value` /
//! `from_value` / `json!`, with a compact writer and a recursive-descent
//! parser.

use serde::de::Error as DeError;
use serde::ser::{Error as SerError, SerializeSeq, SerializeStruct};
use serde::{Serialize, Serializer};
use std::fmt;

pub use serde::value::Value;

/// Error type for all serde_json shim operations.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl SerError for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl DeError for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Build a [`Value`] from a literal (the subset of `serde_json::json!`
/// this workspace uses).
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

/// Serialize `value` into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(to_value(value)?.to_string())
}

/// Deserialize a `T` from a [`Value`] tree.
pub fn from_value<T: serde::DeserializeOwned>(value: Value) -> Result<T, Error> {
    serde::de::from_value(value)
}

/// Parse JSON text and deserialize a `T` from it.
pub fn from_str<T: serde::DeserializeOwned>(s: &str) -> Result<T, Error> {
    from_value(parse(s)?)
}

// ---------------------------------------------------------------- ser --

/// [`Serializer`] producing a [`Value`] tree.
struct ValueSerializer;

/// Sequence builder for [`ValueSerializer`].
struct SeqBuilder(Vec<Value>);

/// Struct builder for [`ValueSerializer`].
struct StructBuilder(Vec<(String, Value)>);

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = SeqBuilder;
    type SerializeStruct = StructBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(if v >= 0 {
            Value::U64(v as u64)
        } else {
            Value::I64(v)
        })
    }
    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::U64(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::F64(v))
    }
    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::Str(v.to_owned()))
    }
    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<SeqBuilder, Error> {
        Ok(SeqBuilder(Vec::with_capacity(len.unwrap_or(0))))
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<StructBuilder, Error> {
        Ok(StructBuilder(Vec::with_capacity(len)))
    }
}

impl SerializeSeq for SeqBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.0.push(value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Seq(self.0))
    }
}

impl SerializeStruct for StructBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_dynamic_field<T: Serialize + ?Sized>(
        &mut self,
        name: &str,
        value: &T,
    ) -> Result<(), Error> {
        self.0
            .push((name.to_owned(), value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(Value::Map(self.0))
    }
}

// ------------------------------------------------------------- parser --

/// Parse one JSON document.
fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // shim's writer; reject rather than mangle.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("unsupported \\u escape".into()))?,
                            );
                        }
                        _ => return Err(Error("unknown escape".into())),
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let ch_len = utf8_len(rest[0]);
                    let chunk = rest
                        .get(..ch_len)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?,
                    );
                    self.pos = start + ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|n| Value::I64(-n))
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }
}

/// Length in bytes of the UTF-8 sequence starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::F64(0.5)),
            ("d".into(), Value::Str("x\"y\n".into())),
            ("e".into(), Value::I64(-3)),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn index_and_assign() {
        let mut v = parse(r#"{"r": 8}"#).unwrap();
        assert_eq!(v["r"], Value::U64(8));
        v["r"] = json!(12345);
        assert_eq!(v["r"].as_u64(), Some(12345));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn typed_roundtrip() {
        let n: u32 = from_str("42").unwrap();
        assert_eq!(n, 42);
        let xs: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        assert!(from_str::<u32>("\"nope\"").is_err());
    }
}
