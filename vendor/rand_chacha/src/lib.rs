//! Minimal offline drop-in for `rand_chacha`: a real ChaCha8 stream
//! cipher driving the vendored `rand` traits. Deterministic across
//! platforms; not guaranteed bit-identical to the crates.io crate.

use rand::{RngCore, SeedableRng};

/// The ChaCha stream cipher with 8 rounds, as a PRNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key words.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generate the block for the current counter into `self.block`.
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CHACHA_CONST[0],
            CHACHA_CONST[1],
            CHACHA_CONST[2],
            CHACHA_CONST[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(initial) {
            *s = s.wrapping_add(i);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.block[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    /// Key = the seed in the first two words (little endian), zero
    /// elsewhere — mirroring `rand`'s `seed_from_u64` convention of a
    /// seed-derived fixed key.
    fn seed_from_u64(state: u64) -> Self {
        let mut key = [0u32; 8];
        key[0] = state as u32;
        key[1] = (state >> 32) as u32;
        // Mix the seed through the remaining words so nearby seeds
        // produce unrelated streams.
        let mut x = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for k in key.iter_mut().skip(2) {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            *k = x as u32;
        }
        let mut rng = ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            idx: 16,
        };
        rng.refill();
        rng.idx = 0;
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_and_ranges_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let r = rng.random_range(5u32..17);
            assert!((5..17).contains(&r));
        }
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64,000 bits, expect ~32,000 set; allow a wide band.
        assert!((30_000..34_000).contains(&ones), "ones={ones}");
    }
}
