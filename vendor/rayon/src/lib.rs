//! Minimal offline drop-in for the `rayon` surface this workspace uses.
//!
//! Parallel iterators are modeled as an eagerly materialized item list
//! plus one lazy `map` stage; terminal operations (`for_each`, `map`,
//! `sum`, `reduce`, `collect`) execute the expensive closure across
//! scoped OS threads, split into contiguous order-preserving chunks.
//! `ThreadPool::install` pins the thread count via a thread-local, so
//! `scoped_pool(n, ...)` sweeps behave as with real rayon.

use std::cell::Cell;

pub mod prelude {
    //! Traits that put `par_*` methods in scope.
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

thread_local! {
    /// Thread count pinned by the innermost `ThreadPool::install`
    /// (0 = unpinned, use the host parallelism).
    static PINNED_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads parallel operations will use.
pub fn current_num_threads() -> usize {
    let pinned = PINNED_THREADS.with(Cell::get);
    if pinned > 0 {
        pinned
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Builder for [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error from [`ThreadPoolBuilder::build`] (infallible in the shim, the
/// type exists for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with the default (host) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the pool to `n` threads (0 = host parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count context (threads are spawned per operation).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count pinned.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let previous = PINNED_THREADS.with(|c| c.replace(self.num_threads));
        let result = f();
        PINNED_THREADS.with(|c| c.set(previous));
        result
    }
}

/// Order-preserving parallel map of `f` over `items`.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let tail = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, tail));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// A materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A parallel iterator with one pending `map` stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Conversion into a [`ParIter`] (rayon's `into_par_iter`).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Materialize the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// `par_iter` / `par_chunks` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over non-overlapping `chunk_size`-sized chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `chunk_size`-sized chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

impl<T: Send> ParIter<T> {
    /// Pair each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Zip with another parallel iterator (truncates to the shorter).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Lazily map; the closure runs in parallel at the terminal op.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Apply `f` to every item, in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map_vec(self.items, &f);
    }

    /// Sum the items, in parallel.
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        self.map(|x| x).sum()
    }
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Apply the mapped closure to every item, in parallel.
    pub fn for_each(self, consume: impl Fn(R) + Sync) {
        let f = self.f;
        parallel_map_vec(self.items, &move |item| consume(f(item)));
    }

    /// Collect mapped results in input order, computed in parallel.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        parallel_map_vec(self.items, &self.f).into()
    }

    /// Sum the mapped results, computed in parallel.
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<R> + std::iter::Sum<S>,
    {
        let f = self.f;
        let threads = current_num_threads().clamp(1, self.items.len().max(1));
        let chunk_len = self.items.len().div_ceil(threads.max(1)).max(1);
        let partials = parallel_chunked(self.items, chunk_len, &|chunk: Vec<T>| {
            chunk.into_iter().map(&f).sum::<S>()
        });
        partials.into_iter().sum()
    }

    /// Fold mapped results with `op`, starting each part from
    /// `identity()` (rayon's tree-reduce contract: `op` must be
    /// associative and `identity()` its neutral element).
    pub fn reduce(self, identity: impl Fn() -> R + Sync, op: impl Fn(R, R) -> R + Sync) -> R
    where
        R: Send,
    {
        let f = self.f;
        let threads = current_num_threads().clamp(1, self.items.len().max(1));
        let chunk_len = self.items.len().div_ceil(threads.max(1)).max(1);
        let partials = parallel_chunked(self.items, chunk_len, &|chunk: Vec<T>| {
            chunk.into_iter().map(&f).fold(identity(), &op)
        });
        partials.into_iter().fold(identity(), &op)
    }
}

/// Split `items` into `chunk_len`-sized runs and process each run on its
/// own scoped thread, preserving run order.
fn parallel_chunked<T, R, G>(items: Vec<T>, chunk_len: usize, g: &G) -> Vec<R>
where
    T: Send,
    R: Send,
    G: Fn(Vec<T>) -> R + Sync,
{
    if items.len() <= chunk_len {
        if items.is_empty() {
            return Vec::new();
        }
        return vec![g(items)];
    }
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let tail = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, tail));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || g(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_mutation_and_zip_sum() {
        let mut out = vec![0u64; 64];
        out.par_chunks_mut(8).enumerate().for_each(|(i, chunk)| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (i * 8 + j) as u64;
            }
        });
        assert_eq!(out, (0..64u64).collect::<Vec<_>>());
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (0..100).map(|x| x * 3).collect();
        let s: u64 = a
            .par_chunks(7)
            .zip(b.par_chunks(7))
            .map(|(ca, cb)| {
                ca.iter()
                    .zip(cb)
                    .map(|(&x, &y)| (x + y) as u64)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(s, (0..100u64).map(|x| x * 4).sum::<u64>());
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let n = current_num_threads();
        assert!(n >= 1 && n != 0);
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        let total = (0..500u64)
            .into_par_iter()
            .map(|x| (x, 1u64))
            .reduce(|| (0, 0), |(a, b), (c, d)| (a + c, b + d));
        assert_eq!(total, ((0..500u64).sum(), 500));
    }
}
