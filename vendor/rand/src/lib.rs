//! Minimal offline drop-in for the `rand` 0.9 surface this workspace
//! uses: `Rng::{random, random_range, random_bool}`, `SeedableRng`, and
//! `distr::{Bernoulli, Distribution}`.

use std::ops::Range;

pub mod distr;

/// Core entropy source: a stream of 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (full-range integers, `[0, 1)` floats, fair booleans).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli trial with success probability `p` (clamped to \[0,1\]).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A reproducible generator seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a standard distribution (support for [`Rng::random`]).
pub trait Standard: Sized {
    /// Sample from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly sampleable from a range
/// (support for [`Rng::random_range`]).
pub trait SampleUniform: Sized {
    /// Sample uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize);
