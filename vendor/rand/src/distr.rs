//! Distributions: the `rand::distr` subset this workspace uses.

use crate::Rng;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned for probabilities outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BernoulliError;

impl std::fmt::Display for BernoulliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Bernoulli probability must be in [0, 1]")
    }
}

impl std::error::Error for BernoulliError {}

/// Bernoulli trial with fixed success probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// A Bernoulli distribution succeeding with probability `p`.
    pub fn new(p: f64) -> Result<Self, BernoulliError> {
        if (0.0..=1.0).contains(&p) {
            Ok(Bernoulli { p })
        } else {
            Err(BernoulliError)
        }
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.random::<f64>() < self.p
    }
}
