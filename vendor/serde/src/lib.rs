//! Minimal offline drop-in for the `serde` facade.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of external dependencies are vendored as small API-compatible
//! shims (see `vendor/README.md`). This crate covers exactly the serde
//! surface the workspace uses: `Serialize`/`Deserialize` derives on plain
//! structs with named fields, manual impls written against
//! `Serializer`/`Deserializer`, and `serde::de::Error::custom`.
//!
//! Deserialization is value-based: a [`Deserializer`] yields one
//! self-describing [`value::Value`] tree and typed impls pull their shape
//! out of it. That is a simplification of real serde's visitor model, but
//! it is source-compatible with every usage site in this workspace and
//! with the vendored `serde_json`.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
