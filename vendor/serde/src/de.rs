//! Deserialization half of the shim.
//!
//! A [`Deserializer`] produces one self-describing [`Value`] tree;
//! [`Deserialize`] impls pull their shape out of it. Derived struct
//! impls go through [`begin_struct`]/[`take_field`].

use crate::value::Value;
use std::fmt::Display;
use std::marker::PhantomData;

/// Error construction hook for deserializers.
pub trait Error: Sized {
    /// Build an error carrying `msg`.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data-format deserializer. The lifetime mirrors real serde's
/// signature so manual impls compile unchanged; the shim always produces
/// owned data.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Consume the input into one self-describing value tree.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserialize `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A [`Deserializer`] over an in-memory [`Value`], generic in its error
/// type (the analogue of real serde's `ContentDeserializer`).
pub struct ValueDeserializer<E> {
    value: Value,
    marker: PhantomData<E>,
}

impl<E> ValueDeserializer<E> {
    /// Wrap `value`.
    pub fn new(value: Value) -> Self {
        ValueDeserializer {
            value,
            marker: PhantomData,
        }
    }
}

impl<'de, E: Error> Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;
    fn deserialize_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

/// Deserialize a `T` out of an owned [`Value`].
pub fn from_value<'de, T: Deserialize<'de>, E: Error>(value: Value) -> Result<T, E> {
    T::deserialize(ValueDeserializer::<E>::new(value))
}

/// The field map of a struct being deserialized (derive support).
pub struct FieldMap {
    type_name: &'static str,
    entries: Vec<(String, Value)>,
}

/// Begin deserializing a struct: pull the value tree and require an
/// object (derive support).
pub fn begin_struct<'de, D: Deserializer<'de>>(
    deserializer: D,
    type_name: &'static str,
) -> Result<FieldMap, D::Error> {
    match deserializer.deserialize_value()? {
        Value::Map(entries) => Ok(FieldMap { type_name, entries }),
        other => Err(D::Error::custom(format!(
            "invalid type: expected struct {type_name}, found {}",
            other.kind()
        ))),
    }
}

/// Extract and deserialize one named field (derive support).
pub fn take_field<'de, T: Deserialize<'de>, E: Error>(
    map: &mut FieldMap,
    name: &'static str,
) -> Result<T, E> {
    match take_field_opt(map, name)? {
        Some(value) => Ok(value),
        None => Err(E::custom(format!(
            "missing field `{name}` in {}",
            map.type_name
        ))),
    }
}

/// Extract and deserialize one named field, tolerating its absence
/// (the manual-impl analogue of `#[serde(default)]`).
pub fn take_field_opt<'de, T: Deserialize<'de>, E: Error>(
    map: &mut FieldMap,
    name: &'static str,
) -> Result<Option<T>, E> {
    let pos = map.entries.iter().position(|(k, _)| k == name);
    match pos {
        Some(pos) => from_value(map.entries.swap_remove(pos).1).map(Some),
        None => Ok(None),
    }
}

fn type_error<T, E: Error>(expected: &str, found: &Value) -> Result<T, E> {
    Err(E::custom(format!(
        "invalid type: expected {expected}, found {}",
        found.kind()
    )))
}

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                match v.as_u64().map(<$t>::try_from) {
                    Some(Ok(n)) => Ok(n),
                    _ => type_error(stringify!($t), &v),
                }
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.deserialize_value()?;
                let n = match v {
                    Value::I64(n) => <$t>::try_from(n).ok(),
                    Value::U64(n) => <$t>::try_from(n).ok(),
                    _ => None,
                };
                match n {
                    Some(n) => Ok(n),
                    None => type_error(stringify!($t), &v),
                }
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.deserialize_value()?;
        v.as_f64().map_or_else(|| type_error("f64", &v), Ok)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => type_error("bool", &other),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => type_error("string", &other),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Seq(items) => items.into_iter().map(from_value).collect(),
            other => type_error("array", &other),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.deserialize_value()? {
            Value::Null => Ok(None),
            other => from_value(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<[T]> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(Vec::into_boxed_slice)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| D::Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.deserialize_value()
    }
}
