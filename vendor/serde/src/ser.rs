//! Serialization half of the shim: trait shapes follow real serde so
//! manual impls (`fn serialize<S: Serializer>...`) compile unchanged.

use std::fmt::Display;

/// A type that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serialize `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Error construction hook for serializers.
pub trait Error: Sized {
    /// Build an error carrying `msg`.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data-format serializer (value-consuming, like real serde).
pub trait Serializer: Sized {
    /// Output of a successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Begin a sequence of `len` elements (if known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// Builder for serialized sequences.
pub trait SerializeSeq {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error;
    /// Append one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder for serialized structs.
pub trait SerializeStruct {
    /// Matches the parent serializer's `Ok`.
    type Ok;
    /// Matches the parent serializer's `Error`.
    type Error;
    /// Append one field with a runtime key (used by the `Value`
    /// passthrough; formats only ever see the `&str`).
    fn serialize_dynamic_field<T: Serialize + ?Sized>(
        &mut self,
        name: &str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Append one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        name: &'static str,
        value: &T,
    ) -> Result<(), Self::Error> {
        self.serialize_dynamic_field(name, value)
    }
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

fn serialize_slice<T: Serialize, S: Serializer>(items: &[T], s: S) -> Result<S::Ok, S::Error> {
    let mut seq = s.serialize_seq(Some(items.len()))?;
    for item in items {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, s)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, s)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(s),
            None => s.serialize_unit(),
        }
    }
}

impl Serialize for crate::value::Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use crate::value::Value;
        match self {
            Value::Null => s.serialize_unit(),
            Value::Bool(b) => s.serialize_bool(*b),
            Value::U64(n) => s.serialize_u64(*n),
            Value::I64(n) => s.serialize_i64(*n),
            Value::F64(n) => s.serialize_f64(*n),
            Value::Str(v) => s.serialize_str(v),
            Value::Seq(items) => serialize_slice(items, s),
            Value::Map(entries) => {
                // Structs and free-form maps share one value shape.
                let mut st = s.serialize_struct("Value", entries.len())?;
                for (k, v) in entries {
                    st.serialize_dynamic_field(k, v)?;
                }
                st.end()
            }
        }
    }
}
