//! The self-describing value tree shared by the shim's serializers and
//! deserializers. Re-exported by the vendored `serde_json` as its `Value`.

use std::fmt;

/// A dynamically typed serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The integer content of the value, if it has one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The float content of the value (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    /// Renders compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_json(self, f)
    }
}

/// Write `v` as compact JSON.
fn write_json(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::U64(n) => write!(f, "{n}"),
        Value::I64(n) => write!(f, "{n}"),
        Value::F64(n) => {
            if n.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64 (and always includes a `.`/`e`).
                write!(f, "{n:?}")
            } else {
                f.write_str("null")
            }
        }
        Value::Str(s) => write_json_string(s, f),
        Value::Seq(items) => {
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_json(item, f)?;
            }
            f.write_str("]")
        }
        Value::Map(entries) => {
            f.write_str("{")?;
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_json_string(k, f)?;
                f.write_str(":")?;
                write_json(val, f)?;
            }
            f.write_str("}")
        }
    }
}

/// Write a JSON string literal with escapes.
pub(crate) fn write_json_string(s: &str, f: &mut impl fmt::Write) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if !matches!(self, Value::Map(_)) {
            *self = Value::Map(Vec::new());
        }
        let Value::Map(entries) = self else {
            unreachable!()
        };
        if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
            &mut entries[pos].1
        } else {
            entries.push((key.to_owned(), Value::Null));
            &mut entries.last_mut().unwrap().1
        }
    }
}

macro_rules! value_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::U64(v as u64) }
        }
    )*};
}
value_from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! value_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v as i64) }
            }
        }
    )*};
}
value_from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
