//! Derive macros for the vendored `serde` shim.
//!
//! Supports the only shape this workspace derives on: non-generic
//! structs with named fields. The input token stream is parsed by hand
//! (no `syn`/`quote` available offline); generated impls route through
//! `serde::ser::SerializeStruct` and the `serde::de` field-map helpers.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Name and named fields of the struct a derive was placed on.
struct StructShape {
    name: String,
    /// `(name, has_serde_default)` per field, in declaration order.
    fields: Vec<(String, bool)>,
}

/// Does this attribute body (the token stream inside `#[...]`) spell
/// `serde(default)`?
fn is_serde_default(body: TokenStream) -> bool {
    let mut tokens = body.into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<String> = g.stream().into_iter().map(|t| t.to_string()).collect();
            inner == ["default"]
        }
        _ => false,
    }
}

/// Parse `struct Name { a: T, b: U, ... }` out of a derive input stream.
fn parse_struct(input: TokenStream) -> StructShape {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility ahead of `struct`.
    let name = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match tokens.next() {
                Some(TokenTree::Ident(name)) => break name.to_string(),
                other => panic!("expected struct name, found {other:?}"),
            },
            Some(TokenTree::Ident(_)) | Some(TokenTree::Group(_)) => {} // pub / pub(crate)
            other => panic!("unsupported derive input near {other:?}"),
        }
    };
    // Generics are not used by any derived type in this workspace.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim derive does not support generic structs")
            }
            Some(TokenTree::Punct(_)) | Some(TokenTree::Ident(_)) => {}
            other => panic!("expected struct body, found {other:?}"),
        }
    };

    // Fields: skip attrs + visibility, take the ident before `:`, then
    // skip the type until a top-level (angle-depth 0) comma.
    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    loop {
        // Skip field attributes (noting `#[serde(default)]`) and
        // visibility.
        let mut has_default = false;
        let field = loop {
            match toks.next() {
                None => return StructShape { name, fields },
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(attr)) = toks.next() {
                        has_default |= is_serde_default(attr.stream());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = toks.peek() {
                        toks.next(); // pub(crate) / pub(super)
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                other => panic!("unsupported field syntax near {other:?}"),
            }
        };
        fields.push((field, has_default));
        // Expect `:`, then consume the type.
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        loop {
            match toks.next() {
                None => return StructShape { name, fields },
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Derive `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let mut body = String::new();
    for (f, _) in &shape.fields {
        body.push_str(&format!(
            "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{f}\", &self.{f})?;\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize<__S: ::serde::Serializer>(&self, __s: __S) \
                -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                let mut __st = ::serde::Serializer::serialize_struct(__s, \"{name}\", {len})?;\n\
                {body}\
                ::serde::ser::SerializeStruct::end(__st)\n\
            }}\n\
        }}",
        name = shape.name,
        len = shape.fields.len(),
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input);
    let mut body = String::new();
    for (f, has_default) in &shape.fields {
        if *has_default {
            body.push_str(&format!(
                "{f}: ::serde::de::take_field_opt::<_, __D::Error>(&mut __map, \"{f}\")?\
                    .unwrap_or_default(),\n"
            ));
        } else {
            body.push_str(&format!(
                "{f}: ::serde::de::take_field::<_, __D::Error>(&mut __map, \"{f}\")?,\n"
            ));
        }
    }
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
            fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) \
                -> ::std::result::Result<Self, __D::Error> {{\n\
                let mut __map = ::serde::de::begin_struct(__d, \"{name}\")?;\n\
                ::std::result::Result::Ok({name} {{ {body} }})\n\
            }}\n\
        }}",
        name = shape.name,
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}
