//! Snapshot serving: build a mining corpus once, persist it, serve
//! queries from the snapshot in a "later process" without rebuilding —
//! and finally hand the same snapshot to the long-running query
//! service and talk to it over its wire protocol.
//!
//! The arena storage layer makes this possible: all slot bytes of a
//! corpus live in one contiguous buffer with a checked, versioned
//! header, so `write_snapshot`/`read_snapshot` are a streaming copy —
//! no per-set serialization, no re-hashing, no cuckoo work on load.
//! Counts are kernel-backend-independent, so a snapshot written on an
//! AVX2 box is served byte-identically by a SWAR-only one.
//!
//! Run with: `cargo run --release --example snapshot_serving`

use batmap_suite::prelude::*;
use datagen::uniform::{generate, UniformSpec};
use hpcutil::Stopwatch;

fn main() {
    // ── Process 1: the builder ──────────────────────────────────────
    // A synthetic retail-ish database: 400 items over ~120k item
    // occurrences.
    let db = generate(&UniformSpec {
        n_items: 400,
        density: 0.05,
        total_items: 120_000,
        seed: 0xCAFE,
    });
    let vertical = VerticalDb::from_horizontal(&db);

    let mut sw = Stopwatch::start();
    // The hybrid policy lets dense items land as bitmaps and tiny ones
    // as tidlists; the snapshot persists the per-set tags.
    let pre = preprocess_with(
        &vertical,
        0xBA7,
        128,
        EngineOptions::auto().repr(ReprPolicy::Hybrid),
    );
    let build_s = sw.lap().as_secs_f64();
    println!(
        "built corpus: {} sets ({} padded), {:.1} KiB of slot bytes, {:.1} ms",
        pre.n_items,
        pre.padded_items(),
        pre.batmap_bytes() as f64 / 1024.0,
        build_s * 1e3,
    );

    // Persist. Any `io::Write` works; a file is the usual choice.
    let path = std::env::temp_dir().join("batmap_corpus.snapshot");
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
    pre.write_snapshot(&mut file).unwrap();
    drop(file);
    let bytes = std::fs::metadata(&path).unwrap().len();
    println!(
        "wrote snapshot: {} ({:.1} KiB)",
        path.display(),
        bytes as f64 / 1024.0
    );

    // ── Process 2: the server (simulated here by reloading) ─────────
    let mut sw = Stopwatch::start();
    let mut file = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
    let served: Preprocessed = Preprocessed::read_snapshot(&mut file).unwrap();
    let load_s = sw.lap().as_secs_f64();
    println!(
        "loaded snapshot in {:.1} ms ({:.0}x faster than building)",
        load_s * 1e3,
        build_s / load_s.max(1e-9),
    );

    // Serve point queries straight off zero-copy views… (`payload`
    // works for any stored representation; the hybrid policy may have
    // picked a bitmap or tidlist for this set.)
    let probe = served.item_to_sorted[7] as usize;
    let view = served.payload(probe);
    println!(
        "item 7 has support {} (stored as a {:?}, {} payload bytes, served without rebuilding)",
        view.len(),
        view.repr(),
        view.width_bytes(),
    );

    // …or run the full tiled mining pipeline over the loaded corpus.
    // Only k/minsup/engine/threads come from the config here; seed and
    // MaxLoop travelled inside the snapshot.
    let config = MinerConfig {
        minsup: 18, // a bit above the mean pair support (~15 here)
        engine: Engine::Cpu,
        ..Default::default()
    };
    let report = mine_preprocessed(&db, &served, &config);
    println!(
        "mined {} frequent pairs from the snapshot-served corpus \
         (preprocess phase: {:.0} s, by construction)",
        report.pairs.len(),
        report.timings.preprocess_s,
    );

    // ── Process 3: the query service ────────────────────────────────
    // The same snapshot backs the long-running server: sets sharded
    // across per-core workers, concurrent count probes coalesced into
    // one-vs-many sweeps by the admission queues, answers exact.
    let engine = QueryEngine::new(vec![served], EngineConfig::default());
    let handle = Server::bind_tcp("127.0.0.1:0").unwrap().serve(engine);
    let addr = handle.tcp_addr().unwrap();
    let mut client = Client::connect_tcp(addr).unwrap();
    let count = client.count(0, 7, 11).unwrap();
    let similar = client.top_k(0, Probe::Set(7), 3).unwrap();
    println!(
        "query service on {addr}: |set 7 ∩ set 11| = {count}, \
         top-3 most similar to set 7: {similar:?}"
    );
    client.shutdown().unwrap();
    handle.join();

    std::fs::remove_file(&path).ok();
}
