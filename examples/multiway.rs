//! Multiway intersection — the paper's §V extension in action.
//!
//! Conjunctive queries over more than two predicates (§I lists
//! conjunctive queries as a motivating application): find how many
//! transactions satisfy *all* of k predicates, each predicate given as
//! the set of matching transaction ids.
//!
//! Demonstrates both §V directions: the d-of-(d+1) structure (one
//! positional sweep for up to d sets) and probe counting on ordinary
//! 2-of-3 batmaps.
//!
//! Run with: `cargo run --release --example multiway`

use batmap::{intersect_count_probe, Batmap, BatmapParams, MultiwayBatmap, MultiwayParams};
use std::sync::Arc;

fn main() {
    let m = 200_000u64; // transaction universe

    // Four predicate result sets with known overlap structure.
    let pred_a: Vec<u32> = (0..m as u32).filter(|x| x % 2 == 0).collect(); // even
    let pred_b: Vec<u32> = (0..m as u32).filter(|x| x % 3 == 0).collect(); // div 3
    let pred_c: Vec<u32> = (0..m as u32).filter(|x| x % 5 == 0).collect(); // div 5
    let pred_d: Vec<u32> = (0..m as u32).filter(|x| x % 7 == 0).collect(); // div 7

    // --- §V direction 1: d-of-(d+1) batmaps, d = 4 -------------------
    let mp = Arc::new(MultiwayParams::new(m, 4, 0x5E7));
    println!(
        "building 4-of-5 multiway batmaps over m = {m} ({} tables each)…",
        mp.tables()
    );
    let ma = MultiwayBatmap::build(mp.clone(), &pred_a).expect("no failures at this load");
    let mb = MultiwayBatmap::build(mp.clone(), &pred_b).expect("no failures");
    let mc = MultiwayBatmap::build(mp.clone(), &pred_c).expect("no failures");
    let md = MultiwayBatmap::build(mp, &pred_d).expect("no failures");

    let two = MultiwayBatmap::intersect_count(&[&ma, &mb]);
    let three = MultiwayBatmap::intersect_count(&[&ma, &mb, &mc]);
    let four = MultiwayBatmap::intersect_count(&[&ma, &mb, &mc, &md]);
    println!("|A ∩ B|          = {two}  (expect {})", m.div_ceil(6));
    println!("|A ∩ B ∩ C|      = {three}  (expect {})", m.div_ceil(30));
    println!("|A ∩ B ∩ C ∩ D|  = {four}  (expect {})", m.div_ceil(210));
    assert_eq!(two, m.div_ceil(6));
    assert_eq!(three, m.div_ceil(30));
    assert_eq!(four, m.div_ceil(210));
    println!("all counts exact ✓");

    // --- §V direction 2: probe counting on plain 2-of-3 batmaps ------
    let pp = Arc::new(BatmapParams::new(m, 0x9E7));
    let ba = Batmap::build(pp.clone(), &pred_a).batmap;
    let bb = Batmap::build(pp.clone(), &pred_b).batmap;
    let bc = Batmap::build(pp.clone(), &pred_c).batmap;
    let bd = Batmap::build(pp, &pred_d).batmap;
    let probed = intersect_count_probe(&[&ba, &bb, &bc, &bd]);
    assert_eq!(probed, four);
    println!("probe counting agrees: {probed} ✓");

    println!(
        "\nstorage: 4-of-5 structure {} B/set avg vs 2-of-3 compressed {} B/set avg",
        (ma.storage_bytes() + mb.storage_bytes() + mc.storage_bytes() + md.storage_bytes()) / 4,
        (ba.width_bytes() + bb.width_bytes() + bc.width_bytes() + bd.width_bytes()) / 4,
    );
    println!("(the multiway structure is the uncompressed §V reference; compressing");
    println!("it like §III-A is listed as future work in DESIGN.md)");
}
