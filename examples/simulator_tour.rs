//! A tour of the GPU execution-model simulator as a standalone
//! substrate: write a kernel, dispatch it, read the performance
//! counters and the analytic timing — the workflow every experiment in
//! this repository uses under the hood.
//!
//! The kernel here is a deliberately instructive pair: the same
//! reduction implemented with coalesced and with scattered access, so
//! the transaction ledger shows exactly what the §III-B batmap layout
//! buys.
//!
//! Run with: `cargo run --release --example simulator_tour`

use gpu_sim::{dispatch, DeviceSpec, GlobalBuffer, GroupCtx, Kernel, NdRange};

/// Sums 16-element slices with perfectly coalesced loads.
struct CoalescedSum<'a> {
    input: &'a GlobalBuffer,
}

impl Kernel for CoalescedSum<'_> {
    fn run_group(&self, ctx: &mut GroupCtx<'_>) {
        let g = ctx.group_id()[0];
        let words = ctx.load_seq(self.input, g * 16, 16);
        let sum: u64 = words.iter().map(|&w| w as u64).sum();
        ctx.ops(16);
        ctx.store_seq(g, &[sum]);
    }
}

/// The same reduction, but each lane reads a strided (conflict-free but
/// uncoalesced) address — one transaction per lane.
struct ScatteredSum<'a> {
    input: &'a GlobalBuffer,
    stride: usize,
}

impl Kernel for ScatteredSum<'_> {
    fn run_group(&self, ctx: &mut GroupCtx<'_>) {
        let g = ctx.group_id()[0];
        let groups = self.input.len() / 16;
        let indices: Vec<usize> = (0..16)
            .map(|l| (l * self.stride + g) % (groups * 16))
            .collect();
        let words = ctx.load_gather(self.input, &indices);
        let sum: u64 = words.iter().map(|&w| w as u64).sum();
        ctx.ops(16);
        ctx.store_seq(g, &[sum]);
    }
}

fn main() {
    let device = DeviceSpec::gtx285();
    println!("device: {}", device.name);
    println!(
        "  {} multiprocessors x {} cores @ {:.1} GHz, {:.0} GB/s peak\n",
        device.compute_units,
        device.cores_per_unit,
        device.clock_hz / 1e9,
        device.mem_bandwidth / 1e9
    );

    let n = 1 << 20;
    let input = GlobalBuffer::new((0..n as u32).collect());
    let range = NdRange::d1(n, 16);

    let coalesced = dispatch(&device, &CoalescedSum { input: &input }, range);
    let scattered = dispatch(
        &device,
        &ScatteredSum {
            input: &input,
            stride: 4096,
        },
        range,
    );

    println!("                       coalesced      scattered");
    println!(
        "transactions        {:>12}   {:>12}",
        coalesced.stats.transactions, scattered.stats.transactions
    );
    println!(
        "bus bytes           {:>12}   {:>12}",
        coalesced.stats.bus_bytes, scattered.stats.bus_bytes
    );
    println!(
        "bus efficiency      {:>12.3}   {:>12.3}",
        coalesced.stats.efficiency(),
        scattered.stats.efficiency()
    );
    println!(
        "simulated time      {:>10.2} us   {:>10.2} us",
        coalesced.seconds() * 1e6,
        scattered.seconds() * 1e6
    );
    println!(
        "\nscattered access costs {:.1}x the time for the same amount of work —",
        scattered.seconds() / coalesced.seconds()
    );
    println!("the gap the batmap layout exists to close.");

    // Verify both kernels computed what they should.
    let mut a = vec![0u64; n / 16];
    let mut b = vec![0u64; n / 16];
    coalesced.scatter_into(&mut a);
    scattered.scatter_into(&mut b);
    let total_a: u64 = a.iter().sum();
    assert_eq!(total_a, (0..n as u64).sum::<u64>());
    let groups = n / 16;
    for g in (0..groups).step_by(9973) {
        let expect: u64 = (0..16).map(|l| ((l * 4096 + g) % n) as u64).sum();
        assert_eq!(b[g], expect, "scattered group {g}");
    }
    println!("\nreductions verified (coalesced total = {total_a}) ✓");
}
