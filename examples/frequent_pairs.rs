//! Frequent pair mining end to end — the paper's case study.
//!
//! Generates a synthetic market-basket instance (the paper's §IV-A
//! model), mines all frequent pairs with the batmap/GPU pipeline, and
//! cross-checks the result against FP-growth and Apriori.
//!
//! Run with: `cargo run --release --example frequent_pairs`

use batmap_suite::prelude::*;
use datagen::uniform::{generate, UniformSpec};
use fim::{apriori, fpgrowth};

fn main() {
    // 200 items, 5% density, 100k occurrences → ~1000 transactions.
    let db = generate(&UniformSpec {
        n_items: 200,
        density: 0.05,
        total_items: 100_000,
        seed: 42,
    });
    // Pair supports concentrate around m·p² (= 25 here); a threshold
    // slightly below that keeps the interesting upper tail.
    let minsup = (db.len() as f64 * 0.05 * 0.05 * 0.8) as u64;
    println!(
        "instance: {} transactions, {} items, density {:.1}%, minsup {minsup}",
        db.len(),
        db.n_items(),
        db.density() * 100.0
    );

    // The batmap pipeline on the simulated GTX 285.
    let gpu_cfg = MinerConfig {
        minsup,
        ..Default::default()
    };
    let report = mine(&db, &gpu_cfg);
    println!("\n-- batmap pipeline (simulated GPU) --");
    println!("frequent pairs: {}", report.pairs.len());
    println!(
        "preprocess     {:.4} s (measured host)",
        report.timings.preprocess_s
    );
    println!(
        "transfer       {:.6} s (simulated PCIe)",
        report.timings.transfer_s
    );
    println!(
        "kernel         {:.4} s (simulated device)",
        report.timings.kernel_s
    );
    println!(
        "postprocess    {:.4} s (measured host)",
        report.timings.postprocess_s
    );
    if let Some(stats) = &report.gpu_stats {
        println!(
            "device traffic {} useful bytes, bus efficiency {:.3}",
            stats.useful_bytes,
            stats.efficiency()
        );
    }

    // Same pipeline, real multicore CPU.
    let cpu_report = mine(
        &db,
        &MinerConfig {
            minsup,
            engine: Engine::Cpu,
            ..Default::default()
        },
    );
    println!("\n-- batmap pipeline (CPU) --");
    println!(
        "kernel         {:.4} s (measured host)",
        cpu_report.timings.kernel_s
    );

    // Baselines.
    let ap = apriori::mine_pairs(&db, minsup);
    let fp = fpgrowth::mine_pairs(&db, minsup);

    assert_eq!(report.pairs, ap, "batmap-GPU vs Apriori");
    assert_eq!(report.pairs, fp, "batmap-GPU vs FP-growth");
    assert_eq!(report.pairs, cpu_report.pairs, "GPU vs CPU engines");
    println!("\nall four miners agree on {} frequent pairs ✓", ap.len());

    // Show the strongest associations.
    let mut ranked: Vec<_> = report.pairs.iter().collect();
    ranked.sort_by_key(|&(_, &s)| std::cmp::Reverse(s));
    println!("\ntop associations:");
    for (&(i, j), &s) in ranked.iter().take(5) {
        println!("  items ({i:3}, {j:3})  support {s}");
    }
}
