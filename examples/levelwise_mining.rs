//! Mining frequent k-itemsets beyond pairs — the §V d-of-(d+1)
//! program as a full levelwise engine.
//!
//! Generates a random transaction database, mines all frequent
//! itemsets up to size 4 with the `LevelwiseMiner` (level 2 from the
//! tiled pair pipeline, levels 3..4 by batched positional counting on
//! 4-of-5 multiway batmaps), prints the per-level accounting, and
//! cross-checks the result against the Apriori oracle.
//!
//! Run with: `cargo run --release --example levelwise_mining`

use batmap_suite::datagen::uniform::{generate, UniformSpec};
use batmap_suite::fim::apriori;
use batmap_suite::prelude::*;

fn main() {
    let db = generate(&UniformSpec {
        n_items: 24,
        density: 0.3,
        total_items: 30_000,
        seed: 0x1E7E1,
    });
    let minsup = 25;
    let depth = 4;
    println!(
        "db: {} transactions over {} items; mining itemsets of size 2..={depth} at minsup {minsup}\n",
        db.len(),
        db.n_items(),
    );

    let miner = LevelwiseMiner::new(LevelwiseConfig {
        depth,
        pair: MinerConfig {
            minsup,
            engine: Engine::Cpu,
            ..Default::default()
        },
        ..Default::default()
    });
    let report = miner.mine(&db);

    println!("level  candidates  frequent  batched  fallback   wall_s");
    for level in &report.levels {
        println!(
            "{:>5}  {:>10}  {:>8}  {:>7}  {:>8}  {:>7.4}",
            level.k, level.candidates, level.frequent, level.batched, level.fallback, level.wall_s
        );
    }
    println!(
        "\n{} frequent itemsets total, {} item(s) on the exact-fallback path",
        report.itemsets.len(),
        report.fallback_items
    );
    if let Some(largest) = report
        .itemsets
        .iter()
        .max_by_key(|s| (s.items.len(), s.support))
    {
        println!(
            "largest/most supported at max size: {:?} (support {})",
            largest.items, largest.support
        );
    }

    // Cross-check against the horizontal-scan Apriori oracle.
    let mut expect = apriori::mine(&db, minsup, depth);
    expect.sort_unstable_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
    assert_eq!(report.itemsets, expect);
    println!("\nApriori oracle agrees on all {} itemsets ✓", expect.len());
}
