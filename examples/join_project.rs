//! Database join-project via set intersection — the paper's second
//! motivating application (§I): a join of two tables followed by a
//! duplicate-eliminating projection that drops the join attribute is
//! equivalent to sparse boolean matrix multiplication [2], i.e. to
//! asking which (a, c) pairs share at least one join key b.
//!
//! Scenario: `Follows(user, topic)` ⋈ `Posts(topic, author)`, projected
//! to `(user, author)` — "which authors does each user transitively
//! follow through at least one topic", with the batmap count giving the
//! number of shared topics (a relevance weight).
//!
//! Run with: `cargo run --release --example join_project`

use batmap_suite::prelude::*;
use std::sync::Arc;

fn main() {
    let topics = 10_000u32; // join-attribute domain
    let users = 300u32;
    let authors = 250u32;

    // Synthetic relations with skew: popular topics attract both.
    let mut state = 0x10AD_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Follows(user → set of topics), Posts(author → set of topics).
    let follows: Vec<Vec<u32>> = (0..users)
        .map(|_| {
            let k = 50 + (next() % 400) as usize;
            (0..k)
                .map(|_| (next() % (topics as u64)).pow(2) as u32 % topics)
                .collect()
        })
        .collect();
    let posts: Vec<Vec<u32>> = (0..authors)
        .map(|_| {
            let k = 30 + (next() % 300) as usize;
            (0..k)
                .map(|_| (next() % (topics as u64)).pow(2) as u32 % topics)
                .collect()
        })
        .collect();

    // Batmaps over the join-attribute universe.
    let params = Arc::new(BatmapParams::new(topics as u64, 0x7091C5));
    let user_maps: Vec<Batmap> = follows
        .iter()
        .map(|s| Batmap::build(params.clone(), s).batmap)
        .collect();
    let author_maps: Vec<Batmap> = posts
        .iter()
        .map(|s| Batmap::build(params.clone(), s).batmap)
        .collect();

    // The join-project: all (user, author) pairs with ≥1 shared topic.
    let mut result = 0usize;
    let mut best: (u32, u32, u64) = (0, 0, 0);
    for (u, um) in user_maps.iter().enumerate() {
        for (a, am) in author_maps.iter().enumerate() {
            let shared = um.intersect_count(am);
            if shared > 0 {
                result += 1;
                if shared > best.2 {
                    best = (u as u32, a as u32, shared);
                }
            }
        }
    }
    let total = users as usize * authors as usize;
    println!("join-project |Follows ⋈ Posts| projected: {result} of {total} (user, author) pairs");
    println!(
        "strongest link: user {} → author {} through {} shared topics",
        best.0, best.1, best.2
    );

    // Verify the strongest link exactly.
    let su: std::collections::HashSet<u32> = follows[best.0 as usize].iter().copied().collect();
    let exact = posts[best.1 as usize]
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .iter()
        .filter(|t| su.contains(t))
        .count() as u64;
    assert_eq!(best.2, exact);
    println!("verified exactly ✓");
}
