//! Sparse boolean matrix multiplication via batmaps — the paper's first
//! motivating application (§I): for matrices M and M′, find all pairs
//! (i, j) with `Aᵢ ∩ Bⱼ ≠ ∅`, where `Aᵢ` is the set of k with
//! `M[i,k] = 1` and `Bⱼ` the set of k with `M′[k,j] = 1`. The batmap
//! intersection count gives the *number of witnesses* (the semiring
//! count), not just the boolean product.
//!
//! Run with: `cargo run --release --example matrix_multiply`

use batmap_suite::prelude::*;
use std::sync::Arc;

/// A sparse boolean matrix in row-set form.
struct SparseBool {
    rows: usize,
    cols: usize,
    /// For each row, the sorted set of nonzero column indices.
    row_sets: Vec<Vec<u32>>,
}

impl SparseBool {
    /// Pseudo-random sparse matrix with the given fill probability.
    fn random(rows: usize, cols: usize, fill_permille: u64, seed: u64) -> Self {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let row_sets = (0..rows)
            .map(|_| {
                (0..cols as u32)
                    .filter(|_| next() % 1000 < fill_permille)
                    .collect()
            })
            .collect();
        SparseBool {
            rows,
            cols,
            row_sets,
        }
    }

    /// Transpose into column-set form.
    fn col_sets(&self) -> Vec<Vec<u32>> {
        let mut cols = vec![Vec::new(); self.cols];
        for (r, set) in self.row_sets.iter().enumerate() {
            for &c in set {
                cols[c as usize].push(r as u32);
            }
        }
        cols
    }
}

fn main() {
    let k = 4_096; // inner dimension (the intersected universe)
    let m = SparseBool::random(64, k, 30, 0xA);
    let mt = SparseBool::random(k, 48, 30, 0xB);

    // Universe = the inner dimension; batmaps for M's rows and M′'s
    // columns share it.
    let params = Arc::new(BatmapParams::new(k as u64, 0x4A7));
    let row_maps: Vec<Batmap> = m
        .row_sets
        .iter()
        .map(|s| Batmap::build_sorted(params.clone(), s).batmap)
        .collect();
    let col_maps: Vec<Batmap> = mt
        .col_sets()
        .iter()
        .map(|s| Batmap::build(params.clone(), s).batmap)
        .collect();

    // The product: every (i, j) with a nonzero witness count.
    let mut nonzero = 0usize;
    let mut witnesses = 0u64;
    for (i, a) in row_maps.iter().enumerate() {
        for (j, b) in col_maps.iter().enumerate() {
            let w = a.intersect_count(b);
            if w > 0 {
                nonzero += 1;
                witnesses += w;
            }
            // Cross-check a sample against exact merge counting.
            if (i + j) % 97 == 0 {
                let exact = exact_count(&m.row_sets[i], &mt.col_sets()[j]);
                assert_eq!(w, exact, "mismatch at ({i},{j})");
            }
        }
    }
    println!(
        "M: {}×{k} ({} nonzeros)",
        m.rows,
        m.row_sets.iter().map(Vec::len).sum::<usize>()
    );
    println!(
        "M′: {k}×{} ({} nonzeros)",
        mt.cols,
        mt.row_sets.iter().map(Vec::len).sum::<usize>()
    );
    println!(
        "product: {nonzero} of {} entries nonzero, {witnesses} total witnesses",
        m.rows * mt.cols
    );
    println!("sampled entries verified against exact counting ✓");
}

fn exact_count(a: &[u32], b: &[u32]) -> u64 {
    let sb: std::collections::HashSet<&u32> = b.iter().collect();
    a.iter().filter(|x| sb.contains(x)).count() as u64
}
