//! Quickstart: build batmaps for a handful of sets and count
//! intersections with the branch-free positional sweep.
//!
//! Run with: `cargo run --release --example quickstart`

use batmap_suite::prelude::*;
use std::sync::Arc;

fn main() {
    // A universe of 100,000 possible elements (e.g. transaction ids).
    // Everything that will ever be intersected must share these
    // parameters — they fix the three hash permutations.
    let params = Arc::new(BatmapParams::new(100_000, 0xB47));
    println!("universe m = {}", params.m());
    println!(
        "compression shift s = {} (minimum table range {})",
        params.shift(),
        params.r0()
    );

    // Three sets. `build` returns a BuildOutcome: the batmap plus any
    // failed insertions (none at sane load factors).
    let evens: Vec<u32> = (0..20_000).map(|i| i * 2).collect();
    let threes: Vec<u32> = (0..13_000).map(|i| i * 3).collect();
    let small: Vec<u32> = (0..500).map(|i| i * 101).collect();

    let a = Batmap::build(params.clone(), &evens).batmap;
    let b = Batmap::build(params.clone(), &threes).batmap;
    let c = Batmap::build(params.clone(), &small).batmap;

    for (name, bm) in [("evens", &a), ("threes", &b), ("small", &c)] {
        println!(
            "{name}: {} elements, width {} bytes ({:.2} bits/element)",
            bm.len(),
            bm.width_bytes(),
            bm.bits_per_element()
        );
    }

    // Intersection counts are exact, including between batmaps of
    // different widths (the smaller one is folded modulo its range).
    println!(
        "\n|evens ∩ threes| = {} (multiples of 6)",
        a.intersect_count(&b)
    );
    println!("|evens ∩ small|  = {}", a.intersect_count(&c));
    println!("|threes ∩ small| = {}", b.intersect_count(&c));

    // Verify one of them against exact set intersection.
    let threes_set: std::collections::HashSet<u32> = threes.iter().copied().collect();
    let expect = evens.iter().filter(|x| threes_set.contains(x)).count() as u64;
    assert_eq!(a.intersect_count(&b), expect);
    println!("\nverified against exact counting ✓");

    // Membership is exact too.
    assert!(a.contains(39_998) && !a.contains(39_999));
    println!("membership queries ✓");
}
