//! Property tests for hybrid storage: every representation policy must
//! mine exactly the pairs and itemsets the legacy pure-batmap corpus
//! reports — across arbitrary databases, kernel backends, and thread
//! counts — and every forced pairing of representations must count
//! exactly like the sorted-tidlist oracle, in both argument orders and
//! through the batched row driver.

use batmap::{
    intersect, ArenaBuilder, BatmapParams, EngineOptions, KernelBackend, ReprPolicy, SetRepr,
    ALL_REPR_POLICIES,
};
use fim::pairs::brute_force_pairs;
use fim::TransactionDb;
use pairminer::{mine, Engine, LevelwiseConfig, LevelwiseMiner, MinerConfig, Parallelism};
use proptest::collection::{btree_set, vec};
use proptest::prelude::*;
use std::sync::Arc;

const M: u64 = 20_000;

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    // Up to 60 transactions over up to 20 items. Universes this small
    // sit at the r₀ floor, where the hybrid policy genuinely mixes:
    // empty/singleton tidlists, near-universal bitmaps, and batmaps
    // in between.
    (2u32..20, 1usize..60).prop_flat_map(|(n, m)| {
        vec(vec(0u32..n, 0..(n as usize).min(12)), m).prop_map(move |ts| TransactionDb::new(n, ts))
    })
}

/// One of the backends this CPU can actually run.
fn arb_backend() -> impl Strategy<Value = KernelBackend> {
    let available: Vec<KernelBackend> = batmap::available_backends().collect();
    (0..available.len()).prop_map(move |i| available[i])
}

fn arb_repr() -> impl Strategy<Value = SetRepr> {
    const REPRS: [SetRepr; 3] = [SetRepr::Batmap, SetRepr::Bitmap, SetRepr::Tidlist];
    (0..REPRS.len()).prop_map(|i| REPRS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every representation policy — including the forced bitmap and
    /// tidlist ablation modes — mines exactly the pure-batmap pairs,
    /// across databases, seeds, kernel backends, and thread counts.
    #[test]
    fn every_policy_mines_identical_pairs(
        db in arb_db(),
        backend in arb_backend(),
        threads in 0usize..3,
        seed in 0u64..100,
    ) {
        let threads = match threads {
            0 => Parallelism::Serial,
            t => Parallelism::threads(t + 1),
        };
        let config = |repr| MinerConfig {
            engine: Engine::Cpu,
            options: EngineOptions::auto()
                .kernel(backend)
                .threads(threads)
                .repr(repr),
            seed,
            k: 16,
            ..Default::default()
        };
        let baseline = mine(&db, &config(ReprPolicy::Batmap));
        prop_assert_eq!(&baseline.pairs, &brute_force_pairs(&db, 1));
        for repr in ALL_REPR_POLICIES {
            let report = mine(&db, &config(repr));
            prop_assert_eq!(&report.pairs, &baseline.pairs, "repr {}", repr);
        }
    }

    /// The hybrid levelwise engine (tidlist items routed to the exact
    /// merge) reports the same frequent itemsets as the pure-batmap
    /// engine at every depth and threshold.
    #[test]
    fn hybrid_levelwise_matches_batmap(
        db in arb_db(),
        depth in 3usize..5,
        minsup in 1u64..4,
    ) {
        let config = |repr| LevelwiseConfig {
            depth,
            pair: MinerConfig {
                engine: Engine::Cpu,
                minsup,
                options: EngineOptions::auto().repr(repr),
                ..Default::default()
            },
            ..Default::default()
        };
        let batmap_run = LevelwiseMiner::new(config(ReprPolicy::Batmap)).mine(&db);
        let hybrid_run = LevelwiseMiner::new(config(ReprPolicy::Hybrid)).mine(&db);
        prop_assert_eq!(hybrid_run.itemsets, batmap_run.itemsets);
    }

    /// Mixed-representation counts equal the sorted-tidlist oracle for
    /// every *forced* per-set representation assignment — both argument
    /// orders of the pair kernel, and the batched one-vs-many row
    /// driver the tile executors use.
    #[test]
    fn forced_mixed_pairings_match_oracle(
        sets in vec((btree_set(0u32..M as u32, 0..200), arb_repr()), 2..5),
        backend in arb_backend(),
        seed in 0u64..100,
    ) {
        let params =
            Arc::new(BatmapParams::new(M, seed).with_engine_options(EngineOptions::auto().kernel(backend)));
        let mut builder = ArenaBuilder::new(params);
        let elements: Vec<Vec<u32>> = sets
            .iter()
            .map(|(s, _)| s.iter().copied().collect())
            .collect();
        for ((_, repr), elems) in sets.iter().zip(&elements) {
            builder.push_elements(elems, *repr);
        }
        let arena = builder.finish();
        let views = arena.payload_views(0..arena.len());
        let mut out = vec![0u64; views.len()];
        for (i, a) in views.iter().enumerate() {
            intersect::count_mixed_one_vs_many_into(a, &views, &mut out);
            for (j, b) in views.iter().enumerate() {
                let expect = elements[i]
                    .iter()
                    .filter(|x| elements[j].binary_search(x).is_ok())
                    .count() as u64;
                prop_assert_eq!(intersect::count_mixed(a, b), expect, "pair {}x{}", i, j);
                prop_assert_eq!(out[j], expect, "row driver {}x{}", i, j);
            }
        }
    }
}
