//! Edge-shape integration tests: degenerate universes, extreme
//! densities, pathological set shapes.

use batmap::{Batmap, BatmapParams};
use fim::pairs::brute_force_pairs;
use fim::TransactionDb;
use pairminer::{mine, MinerConfig};
use std::sync::Arc;

#[test]
fn single_element_universe() {
    let params = Arc::new(BatmapParams::new(1, 3));
    let full = Batmap::build(params.clone(), &[0]).batmap;
    let empty = Batmap::build(params, &[]).batmap;
    assert_eq!(full.len(), 1);
    assert!(full.contains(0));
    assert_eq!(full.intersect_count(&full), 1);
    assert_eq!(full.intersect_count(&empty), 0);
    assert_eq!(full.elements(), vec![0]);
}

#[test]
fn full_universe_set() {
    // Density 1.0: every element present. Exercises maximal keys and
    // the densest possible table.
    let m = 4096u64;
    let params = Arc::new(BatmapParams::new(m, 9));
    let all: Vec<u32> = (0..m as u32).collect();
    let bm = Batmap::build_sorted(params.clone(), &all).batmap;
    assert_eq!(bm.len(), m as usize);
    assert_eq!(bm.intersect_count(&bm), m);
    let half: Vec<u32> = (0..m as u32 / 2).collect();
    let bh = Batmap::build_sorted(params, &half).batmap;
    assert_eq!(bm.intersect_count(&bh), m / 2);
}

#[test]
fn universe_boundary_sizes() {
    // Around the 127·2^s key-capacity boundaries.
    for m in [126u64, 127, 128, 507, 508, 509, 127 * 4, 127 * 4 + 1] {
        let params = Arc::new(BatmapParams::new(m, 1));
        let elements: Vec<u32> = (0..m as u32).step_by(2).collect();
        let bm = Batmap::build_sorted(params, &elements).batmap;
        assert_eq!(bm.len(), elements.len(), "m={m}");
        for &x in &elements {
            assert!(bm.contains(x), "m={m} x={x}");
        }
        assert_eq!(bm.intersect_count(&bm), elements.len() as u64, "m={m}");
    }
}

#[test]
fn mining_single_transaction() {
    let db = TransactionDb::new(6, vec![vec![0, 2, 4, 5]]);
    let report = mine(&db, &MinerConfig::default());
    assert_eq!(report.pairs, brute_force_pairs(&db, 1));
    assert_eq!(report.pairs.len(), 6); // C(4,2)
    assert!(report.pairs.values().all(|&s| s == 1));
}

#[test]
fn mining_identical_transactions() {
    // Every transaction identical: every pair's support = m, FP-tree is
    // a single path, batmap tidlists are 0..m (dense).
    let m = 200;
    let db = TransactionDb::new(5, vec![vec![0, 1, 2, 3, 4]; m]);
    let report = mine(&db, &MinerConfig::default());
    assert_eq!(report.pairs.len(), 10);
    assert!(report.pairs.values().all(|&s| s == m as u64));
    assert_eq!(fim::fpgrowth::mine_pairs(&db, 1), report.pairs);
}

#[test]
fn mining_one_item() {
    // One item: no pairs at all.
    let db = TransactionDb::new(1, vec![vec![0]; 50]);
    let report = mine(&db, &MinerConfig::default());
    assert!(report.pairs.is_empty());
    assert!(fim::apriori::mine_pairs(&db, 1).is_empty());
}

#[test]
fn mining_disjoint_items() {
    // Items never co-occur: all intersections zero.
    let db = TransactionDb::new(8, (0..160usize).map(|t| vec![(t % 8) as u32]).collect());
    let report = mine(&db, &MinerConfig::default());
    assert!(report.pairs.is_empty());
}

#[test]
fn mining_extreme_size_skew() {
    // One gigantic set and many tiny ones: exercises deep folding
    // (widest vs floor-width batmaps in the same 16-block).
    let m = 8192usize;
    let mut transactions: Vec<Vec<u32>> = Vec::with_capacity(m);
    for t in 0..m {
        let mut row = vec![0u32]; // item 0 in every transaction
        if t % 512 == 0 {
            row.push(1 + (t / 512) as u32 % 15);
        }
        transactions.push(row);
    }
    let db = TransactionDb::new(16, transactions);
    let report = mine(&db, &MinerConfig::default());
    assert_eq!(report.pairs, brute_force_pairs(&db, 1));
}

#[test]
fn minsup_above_everything_yields_empty() {
    let db = TransactionDb::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
    let report = mine(
        &db,
        &MinerConfig {
            minsup: 1000,
            ..Default::default()
        },
    );
    assert!(report.pairs.is_empty());
}
