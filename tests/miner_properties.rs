//! Property-based tests on the mining pipeline and baselines: random
//! databases, every miner, one oracle.

use fim::pairs::brute_force_pairs;
use fim::{apriori, eclat, fpgrowth, BitmapIndex, TransactionDb, VerticalDb};
use pairminer::{mine, Engine, MinerConfig};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    // Up to 60 transactions over up to 20 items.
    (2u32..20, 1usize..60).prop_flat_map(|(n, m)| {
        vec(vec(0u32..n, 0..(n as usize).min(12)), m).prop_map(move |ts| TransactionDb::new(n, ts))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every baseline equals brute force on arbitrary databases.
    #[test]
    fn baselines_match_oracle(db in arb_db(), minsup in 1u64..6) {
        let oracle = brute_force_pairs(&db, minsup);
        prop_assert_eq!(apriori::mine_pairs(&db, minsup), oracle.clone());
        prop_assert_eq!(fpgrowth::mine_pairs(&db, minsup), oracle.clone());
        let v = VerticalDb::from_horizontal(&db);
        prop_assert_eq!(eclat::mine_pairs(&v, minsup), oracle.clone());
        prop_assert_eq!(BitmapIndex::from_vertical(&v).mine_pairs(minsup), oracle);
    }

    /// The batmap pipeline (GPU engine) equals brute force, across
    /// seeds and tile sizes.
    #[test]
    fn pipeline_matches_oracle(db in arb_db(), seed in 0u64..100, k_shift in 0u32..3) {
        let oracle = brute_force_pairs(&db, 1);
        let report = mine(&db, &MinerConfig {
            seed,
            k: 16 << k_shift,
            ..Default::default()
        });
        prop_assert_eq!(report.pairs, oracle);
    }

    /// GPU and CPU engines are bit-identical.
    #[test]
    fn engines_agree(db in arb_db(), seed in 0u64..100) {
        let gpu = mine(&db, &MinerConfig { seed, ..Default::default() });
        let cpu = mine(&db, &MinerConfig { seed, engine: Engine::Cpu, ..Default::default() });
        prop_assert_eq!(gpu.pairs, cpu.pairs);
    }

    /// Tiny MaxLoop (failure injection) never breaks exactness.
    #[test]
    fn failures_never_break_exactness(db in arb_db(), seed in 0u64..50) {
        let report = mine(&db, &MinerConfig {
            seed,
            max_loop: 1,
            ..Default::default()
        });
        prop_assert_eq!(report.pairs, brute_force_pairs(&db, 1));
    }

    /// Pruning invariant: mining the pruned database at minsup equals
    /// the oracle of the pruned database (id remap is consistent).
    #[test]
    fn prune_then_mine_consistent(db in arb_db(), minsup in 1u64..4) {
        let (pruned, _map) = db.prune_infrequent(minsup);
        let oracle = brute_force_pairs(&pruned, minsup);
        prop_assert_eq!(fpgrowth::mine_pairs(&pruned, minsup), oracle);
    }
}
