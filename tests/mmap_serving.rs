//! Zero-copy snapshot serving, pinned end to end: the mmap load path
//! must be indistinguishable from the buffered one everywhere except
//! speed — byte-identical arenas, identical mining reports, identical
//! served answers — while corruption keeps getting caught (eagerly for
//! headers/side tables/truncation, via the deferred `verify()` for
//! payload flips). Plus the tuning profile's invariance contract: no
//! profile value may change any count.

#![cfg(all(unix, target_pointer_width = "64"))]

use batmap::intersect::count_one_vs_many_tuned;
use batmap::{
    available_backends, Batmap, BatmapArena, BatmapParams, EngineOptions, Parallelism, ReprPolicy,
    SnapshotLoad, TuningProfile,
};
use fim::{TransactionDb, VerticalDb};
use pairminer::{mine_preprocessed, preprocess_with, Engine, MinerConfig, Preprocessed};
use proptest::collection::btree_set;
use proptest::prelude::*;
use std::sync::Arc;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("batmap-mmap-serving-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn db(n_items: u32, len: u32, stride: u32) -> TransactionDb {
    TransactionDb::new(
        n_items,
        (0..len)
            .map(|t| (0..n_items).filter(|&i| (t + i * stride) % 7 < 2).collect())
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For arbitrary small corpora, an arena opened through the mmap
    /// path is byte-identical to the heap-buffered open — every set,
    /// every representation tag — and its deferred `verify()` passes.
    #[test]
    fn mapped_arena_is_byte_identical_to_heap(
        sets in proptest::collection::vec(btree_set(0u32..2_000, 0..80), 1..12),
        seed in 0u64..100,
    ) {
        let params = Arc::new(BatmapParams::new(2_000, seed));
        let mut builder = batmap::ArenaBuilder::new(params.clone());
        for s in &sets {
            let v: Vec<u32> = s.iter().copied().collect();
            builder.push(&Batmap::build_sorted(params.clone(), &v).batmap);
        }
        let arena = builder.finish();
        let path = temp_path(&format!("prop-{seed}-{}.arena", sets.len()));
        arena.write_to_file(&path).unwrap();
        let heap = BatmapArena::read_from_file_with(&path, SnapshotLoad::Buffered).unwrap();
        let mapped = BatmapArena::read_from_file_with(&path, SnapshotLoad::Mmap).unwrap();
        prop_assert!(mapped.verification_pending());
        mapped.verify().unwrap();
        prop_assert_eq!(heap.len(), mapped.len());
        for i in 0..heap.len() {
            prop_assert_eq!(heap.repr(i), mapped.repr(i), "set {}", i);
            prop_assert_eq!(
                heap.get(i).as_bytes(),
                mapped.get(i).as_bytes(),
                "set {}", i
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Flipping any single byte of a corpus snapshot can never produce
    /// a silently-wrong mmap-served corpus: the open rejects it, or the
    /// deferred `verify()` does.
    #[test]
    fn any_byte_flip_is_caught_by_open_or_verify(poke_seed in any::<u64>()) {
        let v = VerticalDb::from_horizontal(&db(10, 300, 5));
        let pre = preprocess_with(&v, 3, 128, EngineOptions::auto().repr(ReprPolicy::Batmap));
        let path = temp_path("flip.snap");
        pre.write_snapshot_file(&path).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        let poke = (poke_seed as usize) % pristine.len();
        let mut bad = pristine.clone();
        bad[poke] ^= 0x20;
        std::fs::write(&path, &bad).unwrap();
        let caught = match Preprocessed::read_snapshot_file_with(&path, SnapshotLoad::Mmap) {
            Err(_) => true,
            Ok(mapped) => mapped.verify().is_err(),
        };
        prop_assert!(caught, "flip at byte {} of {} escaped", poke, pristine.len());
        std::fs::remove_file(&path).unwrap();
    }

    /// The tuning profile is a pure speed knob: whatever (sanitized)
    /// values it carries, the batched one-vs-many driver's counts do
    /// not move, under any available backend.
    #[test]
    fn tuning_profile_never_changes_counts(
        probe in btree_set(0u32..5_000, 1..150),
        sets in proptest::collection::vec(btree_set(0u32..5_000, 0..150), 0..10),
        sweep_block in 0usize..20,
        prefetch_dist in 0usize..100,
    ) {
        let params = Arc::new(BatmapParams::new(5_000, 7));
        let pv: Vec<u32> = probe.iter().copied().collect();
        let bp = Batmap::build_sorted(params.clone(), &pv).batmap;
        prop_assume!(bp.len() == pv.len());
        let many: Vec<Batmap> = sets
            .iter()
            .map(|s| {
                let v: Vec<u32> = s.iter().copied().collect();
                Batmap::build_sorted(params.clone(), &v).batmap
            })
            .collect();
        prop_assume!(many.iter().zip(&sets).all(|(m, s)| m.len() == s.len()));
        let expect: Vec<u64> = sets.iter().map(|s| probe.intersection(s).count() as u64).collect();
        let profile = TuningProfile {
            tile_side: 2048,
            sweep_block,
            prefetch_dist,
        }
        .sanitized();
        for backend in available_backends() {
            let mut out = vec![0u64; many.len()];
            count_one_vs_many_tuned(backend, &bp, &many, &mut out, profile);
            prop_assert_eq!(&out, &expect, "backend {} profile {:?}", backend, profile);
        }
    }
}

/// End to end: a snapshot served through the mmap path yields a mining
/// report identical to the buffered path's, for both storage policies.
#[test]
fn mmap_and_buffered_corpora_mine_identically() {
    let d = db(24, 600, 7);
    let v = VerticalDb::from_horizontal(&d);
    for (name, repr) in [
        ("batmap", ReprPolicy::Batmap),
        ("hybrid", ReprPolicy::Hybrid),
    ] {
        let config = MinerConfig {
            minsup: 2,
            seed: 11,
            engine: Engine::Cpu,
            options: EngineOptions::auto()
                .repr(repr)
                .threads(Parallelism::Serial),
            ..MinerConfig::default()
        };
        let pre = preprocess_with(&v, config.seed, config.max_loop, config.options);
        let path = temp_path(&format!("mine-{name}.snap"));
        pre.write_snapshot_file(&path).unwrap();
        let buffered =
            Preprocessed::read_snapshot_file_with(&path, SnapshotLoad::Buffered).unwrap();
        let mapped = Preprocessed::read_snapshot_file_with(&path, SnapshotLoad::Mmap).unwrap();
        let a = mine_preprocessed(&d, &buffered, &config);
        let b = mine_preprocessed(&d, &mapped, &config);
        assert_eq!(
            a.pairs, b.pairs,
            "{name}: mmap mining must not change results"
        );
        assert_eq!(a.comparisons, b.comparisons, "{name}");
        std::fs::remove_file(&path).unwrap();
    }
}

/// The server's snapshot-open entry point honours the load knob and
/// serves byte-identical answers either way.
#[test]
fn server_open_snapshots_serves_identically_under_both_loads() {
    use batmap_server::{EngineConfig, QueryEngine, Request, Response};
    let d = db(16, 400, 3);
    let v = VerticalDb::from_horizontal(&d);
    let pre = preprocess_with(&v, 5, 128, EngineOptions::auto().repr(ReprPolicy::Batmap));
    let path = temp_path("served.snap");
    pre.write_snapshot_file(&path).unwrap();

    let answers = |load: SnapshotLoad| -> Vec<Response> {
        let config = EngineConfig {
            options: EngineOptions::auto().load(load),
            shards: 2,
            ..EngineConfig::default()
        };
        let engine = QueryEngine::open_snapshots(&[&path], config).unwrap();
        let mut out = Vec::new();
        for a in 0..4u32 {
            for b in 0..16u32 {
                out.push(engine.query(0, Request::Count { a, b }));
            }
        }
        out.push(engine.query(
            0,
            Request::TopK {
                probe: batmap_server::proto::Probe::Set(1),
                k: 5,
            },
        ));
        out.push(engine.query(0, Request::Info));
        out
    };
    let buffered = answers(SnapshotLoad::Buffered);
    let mapped = answers(SnapshotLoad::Mmap);
    assert_eq!(
        buffered, mapped,
        "served answers must not depend on the load path"
    );
    std::fs::remove_file(&path).unwrap();
}

/// A corrupted snapshot cannot sneak into a serving engine through the
/// mmap path: `open_snapshots` surfaces the error.
#[test]
fn server_open_rejects_truncated_snapshots() {
    use batmap_server::{EngineConfig, QueryEngine};
    let v = VerticalDb::from_horizontal(&db(8, 200, 1));
    let pre = preprocess_with(&v, 2, 128, EngineOptions::auto().repr(ReprPolicy::Batmap));
    let path = temp_path("truncated.snap");
    pre.write_snapshot_file(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    for load in [SnapshotLoad::Buffered, SnapshotLoad::Mmap] {
        let config = EngineConfig {
            options: EngineOptions::auto().load(load),
            ..EngineConfig::default()
        };
        assert!(
            QueryEngine::open_snapshots(&[&path], config).is_err(),
            "a truncated snapshot must not open under {load}"
        );
    }
    std::fs::remove_file(&path).unwrap();
}
