//! Property-based tests (proptest) on the core data-structure
//! invariants the paper's correctness rests on.

use batmap::{Batmap, BatmapParams, EngineOptions, MatchKernel as _, UncompressedBatmap, TABLES};
use proptest::collection::btree_set;
use proptest::prelude::*;
use std::sync::Arc;

const M: u64 = 20_000;

fn arb_set(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    btree_set(0u32..M as u32, 0..max_len).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Intersection counting is exact for arbitrary set pairs,
    /// including very different sizes (the folding path).
    #[test]
    fn intersection_count_is_exact(a in arb_set(800), b in arb_set(800), seed in 0u64..1000) {
        let params = Arc::new(BatmapParams::new(M, seed));
        let ba = Batmap::build_sorted(params.clone(), &a).batmap;
        let bb = Batmap::build_sorted(params.clone(), &b).batmap;
        prop_assume!(ba.len() == a.len() && bb.len() == b.len()); // no failures at this load
        let sb: std::collections::HashSet<u32> = b.iter().copied().collect();
        let expect = a.iter().filter(|x| sb.contains(x)).count() as u64;
        prop_assert_eq!(ba.intersect_count(&bb), expect);
        prop_assert_eq!(bb.intersect_count(&ba), expect);
    }

    /// Membership has no false positives or negatives.
    #[test]
    fn membership_is_exact(a in arb_set(500), probes in proptest::collection::vec(0u32..M as u32, 50), seed in 0u64..1000) {
        let params = Arc::new(BatmapParams::new(M, seed));
        let bm = Batmap::build_sorted(params, &a).batmap;
        prop_assume!(bm.len() == a.len());
        let set: std::collections::HashSet<u32> = a.iter().copied().collect();
        for p in probes {
            prop_assert_eq!(bm.contains(p), set.contains(&p));
        }
    }

    /// Elements can be decoded back out of the compressed layout.
    #[test]
    fn elements_roundtrip(a in arb_set(600), seed in 0u64..1000) {
        let params = Arc::new(BatmapParams::new(M, seed));
        let bm = Batmap::build_sorted(params, &a).batmap;
        prop_assume!(bm.len() == a.len());
        let mut got = bm.elements();
        got.sort_unstable();
        prop_assert_eq!(got, a);
    }

    /// The compressed batmap and the uncompressed §II reference
    /// structure agree on every intersection.
    #[test]
    fn compressed_matches_uncompressed(a in arb_set(400), b in arb_set(400), seed in 0u64..500) {
        let params = Arc::new(BatmapParams::new(M, seed));
        let ca = Batmap::build_sorted(params.clone(), &a).batmap;
        let cb = Batmap::build_sorted(params.clone(), &b).batmap;
        prop_assume!(ca.len() == a.len() && cb.len() == b.len());
        let ua = UncompressedBatmap::build(params.clone(), &a);
        let ub = UncompressedBatmap::build(params, &b);
        prop_assume!(ua.is_some() && ub.is_some());
        prop_assert_eq!(ca.intersect_count(&cb), ua.unwrap().intersect_count(&ub.unwrap()));
    }

    /// Shared-hash-function folding: the slot of x in a small batmap is
    /// the slot in any larger batmap reduced modulo the smaller width.
    #[test]
    fn fold_congruence(x in 0u64..M, seed in 0u64..1000, li in 0u32..4, lj in 0u32..4) {
        let params = BatmapParams::new(M, seed);
        let (li, lj) = (li.min(lj), li.max(lj));
        let ri = params.r0() << li;
        let rj = params.r0() << lj;
        let wi = TABLES * ri as usize;
        for t in 0..TABLES {
            let pi = params.perms().apply(t, x);
            prop_assert_eq!(params.slot_of(t, pi, ri), params.slot_of(t, pi, rj) % wi);
        }
    }

    /// Exactly one of an element's two copies carries the indicator bit.
    #[test]
    fn one_indicator_per_element(a in arb_set(300), seed in 0u64..500) {
        let params = Arc::new(BatmapParams::new(M, seed));
        let bm = Batmap::build_sorted(params, &a).batmap;
        prop_assume!(bm.len() == a.len());
        let ones = bm.as_bytes().iter().filter(|&&b| batmap::slot::indicator(b)).count();
        prop_assert_eq!(ones, a.len());
    }

    /// Self-intersection returns the cardinality (every element counted
    /// exactly once despite being stored twice).
    #[test]
    fn self_intersection_is_len(a in arb_set(700), seed in 0u64..1000) {
        let params = Arc::new(BatmapParams::new(M, seed));
        let bm = Batmap::build_sorted(params, &a).batmap;
        prop_assume!(bm.len() == a.len());
        prop_assert_eq!(bm.intersect_count(&bm), a.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every `MatchKernel` backend returns identical counts on random
    /// slot arrays — equal-width, unaligned tails, and the wrapped
    /// (folded) path alike.
    #[test]
    fn kernel_backends_are_equivalent(
        words in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..64),
        tail in 0usize..8,
        wrap_factor in 1usize..4,
    ) {
        use batmap::ALL_BACKENDS;
        let mut xs: Vec<u8> = words.iter().flat_map(|(x, _)| x.to_le_bytes()).collect();
        let mut ys: Vec<u8> = words.iter().flat_map(|(_, y)| y.to_le_bytes()).collect();
        xs.truncate(xs.len() - tail);
        ys.truncate(ys.len() - tail);
        let reference = batmap::kernel::ScalarKernel.count_equal_width(&xs, &ys);
        for backend in ALL_BACKENDS {
            prop_assert_eq!(
                backend.kernel().count_equal_width(&xs, &ys),
                reference,
                "equal-width disagreement in backend {}", backend
            );
        }
        // Wrapped path: tile `ys` along a `wrap_factor`× larger array.
        let large: Vec<u8> = xs
            .iter()
            .cycle()
            .take(xs.len() * wrap_factor)
            .copied()
            .collect();
        if !ys.is_empty() {
            let wrapped_ref = batmap::kernel::ScalarKernel.count_wrapped(&large, &ys);
            for backend in ALL_BACKENDS {
                prop_assert_eq!(
                    backend.kernel().count_wrapped(&large, &ys),
                    wrapped_ref,
                    "wrapped disagreement in backend {}", backend
                );
            }
        }
    }

    /// End to end: batmaps built over a backend-pinned universe count
    /// intersections identically under every backend.
    #[test]
    fn kernel_backends_agree_on_batmaps(a in arb_set(400), b in arb_set(400), seed in 0u64..200) {
        use batmap::ALL_BACKENDS;
        let reference = {
            let params = Arc::new(BatmapParams::new(M, seed));
            let ba = Batmap::build_sorted(params.clone(), &a).batmap;
            let bb = Batmap::build_sorted(params, &b).batmap;
            prop_assume!(ba.len() == a.len() && bb.len() == b.len());
            ba.intersect_count(&bb)
        };
        for backend in ALL_BACKENDS {
            let params = Arc::new(BatmapParams::new(M, seed).with_engine_options(EngineOptions::auto().kernel(backend)));
            let ba = Batmap::build_sorted(params.clone(), &a).batmap;
            let bb = Batmap::build_sorted(params, &b).batmap;
            prop_assume!(ba.len() == a.len() && bb.len() == b.len());
            prop_assert_eq!(ba.intersect_count(&bb), reference, "backend {}", backend);
            prop_assert_eq!(
                ba.intersect_count_with(backend.kernel(), &bb),
                reference,
                "explicit dispatch, backend {}", backend
            );
        }
    }

    /// SWAR kernels agree with the scalar reference on arbitrary words.
    #[test]
    fn swar_kernels_agree(x in any::<u64>(), y in any::<u64>()) {
        let expect = batmap::swar::match_count_bytes(&x.to_le_bytes(), &y.to_le_bytes());
        prop_assert_eq!(batmap::swar::match_count_u64(x, y) as u64, expect);
        let (xl, xh) = (x as u32, (x >> 32) as u32);
        let (yl, yh) = (y as u32, (y >> 32) as u32);
        prop_assert_eq!(
            (batmap::swar::match_count_u32(xl, yl) + batmap::swar::match_count_u32(xh, yh)) as u64,
            expect
        );
    }

    /// Merge intersection variants are equivalent.
    #[test]
    fn merge_variants_equivalent(
        a in btree_set(0u32..5_000, 0..400),
        b in btree_set(0u32..5_000, 0..400)
    ) {
        let a: Vec<u32> = a.into_iter().collect();
        let b: Vec<u32> = b.into_iter().collect();
        let expect = fim::merge::count_branchy(&a, &b);
        prop_assert_eq!(fim::merge::count_branchless(&a, &b), expect);
        prop_assert_eq!(fim::merge::count_galloping(&a, &b), expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// WAH compression round-trips and intersects exactly.
    #[test]
    fn wah_roundtrip_and_intersection(
        a in btree_set(0u32..100_000, 0..500),
        b in btree_set(0u32..100_000, 0..500)
    ) {
        let a: Vec<u32> = a.into_iter().collect();
        let b: Vec<u32> = b.into_iter().collect();
        let wa = fim::WahBitmap::from_sorted(100_000, &a);
        let wb = fim::WahBitmap::from_sorted(100_000, &b);
        prop_assert_eq!(wa.decode(), a.clone());
        prop_assert_eq!(wa.count(), a.len() as u64);
        let expect = fim::merge::count_branchy(&a, &b);
        prop_assert_eq!(wa.intersect_count(&wb), expect);
    }

    /// The §V d-of-(d+1) structure counts k-way intersections exactly.
    #[test]
    fn multiway_counts_exact(
        a in btree_set(0u32..5_000, 0..300),
        b in btree_set(0u32..5_000, 0..300),
        c in btree_set(0u32..5_000, 0..300),
        seed in 0u64..200
    ) {
        let params = std::sync::Arc::new(batmap::MultiwayParams::new(5_000, 3, seed));
        let av: Vec<u32> = a.iter().copied().collect();
        let bv: Vec<u32> = b.iter().copied().collect();
        let cv: Vec<u32> = c.iter().copied().collect();
        let ma = batmap::MultiwayBatmap::build(params.clone(), &av);
        let mb = batmap::MultiwayBatmap::build(params.clone(), &bv);
        let mc = batmap::MultiwayBatmap::build(params, &cv);
        prop_assume!(ma.is_some() && mb.is_some() && mc.is_some());
        let (ma, mb, mc) = (ma.unwrap(), mb.unwrap(), mc.unwrap());
        let expect3 = a.iter().filter(|x| b.contains(x) && c.contains(x)).count() as u64;
        prop_assert_eq!(batmap::MultiwayBatmap::intersect_count(&[&ma, &mb, &mc]), expect3);
        let expect2 = a.intersection(&b).count() as u64;
        prop_assert_eq!(batmap::MultiwayBatmap::intersect_count(&[&ma, &mb]), expect2);
    }

    /// Probe counting agrees with exact intersection for any k.
    #[test]
    fn probe_counting_exact(
        sets in proptest::collection::vec(btree_set(0u32..3_000, 1..200), 1..5),
        seed in 0u64..100
    ) {
        let params = std::sync::Arc::new(BatmapParams::new(3_000, seed));
        let vecs: Vec<Vec<u32>> = sets.iter().map(|s| s.iter().copied().collect()).collect();
        let maps: Vec<Batmap> = vecs.iter()
            .map(|v| Batmap::build_sorted(params.clone(), v).batmap)
            .collect();
        prop_assume!(maps.iter().zip(&vecs).all(|(m, v)| m.len() == v.len()));
        let refs: Vec<&Batmap> = maps.iter().collect();
        let mut expect: std::collections::BTreeSet<u32> = sets[0].clone();
        for s in &sets[1..] {
            expect = expect.intersection(s).copied().collect();
        }
        prop_assert_eq!(batmap::intersect_count_probe(&refs), expect.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dynamic updates converge to the same state as a fresh build:
    /// after an arbitrary insert/remove script, membership, cardinality
    /// and intersections match a set-theoretic model.
    #[test]
    fn dynamic_updates_match_model(
        script in proptest::collection::vec((0u32..M as u32, proptest::bool::ANY), 1..400),
        probe in arb_set(300),
        seed in 0u64..200
    ) {
        let params = Arc::new(BatmapParams::new(M, seed));
        let mut bm = Batmap::build(params.clone(), &[]).batmap;
        let mut model = std::collections::BTreeSet::new();
        for (x, is_insert) in script {
            if is_insert {
                bm.insert_mut(x);
                model.insert(x);
            } else {
                bm.remove_mut(x);
                model.remove(&x);
            }
        }
        prop_assert_eq!(bm.len(), model.len());
        let bp = Batmap::build_sorted(params, &probe).batmap;
        prop_assume!(bp.len() == probe.len());
        let expect = probe.iter().filter(|x| model.contains(x)).count() as u64;
        prop_assert_eq!(bm.intersect_count(&bp), expect);
        let mut decoded = bm.elements();
        decoded.sort_unstable();
        prop_assert_eq!(decoded, model.into_iter().collect::<Vec<_>>());
    }
}
