//! Chaos suite: the serving stack under injected faults.
//!
//! Every test here arms named fault points (`batmap::fault`) and then
//! asserts the hardening invariants the server promises:
//!
//! - every **delivered** answer is byte-identical to an unfaulted
//!   replay — faults may shed or error queries, never corrupt them;
//! - worker panics are contained, answered with typed errors, and the
//!   worker is restarted by its supervisor;
//! - overload sheds with a typed [`Response::Overloaded`], not by
//!   queueing without bound;
//! - the server always shuts down cleanly;
//! - a crash mid-snapshot-write leaves the previous snapshot loadable.
//!
//! The fault registry is process-global, so every test serializes on
//! one gate mutex and disarms on both entry and exit (panic included).

use batmap::{EngineOptions, Parallelism, ReprPolicy};
use batmap_server::proto::encode_response;
use batmap_server::{
    Client, EngineConfig, Probe, QueryEngine, Request, Response, RetryPolicy, Server,
};
use fim::{TransactionDb, VerticalDb};
use pairminer::{preprocess_with, Preprocessed};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Mutex;

/// Global gate: fault points are process-wide state, so chaos tests
/// must not overlap. The guard disarms everything on entry and again
/// on drop so a panicking test cannot leak an armed fault into the
/// next one.
static GATE: Mutex<()> = Mutex::new(());

struct FaultGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

fn guarded() -> FaultGuard<'static> {
    let lock = GATE.lock().unwrap_or_else(|p| p.into_inner());
    batmap::fault::disarm_all();
    FaultGuard { _lock: lock }
}

impl Drop for FaultGuard<'_> {
    fn drop(&mut self) {
        batmap::fault::disarm_all();
    }
}

fn db() -> TransactionDb {
    TransactionDb::new(
        20,
        (0..240usize)
            .map(|t| (0..20u32).filter(|&i| (t as u32 + i * 5) % 7 < 2).collect())
            .collect(),
    )
}

fn corpus(d: &TransactionDb) -> Preprocessed {
    let v = VerticalDb::from_horizontal(d);
    preprocess_with(&v, 7, 128, EngineOptions::auto().repr(ReprPolicy::Hybrid))
}

fn engine_with(pre: &Preprocessed, shards: usize, max_queue_depth: usize) -> QueryEngine {
    QueryEngine::new(
        vec![pre.clone()],
        EngineConfig {
            options: EngineOptions::auto().threads(Parallelism::Serial),
            shards,
            max_queue_depth,
            ..EngineConfig::default()
        },
    )
}

/// `true` for the typed degraded-mode responses a faulted server may
/// legitimately deliver instead of an answer.
fn is_degraded(response: &Response) -> bool {
    matches!(response, Response::Error(_) | Response::Overloaded)
}

/// The spec grammar round-trips through the registry (the env-arming
/// path itself is pinned in `tests/faultpoints_env.rs`, in its own
/// binary — this suite disarms the global registry at will).
#[test]
fn spec_arms_and_disarms_fault_points() {
    let _guard = guarded();
    batmap::fault::arm_from_spec("chaos.env.probe=error(manual)x1").unwrap();
    assert!(batmap::fault::armed_sites()
        .iter()
        .any(|s| s == "chaos.env.probe"));
    batmap::fault::disarm("chaos.env.probe");
    assert!(batmap::fault::armed_sites().is_empty());
}

/// A worker panic mid-batch is contained: the in-flight query gets a
/// typed error (never a hang, never a torn reply), the supervisor
/// restarts the worker, and the next query on the same shard succeeds.
#[test]
fn worker_panic_is_answered_and_worker_restarts() {
    let _guard = guarded();
    let d = db();
    let pre = corpus(&d);
    let engine = engine_with(&pre, 1, 0);
    let clean = engine_with(&pre, 1, 0);
    let want = clean.query(0, Request::Count { a: 1, b: 2 });

    batmap::fault::arm("engine.worker.batch", "panic(injected worker crash)x1").unwrap();
    match engine.query(0, Request::Count { a: 1, b: 2 }) {
        Response::Error(message) => assert!(
            message.contains("panic"),
            "typed error should say the worker panicked: {message}"
        ),
        other => panic!("expected a typed error from the panicked worker, got {other:?}"),
    }
    assert!(
        engine.worker_restarts() >= 1,
        "supervisor must restart the worker"
    );

    // The restarted worker answers correctly.
    let after = engine.query(0, Request::Count { a: 1, b: 2 });
    assert_eq!(encode_response(0, &after), encode_response(0, &want));
}

/// A panic inside one top-k shard must never deliver a partial merge:
/// the query errors whole, then succeeds once the fault is spent.
#[test]
fn topk_shard_panic_never_delivers_partial_results() {
    let _guard = guarded();
    let d = db();
    let pre = corpus(&d);
    let engine = engine_with(&pre, 2, 0);
    let clean = engine_with(&pre, 2, 0);
    let request = Request::TopK {
        probe: Probe::Set(3),
        k: 4,
    };
    let want = clean.query(0, request.clone());

    batmap::fault::arm("engine.topk.shard", "panic(injected shard crash)x1").unwrap();
    match engine.query(0, request.clone()) {
        Response::Error(_) => {}
        other => panic!("a faulted top-k must error whole, got {other:?}"),
    }
    let after = engine.query(0, request);
    assert_eq!(encode_response(0, &after), encode_response(0, &want));
}

/// With a queue cap of 1 and a deliberately slowed worker, a deep
/// pipeline must shed with `Response::Overloaded` — and everything that
/// *was* delivered must still replay byte-identically.
#[test]
fn overload_sheds_typed_and_delivered_answers_stay_exact() {
    let _guard = guarded();
    let d = db();
    let pre = corpus(&d);
    let engine = engine_with(&pre, 1, 1);
    let clean = engine_with(&pre, 1, 0);

    batmap::fault::arm("engine.worker.batch", "delay(25)").unwrap();
    let handle = Server::bind_tcp("127.0.0.1:0").unwrap().serve(engine);
    let addr = handle.tcp_addr().unwrap();

    let requests: Vec<Request> = (0..64u32)
        .map(|i| Request::Count {
            a: i % 20,
            b: (i + 3) % 20,
        })
        .collect();
    let mut client = Client::connect_tcp(addr)
        .unwrap()
        .with_retry(RetryPolicy::none());
    let outcomes = client.pipeline_outcomes(0, &requests);
    // The replay engine lives in this same process and would hit the
    // global fault points too — disarm before computing oracles.
    batmap::fault::disarm_all();

    let mut shed = 0usize;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(Response::Overloaded) => shed += 1,
            Ok(response) => {
                let want = clean.query(0, requests[i].clone());
                assert_eq!(
                    encode_response(i as u64, response),
                    encode_response(i as u64, &want),
                    "delivered answer {i} must be exact under overload"
                );
            }
            Err(e) => panic!("no transport failure was injected: {e}"),
        }
    }
    assert!(shed > 0, "queue cap 1 under a slowed worker must shed");

    client.shutdown().unwrap();
    handle.join();
}

/// A crash at any point of the snapshot write path — header, payload,
/// side tables, or the final rename — leaves the previously persisted
/// snapshot fully loadable and leaves no temp droppings behind.
#[test]
fn mid_write_crash_leaves_previous_snapshot_loadable() {
    let _guard = guarded();
    let d = db();
    let pre = corpus(&d);
    let dir = std::env::temp_dir().join(format!("batmap-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.batmap");

    pre.write_snapshot_file(&path).unwrap();
    let golden = std::fs::read(&path).unwrap();

    for site in [
        "snapshot.write.header",
        "snapshot.write.payload",
        "snapshot.write.sidetables",
        "snapshot.write.rename",
    ] {
        batmap::fault::arm(site, &format!("error(crash at {site})x1")).unwrap();
        let err = pre.write_snapshot_file(&path);
        assert!(err.is_err(), "{site} fault must fail the write");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            golden,
            "{site}: previous snapshot bytes must be untouched"
        );
        let reloaded = Preprocessed::read_snapshot_file(&path).unwrap();
        let mut bytes = Vec::new();
        reloaded.write_snapshot(&mut bytes).unwrap();
        assert_eq!(bytes, golden, "{site}: previous snapshot must round-trip");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "{site}: temp files must be cleaned up"
        );
    }
    batmap::fault::disarm_all();

    // With faults spent the write goes through atomically.
    pre.write_snapshot_file(&path).unwrap();
    Preprocessed::read_snapshot_file(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The fault menu for the chaos property: connection reads and writes
/// failing intermittently, workers and top-k shards panicking. Every
/// action is `x`-capped so the system can always make progress once
/// the budget is spent.
fn fault_menu(pick: u8, every: u8, limit: u8) -> (&'static str, String) {
    let every = 2 + (every % 5) as usize;
    let limit = 1 + (limit % 3) as usize;
    match pick % 4 {
        0 => (
            "server.conn.read",
            format!("error(chaos read)@{every}x{limit}"),
        ),
        1 => (
            "server.conn.write",
            format!("error(chaos write)@{every}x{limit}"),
        ),
        2 => (
            "engine.worker.batch",
            format!("panic(chaos batch)@{every}x{limit}"),
        ),
        _ => (
            "engine.topk.shard",
            format!("panic(chaos shard)@{every}x{limit}"),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Concurrent retrying clients against a server with a random
    /// fault mix: connections drop, workers panic, frames stall. The
    /// pinned invariant — every answer that *is* delivered equals the
    /// unfaulted replay byte-for-byte, and the server shuts down
    /// cleanly afterwards.
    #[test]
    fn chaos_delivered_answers_are_exact(
        ops in vec((0u8..4, any::<u32>(), any::<u32>()), 8..24),
        faults in vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..4),
        shards in 1usize..3,
    ) {
        let _guard = guarded();
        let d = db();
        let pre = corpus(&d);
        let requests: Vec<Request> = ops
            .iter()
            .map(|&(op, x, y)| match op % 4 {
                0 => Request::Count { a: x % 20, b: y % 20 },
                1 => Request::Member { set: x % 20, element: y % 240 },
                2 => Request::TopK { probe: Probe::Set(x % 20), k: 1 + y % 4 },
                _ => Request::Info,
            })
            .collect();

        let engine = engine_with(&pre, shards, 0);
        let clean = engine_with(&pre, shards, 0);
        let handle = Server::bind_tcp("127.0.0.1:0").unwrap().serve(engine);
        let addr = handle.tcp_addr().unwrap();

        for &(pick, every, limit) in &faults {
            let (site, spec) = fault_menu(pick, every, limit);
            batmap::fault::arm(site, &spec).unwrap();
        }

        const CLIENTS: usize = 3;
        let mut by_client: Vec<Vec<(usize, Request)>> =
            (0..CLIENTS).map(|_| Vec::new()).collect();
        for (j, request) in requests.iter().enumerate() {
            by_client[j % CLIENTS].push((j, request.clone()));
        }
        let mut delivered: Vec<Option<Response>> = vec![None; requests.len()];
        std::thread::scope(|scope| {
            let answers: Vec<_> = by_client
                .iter()
                .map(|slice| {
                    scope.spawn(move || {
                        let retry = RetryPolicy {
                            max_retries: 6,
                            base_backoff: std::time::Duration::from_millis(2),
                            max_backoff: std::time::Duration::from_millis(20),
                        };
                        let mut client = match Client::connect_tcp(addr) {
                            Ok(c) => c.with_retry(retry),
                            // The read fault can kill the handshake;
                            // that client simply delivers nothing.
                            Err(_) => return Vec::new(),
                        };
                        let reqs: Vec<Request> =
                            slice.iter().map(|(_, r)| r.clone()).collect();
                        client.pipeline_outcomes(0, &reqs)
                    })
                })
                .collect();
            for (slice, thread) in by_client.iter().zip(answers) {
                for ((j, _), outcome) in slice.iter().zip(thread.join().unwrap()) {
                    if let Ok(response) = outcome {
                        delivered[*j] = Some(response);
                    }
                }
            }
        });

        // The clean engine shares this process's global fault registry;
        // chaos is over, so disarm before computing replay oracles.
        batmap::fault::disarm_all();

        // Exactness of everything delivered: typed degraded responses
        // are legitimate under chaos, real answers must be bit-exact.
        for (j, slot) in delivered.iter().enumerate() {
            let Some(response) = slot else { continue };
            if is_degraded(response) {
                continue;
            }
            let want = clean.query(0, requests[j].clone());
            prop_assert_eq!(
                encode_response(j as u64, response),
                encode_response(j as u64, &want),
                "chaos-delivered answer {} ({:?}) must equal the clean replay",
                j,
                &requests[j]
            );
        }

        // Clean shutdown is non-negotiable, whatever was injected.
        let mut closer = Client::connect_tcp(addr).unwrap();
        closer.shutdown().unwrap();
        handle.join();
    }
}
