//! Chaos suite: the serving stack under injected faults.
//!
//! Every test here arms named fault points (`batmap::fault`) and then
//! asserts the hardening invariants the server promises:
//!
//! - every **delivered** answer is byte-identical to an unfaulted
//!   replay — faults may shed or error queries, never corrupt them;
//! - worker panics are contained, answered with typed errors, and the
//!   worker is restarted by its supervisor;
//! - overload sheds with a typed [`Response::Overloaded`], not by
//!   queueing without bound;
//! - the server always shuts down cleanly;
//! - a crash mid-snapshot-write leaves the previous snapshot loadable.
//!
//! The fault registry is process-global, so every test serializes on
//! one gate mutex and disarms on both entry and exit (panic included).

use batmap::{EngineOptions, Parallelism, ReprPolicy};
use batmap_server::proto::encode_response;
use batmap_server::{
    Client, EngineConfig, Probe, QueryEngine, Request, Response, RetryPolicy, Server,
};
use fim::{TransactionDb, VerticalDb};
use pairminer::{preprocess_with, LayeredCorpus, Preprocessed};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Mutex;

/// Global gate: fault points are process-wide state, so chaos tests
/// must not overlap. The guard disarms everything on entry and again
/// on drop so a panicking test cannot leak an armed fault into the
/// next one.
static GATE: Mutex<()> = Mutex::new(());

struct FaultGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

fn guarded() -> FaultGuard<'static> {
    let lock = GATE.lock().unwrap_or_else(|p| p.into_inner());
    batmap::fault::disarm_all();
    FaultGuard { _lock: lock }
}

impl Drop for FaultGuard<'_> {
    fn drop(&mut self) {
        batmap::fault::disarm_all();
    }
}

fn db() -> TransactionDb {
    TransactionDb::new(
        20,
        (0..240usize)
            .map(|t| (0..20u32).filter(|&i| (t as u32 + i * 5) % 7 < 2).collect())
            .collect(),
    )
}

/// Like [`db`], but with the trailing 40 transaction slots left free so
/// write-path tests have room to insert.
fn writable_db() -> TransactionDb {
    TransactionDb::new(
        20,
        (0..240usize)
            .map(|t| {
                if t >= 200 {
                    Vec::new()
                } else {
                    (0..20u32).filter(|&i| (t as u32 + i * 5) % 7 < 2).collect()
                }
            })
            .collect(),
    )
}

/// Deterministic non-empty ascending item list for writes to slot `tid`.
fn write_items(tid: u32) -> Vec<u32> {
    let mut items: Vec<u32> = (0..20).filter(|&i| (tid + i * 3) % 5 < 2).collect();
    if items.is_empty() {
        items.push(tid % 20);
    }
    items
}

fn corpus(d: &TransactionDb) -> Preprocessed {
    let v = VerticalDb::from_horizontal(d);
    preprocess_with(&v, 7, 128, EngineOptions::auto().repr(ReprPolicy::Hybrid))
}

fn engine_with(pre: &Preprocessed, shards: usize, max_queue_depth: usize) -> QueryEngine {
    QueryEngine::new(
        vec![pre.clone()],
        EngineConfig {
            options: EngineOptions::auto().threads(Parallelism::Serial),
            shards,
            max_queue_depth,
            ..EngineConfig::default()
        },
    )
}

/// `true` for the typed degraded-mode responses a faulted server may
/// legitimately deliver instead of an answer.
fn is_degraded(response: &Response) -> bool {
    matches!(response, Response::Error(_) | Response::Overloaded)
}

/// The spec grammar round-trips through the registry (the env-arming
/// path itself is pinned in `tests/faultpoints_env.rs`, in its own
/// binary — this suite disarms the global registry at will).
#[test]
fn spec_arms_and_disarms_fault_points() {
    let _guard = guarded();
    batmap::fault::arm_from_spec("chaos.env.probe=error(manual)x1").unwrap();
    assert!(batmap::fault::armed_sites()
        .iter()
        .any(|s| s == "chaos.env.probe"));
    batmap::fault::disarm("chaos.env.probe");
    assert!(batmap::fault::armed_sites().is_empty());
}

/// A worker panic mid-batch is contained: the in-flight query gets a
/// typed error (never a hang, never a torn reply), the supervisor
/// restarts the worker, and the next query on the same shard succeeds.
#[test]
fn worker_panic_is_answered_and_worker_restarts() {
    let _guard = guarded();
    let d = db();
    let pre = corpus(&d);
    let engine = engine_with(&pre, 1, 0);
    let clean = engine_with(&pre, 1, 0);
    let want = clean.query(0, Request::Count { a: 1, b: 2 });

    batmap::fault::arm("engine.worker.batch", "panic(injected worker crash)x1").unwrap();
    match engine.query(0, Request::Count { a: 1, b: 2 }) {
        Response::Error(message) => assert!(
            message.contains("panic"),
            "typed error should say the worker panicked: {message}"
        ),
        other => panic!("expected a typed error from the panicked worker, got {other:?}"),
    }
    assert!(
        engine.worker_restarts() >= 1,
        "supervisor must restart the worker"
    );

    // The restarted worker answers correctly.
    let after = engine.query(0, Request::Count { a: 1, b: 2 });
    assert_eq!(encode_response(0, &after), encode_response(0, &want));
}

/// A panic inside one top-k shard must never deliver a partial merge:
/// the query errors whole, then succeeds once the fault is spent.
#[test]
fn topk_shard_panic_never_delivers_partial_results() {
    let _guard = guarded();
    let d = db();
    let pre = corpus(&d);
    let engine = engine_with(&pre, 2, 0);
    let clean = engine_with(&pre, 2, 0);
    let request = Request::TopK {
        probe: Probe::Set(3),
        k: 4,
    };
    let want = clean.query(0, request.clone());

    batmap::fault::arm("engine.topk.shard", "panic(injected shard crash)x1").unwrap();
    match engine.query(0, request.clone()) {
        Response::Error(_) => {}
        other => panic!("a faulted top-k must error whole, got {other:?}"),
    }
    let after = engine.query(0, request);
    assert_eq!(encode_response(0, &after), encode_response(0, &want));
}

/// With a queue cap of 1 and a deliberately slowed worker, a deep
/// pipeline must shed with `Response::Overloaded` — and everything that
/// *was* delivered must still replay byte-identically.
#[test]
fn overload_sheds_typed_and_delivered_answers_stay_exact() {
    let _guard = guarded();
    let d = db();
    let pre = corpus(&d);
    let engine = engine_with(&pre, 1, 1);
    let clean = engine_with(&pre, 1, 0);

    batmap::fault::arm("engine.worker.batch", "delay(25)").unwrap();
    let handle = Server::bind_tcp("127.0.0.1:0").unwrap().serve(engine);
    let addr = handle.tcp_addr().unwrap();

    let requests: Vec<Request> = (0..64u32)
        .map(|i| Request::Count {
            a: i % 20,
            b: (i + 3) % 20,
        })
        .collect();
    let mut client = Client::connect_tcp(addr)
        .unwrap()
        .with_retry(RetryPolicy::none());
    let outcomes = client.pipeline_outcomes(0, &requests);
    // The replay engine lives in this same process and would hit the
    // global fault points too — disarm before computing oracles.
    batmap::fault::disarm_all();

    let mut shed = 0usize;
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Ok(Response::Overloaded) => shed += 1,
            Ok(response) => {
                let want = clean.query(0, requests[i].clone());
                assert_eq!(
                    encode_response(i as u64, response),
                    encode_response(i as u64, &want),
                    "delivered answer {i} must be exact under overload"
                );
            }
            Err(e) => panic!("no transport failure was injected: {e}"),
        }
    }
    assert!(shed > 0, "queue cap 1 under a slowed worker must shed");

    client.shutdown().unwrap();
    handle.join();
}

/// A crash at any point of the snapshot write path — header, payload,
/// side tables, or the final rename — leaves the previously persisted
/// snapshot fully loadable and leaves no temp droppings behind.
#[test]
fn mid_write_crash_leaves_previous_snapshot_loadable() {
    let _guard = guarded();
    let d = db();
    let pre = corpus(&d);
    let dir = std::env::temp_dir().join(format!("batmap-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.batmap");

    pre.write_snapshot_file(&path).unwrap();
    let golden = std::fs::read(&path).unwrap();

    for site in [
        "snapshot.write.header",
        "snapshot.write.payload",
        "snapshot.write.sidetables",
        "snapshot.write.rename",
    ] {
        batmap::fault::arm(site, &format!("error(crash at {site})x1")).unwrap();
        let err = pre.write_snapshot_file(&path);
        assert!(err.is_err(), "{site} fault must fail the write");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            golden,
            "{site}: previous snapshot bytes must be untouched"
        );
        let reloaded = Preprocessed::read_snapshot_file(&path).unwrap();
        let mut bytes = Vec::new();
        reloaded.write_snapshot(&mut bytes).unwrap();
        assert_eq!(bytes, golden, "{site}: previous snapshot must round-trip");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "{site}: temp files must be cleaned up"
        );
    }
    batmap::fault::disarm_all();

    // With faults spent the write goes through atomically.
    pre.write_snapshot_file(&path).unwrap();
    Preprocessed::read_snapshot_file(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The fault menu for the chaos property: connection reads and writes
/// failing intermittently, workers and top-k shards panicking. Every
/// action is `x`-capped so the system can always make progress once
/// the budget is spent.
fn fault_menu(pick: u8, every: u8, limit: u8) -> (&'static str, String) {
    let every = 2 + (every % 5) as usize;
    let limit = 1 + (limit % 3) as usize;
    match pick % 4 {
        0 => (
            "server.conn.read",
            format!("error(chaos read)@{every}x{limit}"),
        ),
        1 => (
            "server.conn.write",
            format!("error(chaos write)@{every}x{limit}"),
        ),
        2 => (
            "engine.worker.batch",
            format!("panic(chaos batch)@{every}x{limit}"),
        ),
        _ => (
            "engine.topk.shard",
            format!("panic(chaos shard)@{every}x{limit}"),
        ),
    }
}

/// A compaction crash — at the in-memory swap or at any stage of the
/// snapshot write — must leave the previously persisted snapshot fully
/// loadable and the live corpus still answering exactly (the delta
/// layer stays in place when the swap faults).
#[test]
fn crashed_compaction_leaves_previous_snapshot_loadable() {
    let _guard = guarded();
    let d = writable_db();
    let options = EngineOptions::auto().repr(ReprPolicy::Hybrid);
    let dir = std::env::temp_dir().join(format!("batmap-chaos-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("live.batmap");

    let mut corpus = LayeredCorpus::new(&d, 7, 128, options);
    corpus.compact_to_file(&path).unwrap();
    let golden = std::fs::read(&path).unwrap();

    // Dirty the corpus, then crash the in-memory swap: the compaction
    // must fail whole, before anything moved.
    corpus.insert_txn(201, &write_items(201)).unwrap();
    let live_pair = corpus.pair_count(0, 3);
    batmap::fault::arm("ingest.compact.swap", "error(injected swap crash)x1").unwrap();
    assert!(
        corpus.compact_to_file(&path).is_err(),
        "swap fault must fail the compaction"
    );
    assert!(
        corpus.is_dirty(),
        "failed swap must leave the delta in place"
    );
    assert_eq!(
        corpus.pair_count(0, 3),
        live_pair,
        "answers must survive the crash"
    );
    assert_eq!(
        std::fs::read(&path).unwrap(),
        golden,
        "snapshot bytes must be untouched"
    );
    Preprocessed::read_snapshot_file(&path).unwrap();

    // Crash the file rename instead: the swap goes through (corpus is
    // clean) but the previous snapshot must still be the loadable one.
    batmap::fault::arm("snapshot.write.rename", "error(injected rename crash)x1").unwrap();
    assert!(
        corpus.compact_to_file(&path).is_err(),
        "rename fault must fail the write"
    );
    assert!(!corpus.is_dirty(), "the in-memory swap already happened");
    assert_eq!(corpus.pair_count(0, 3), live_pair);
    assert_eq!(
        std::fs::read(&path).unwrap(),
        golden,
        "snapshot bytes must be untouched"
    );
    Preprocessed::read_snapshot_file(&path).unwrap();
    batmap::fault::disarm_all();

    // Faults spent: the snapshot persists and reloads to the same
    // answers as the live corpus.
    corpus.insert_txn(202, &write_items(202)).unwrap();
    corpus.compact_to_file(&path).unwrap();
    let reloaded = Preprocessed::read_snapshot_file(&path).unwrap();
    let restored = LayeredCorpus::from_preprocessed(reloaded, 7);
    for a in 0..20 {
        for b in 0..20 {
            assert_eq!(
                restored.pair_count(a, b),
                corpus.pair_count(a, b),
                "({a},{b})"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Concurrent retrying clients mixing writes and reads while the apply
/// path and both connection directions fault. Each client owns a
/// disjoint block of free slots, so every slot's final state is decided
/// by that client's own outcome log: a typed error means "not applied"
/// (the fault fires before mutation), an `Applied` means the write took
/// — even when the acknowledgement was a retried idempotent `Ok(0)`.
/// Slots whose writes ended in a transport error are ambiguous and
/// skipped. The surviving expectations are checked against the live
/// server after disarming, before and after a flush.
#[test]
fn retrying_writers_reach_a_consistent_state_under_ingest_faults() {
    let _guard = guarded();
    let d = writable_db();
    let pre = corpus(&d);
    let engine = engine_with(&pre, 2, 0);
    let handle = Server::bind_tcp("127.0.0.1:0").unwrap().serve(engine);
    let addr = handle.tcp_addr().unwrap();

    batmap::fault::arm("ingest.apply", "error(chaos apply)@3x6").unwrap();
    batmap::fault::arm("server.conn.read", "error(chaos read)@7x2").unwrap();
    batmap::fault::arm("server.conn.write", "error(chaos write)@9x2").unwrap();

    const CLIENTS: u32 = 3;
    const SLOTS: u32 = 8;
    /// What one client learned about one of its slots.
    enum Fate {
        Present(Vec<u32>),
        Absent,
        Unknown,
    }
    let fates: Vec<(u32, Fate)> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let retry = RetryPolicy {
                        max_retries: 8,
                        base_backoff: std::time::Duration::from_millis(2),
                        max_backoff: std::time::Duration::from_millis(20),
                    };
                    let base = 200 + c * SLOTS;
                    let mut out = Vec::new();
                    let Ok(client) = Client::connect_tcp(addr) else {
                        // The read fault can kill the handshake; every
                        // slot of this client stays unknown.
                        return (base..base + SLOTS).map(|t| (t, Fate::Unknown)).collect();
                    };
                    let mut client = client.with_retry(retry);
                    for tid in base..base + SLOTS {
                        let items = write_items(tid);
                        let mut fate = match client.call(
                            0,
                            &Request::Insert {
                                tid,
                                items: items.clone(),
                            },
                        ) {
                            Ok(Response::Applied(_)) => Fate::Present(items.clone()),
                            Ok(_) => Fate::Absent,
                            Err(_) => Fate::Unknown,
                        };
                        // Interleave reads so the shard queues stay busy
                        // while other clients write.
                        let _ = client.call(
                            0,
                            &Request::Member {
                                set: items[0],
                                element: tid,
                            },
                        );
                        let _ = client.call(
                            0,
                            &Request::Count {
                                a: tid % 20,
                                b: (tid + 3) % 20,
                            },
                        );
                        if tid % 3 == 0 && !matches!(fate, Fate::Unknown) {
                            fate = match client.call(0, &Request::Remove { tid }) {
                                Ok(Response::Applied(_)) => Fate::Absent,
                                Ok(_) => fate,
                                Err(_) => Fate::Unknown,
                            };
                        }
                        out.push((tid, fate));
                    }
                    out
                })
            })
            .collect();
        threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect()
    });
    batmap::fault::disarm_all();

    // The oracle pass: a fresh unfaulted client checks every decided
    // slot, then flushes and checks again (compaction is invisible).
    let mut oracle = Client::connect_tcp(addr).unwrap();
    let mut decided = 0usize;
    for round in 0..2 {
        for (tid, fate) in &fates {
            let want: &[u32] = match fate {
                Fate::Present(items) => items,
                Fate::Absent => &[],
                Fate::Unknown => continue,
            };
            decided += 1;
            for item in 0..20u32 {
                assert_eq!(
                    oracle.member(0, item, *tid).unwrap(),
                    want.binary_search(&item).is_ok(),
                    "round {round}: member({item}, {tid})"
                );
            }
        }
        if round == 0 {
            oracle.flush(0).unwrap();
        }
    }
    assert!(decided > 0, "at least some slots must reach a decided fate");

    oracle.shutdown().unwrap();
    handle.join();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// A random sequential schedule of writes, flushes, and reads with
    /// error faults armed at `ingest.apply` and `ingest.compact.swap`:
    /// every delivered non-error response must be byte-identical to a
    /// disarmed replay that applies exactly the acknowledged writes.
    /// (Faults fire *before* mutation, so an errored write must be
    /// invisible to every later answer.)
    #[test]
    fn write_faults_never_corrupt_delivered_answers(
        ops in vec((0u8..6, any::<u32>(), any::<u32>()), 8..30),
        apply_every in 1u8..5,
        swap_every in 1u8..4,
    ) {
        let _guard = guarded();
        let d = writable_db();
        let pre = corpus(&d);
        let engine = engine_with(&pre, 2, 0);
        let clean = engine_with(&pre, 2, 0);

        let requests: Vec<Request> = ops
            .iter()
            .map(|&(op, x, y)| match op {
                0 | 1 => {
                    let tid = 200 + x % 40;
                    Request::Insert { tid, items: write_items(tid) }
                }
                2 => Request::Remove { tid: x % 240 },
                3 => Request::Flush,
                4 => Request::Count { a: x % 20, b: y % 20 },
                _ => Request::Member { set: x % 20, element: y % 240 },
            })
            .collect();

        batmap::fault::arm(
            "ingest.apply",
            &format!("error(chaos apply)@{apply_every}x4"),
        ).unwrap();
        batmap::fault::arm(
            "ingest.compact.swap",
            &format!("error(chaos swap)@{swap_every}x2"),
        ).unwrap();
        let delivered: Vec<Response> = requests
            .iter()
            .map(|request| engine.query(0, request.clone()))
            .collect();
        batmap::fault::disarm_all();

        // Disarmed replay: re-issue reads and *acknowledged* writes in
        // order. Errored writes left no trace, so skipping them must
        // reproduce every delivered answer bit-for-bit.
        for (j, (request, response)) in requests.iter().zip(&delivered).enumerate() {
            let is_write = matches!(
                request,
                Request::Insert { .. } | Request::Remove { .. } | Request::Flush
            );
            if is_write && matches!(response, Response::Error(_)) {
                continue;
            }
            let want = clean.query(0, request.clone());
            prop_assert_eq!(
                encode_response(j as u64, response),
                encode_response(j as u64, &want),
                "step {} ({:?}) diverged from the disarmed replay",
                j,
                request
            );
        }

        // And the final states agree wholesale.
        for a in 0..20u32 {
            for b in 0..20u32 {
                let request = Request::Count { a, b };
                prop_assert_eq!(
                    encode_response(0, &engine.query(0, request.clone())),
                    encode_response(0, &clean.query(0, request)),
                    "final count ({}, {})", a, b
                );
            }
        }
    }

    /// Concurrent retrying clients against a server with a random
    /// fault mix: connections drop, workers panic, frames stall. The
    /// pinned invariant — every answer that *is* delivered equals the
    /// unfaulted replay byte-for-byte, and the server shuts down
    /// cleanly afterwards.
    #[test]
    fn chaos_delivered_answers_are_exact(
        ops in vec((0u8..4, any::<u32>(), any::<u32>()), 8..24),
        faults in vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..4),
        shards in 1usize..3,
    ) {
        let _guard = guarded();
        let d = db();
        let pre = corpus(&d);
        let requests: Vec<Request> = ops
            .iter()
            .map(|&(op, x, y)| match op % 4 {
                0 => Request::Count { a: x % 20, b: y % 20 },
                1 => Request::Member { set: x % 20, element: y % 240 },
                2 => Request::TopK { probe: Probe::Set(x % 20), k: 1 + y % 4 },
                _ => Request::Info,
            })
            .collect();

        let engine = engine_with(&pre, shards, 0);
        let clean = engine_with(&pre, shards, 0);
        let handle = Server::bind_tcp("127.0.0.1:0").unwrap().serve(engine);
        let addr = handle.tcp_addr().unwrap();

        for &(pick, every, limit) in &faults {
            let (site, spec) = fault_menu(pick, every, limit);
            batmap::fault::arm(site, &spec).unwrap();
        }

        const CLIENTS: usize = 3;
        let mut by_client: Vec<Vec<(usize, Request)>> =
            (0..CLIENTS).map(|_| Vec::new()).collect();
        for (j, request) in requests.iter().enumerate() {
            by_client[j % CLIENTS].push((j, request.clone()));
        }
        let mut delivered: Vec<Option<Response>> = vec![None; requests.len()];
        std::thread::scope(|scope| {
            let answers: Vec<_> = by_client
                .iter()
                .map(|slice| {
                    scope.spawn(move || {
                        let retry = RetryPolicy {
                            max_retries: 6,
                            base_backoff: std::time::Duration::from_millis(2),
                            max_backoff: std::time::Duration::from_millis(20),
                        };
                        let mut client = match Client::connect_tcp(addr) {
                            Ok(c) => c.with_retry(retry),
                            // The read fault can kill the handshake;
                            // that client simply delivers nothing.
                            Err(_) => return Vec::new(),
                        };
                        let reqs: Vec<Request> =
                            slice.iter().map(|(_, r)| r.clone()).collect();
                        client.pipeline_outcomes(0, &reqs)
                    })
                })
                .collect();
            for (slice, thread) in by_client.iter().zip(answers) {
                for ((j, _), outcome) in slice.iter().zip(thread.join().unwrap()) {
                    if let Ok(response) = outcome {
                        delivered[*j] = Some(response);
                    }
                }
            }
        });

        // The clean engine shares this process's global fault registry;
        // chaos is over, so disarm before computing replay oracles.
        batmap::fault::disarm_all();

        // Exactness of everything delivered: typed degraded responses
        // are legitimate under chaos, real answers must be bit-exact.
        for (j, slot) in delivered.iter().enumerate() {
            let Some(response) = slot else { continue };
            if is_degraded(response) {
                continue;
            }
            let want = clean.query(0, requests[j].clone());
            prop_assert_eq!(
                encode_response(j as u64, response),
                encode_response(j as u64, &want),
                "chaos-delivered answer {} ({:?}) must equal the clean replay",
                j,
                &requests[j]
            );
        }

        // Clean shutdown is non-negotiable, whatever was injected.
        let mut closer = Client::connect_tcp(addr).unwrap();
        closer.shutdown().unwrap();
        handle.join();
    }
}
