//! Integration tests of the GPU simulator against the pipeline: the
//! performance model must behave like the §IV evaluation expects.

use datagen::uniform::{generate, UniformSpec};
use fim::VerticalDb;
use gpu_sim::{DeviceSpec, KernelStats};
use pairminer::gpu::{run_tile, DeviceData};
use pairminer::{preprocess, schedule};

fn pre_for(n: u32, total: usize, density: f64) -> pairminer::Preprocessed {
    let db = generate(&UniformSpec {
        n_items: n,
        density,
        total_items: total,
        seed: 99,
    });
    let v = VerticalDb::from_horizontal(&db);
    preprocess(&v, 99, 128)
}

fn total_sim(pre: &pairminer::Preprocessed, device: &DeviceSpec) -> (f64, KernelStats) {
    let data = DeviceData::upload(pre);
    let mut secs = 0.0;
    let mut stats = KernelStats::default();
    for tile in schedule(pre.padded_items(), 2048) {
        let r = run_tile(device, &data, tile);
        secs += r.report.seconds();
        stats += r.report.stats;
    }
    (secs, stats)
}

#[test]
fn simulated_time_is_linear_in_item_count() {
    // Fixed per-set shape (same m, same |S|), doubling n: the
    // triangular schedule's work is ~quadratic in n, so per-pair cost
    // stays constant; the paper's Fig. 6 "GPU linear in n" claim is
    // about fixed total size (sets shrink as n grows), checked below.
    let device = DeviceSpec::gtx285();
    let (t1, s1) = total_sim(&pre_for(32, 32 * 500, 0.05), &device);
    let (t2, s2) = total_sim(&pre_for(64, 64 * 500, 0.05), &device);
    let per_pair1 = t1 / s1.groups as f64;
    let per_pair2 = t2 / s2.groups as f64;
    let ratio = per_pair2 / per_pair1;
    assert!(
        (0.5..2.0).contains(&ratio),
        "per-group cost should be scale-free: {per_pair1} vs {per_pair2}"
    );
}

#[test]
fn fixed_total_size_means_near_linear_gpu_time() {
    // The Fig. 6 setting: total size fixed, n doubles → sets halve.
    // Batmap widths halve too, so total comparison bytes ~(n² · w/n)
    // stay ~linear in n.
    let device = DeviceSpec::gtx285();
    let total = 60_000;
    let (t1, _) = total_sim(&pre_for(64, total, 0.05), &device);
    let (t2, _) = total_sim(&pre_for(128, total, 0.05), &device);
    let growth = t2 / t1;
    assert!(
        (1.2..3.5).contains(&growth),
        "doubling n at fixed size should ~double GPU time, got ×{growth:.2}"
    );
}

#[test]
fn density_independence_with_low_density_uptick() {
    // Fig. 8's shape: simulated time roughly flat in density at fixed
    // instance size, except *rising* at very low density (compression
    // floor r ≥ 2^s forces wide batmaps).
    let device = DeviceSpec::gtx285();
    let total = 50_000;
    let n = 64;
    let (t_mid, _) = total_sim(&pre_for(n, total, 0.02), &device);
    let (t_dense, _) = total_sim(&pre_for(n, total, 0.2), &device);
    let (t_sparse, _) = total_sim(&pre_for(n, total, 0.0005), &device);
    // Dense vs mid: same order of magnitude.
    let flat = t_dense / t_mid;
    assert!(
        (0.2..5.0).contains(&flat),
        "density 0.2 vs 0.02 should be comparable, got ×{flat:.2}"
    );
    // Sparse should be *slower* than mid (the uptick).
    assert!(
        t_sparse > t_mid,
        "expected low-density uptick: sparse {t_sparse} vs mid {t_mid}"
    );
}

#[test]
fn kernel_time_beats_measured_cpu_time_by_construction() {
    // The paper's ~5× GPU>CPU margin is hardware-dependent; the model
    // must at least produce a simulated device time far below a single
    // host core's measured time for the same comparisons.
    let pre = pre_for(96, 80_000, 0.05);
    let device = DeviceSpec::gtx285();
    let (sim, _) = total_sim(&pre, &device);
    let t0 = std::time::Instant::now();
    for tile in schedule(pre.padded_items(), 2048) {
        std::hint::black_box(pairminer::cpu::run_tile_cpu(&pre, &tile));
    }
    let cpu = t0.elapsed().as_secs_f64();
    assert!(
        sim < cpu,
        "simulated GTX285 ({sim:.4}s) should beat one host core ({cpu:.4}s)"
    );
}

#[test]
fn watchdog_respected_with_paper_tile_size() {
    let pre = pre_for(128, 60_000, 0.05);
    let device = DeviceSpec::gtx285();
    let data = DeviceData::upload(&pre);
    for tile in schedule(pre.padded_items(), 2048) {
        let r = run_tile(&device, &data, tile);
        assert!(
            !r.report.exceeds_watchdog(&device),
            "k=2048 must keep every launch under the display watchdog"
        );
    }
}
