//! Integration tests of the extension features: the §V multiway
//! structures end to end (triple mining), the collection API, the
//! command queue, and WAH interop with the other formats.

use batmap::BatmapCollection;
use datagen::uniform::{generate, UniformSpec};
use fim::{apriori, WahBitmap};
use pairminer::{mine, mine_triples, MinerConfig};

fn instance(n: u32, total: usize, density: f64, seed: u64) -> fim::TransactionDb {
    generate(&UniformSpec {
        n_items: n,
        density,
        total_items: total,
        seed,
    })
}

#[test]
fn triple_mining_end_to_end_matches_apriori() {
    let db = instance(30, 60_000, 0.12, 3);
    // Mean pair support ≈ m·p² ≈ 240; triples ≈ m·p³ ≈ 29.
    for minsup in [10u64, 25, 60] {
        let pairs = mine(
            &db,
            &MinerConfig {
                minsup,
                ..Default::default()
            },
        )
        .pairs;
        let report = mine_triples(&db, &pairs, minsup);
        let mut expect: Vec<_> = apriori::mine(&db, minsup, 3)
            .into_iter()
            .filter(|s| s.items.len() == 3)
            .collect();
        expect.sort_by(|a, b| a.items.cmp(&b.items));
        assert_eq!(report.triples, expect, "minsup={minsup}");
        if minsup <= 25 {
            assert!(
                !report.triples.is_empty(),
                "expected frequent triples at minsup={minsup}"
            );
        }
    }
}

#[test]
fn collection_mirrors_pipeline_counts() {
    let db = instance(40, 30_000, 0.05, 9);
    let v = fim::VerticalDb::from_horizontal(&db);
    let tidlists: Vec<Vec<u32>> = (0..v.n_items()).map(|i| v.tidlist(i).to_vec()).collect();
    let coll = BatmapCollection::build(v.m().max(1) as u64, 0xC0, &tidlists);
    assert!(coll.failed().is_empty());
    let report = mine(&db, &MinerConfig::default());
    for (&(i, j), &support) in &report.pairs {
        assert_eq!(
            coll.intersect_count(i as usize, j as usize),
            support,
            "pair ({i},{j})"
        );
    }
    // And the collection's all_pairs view agrees with the miner where
    // both report.
    for (i, j, c) in coll.all_pairs() {
        if let Some(&s) = report.pairs.get(&(i, j)) {
            assert_eq!(c, s);
        }
    }
}

#[test]
fn wah_agrees_with_bitmap_index_on_tidlists() {
    let db = instance(25, 20_000, 0.08, 17);
    let v = fim::VerticalDb::from_horizontal(&db);
    let idx = fim::BitmapIndex::from_vertical(&v);
    let wah: Vec<WahBitmap> = (0..v.n_items())
        .map(|i| WahBitmap::from_sorted(v.m(), v.tidlist(i)))
        .collect();
    for i in 0..v.n_items() {
        assert_eq!(wah[i as usize].count(), idx.support(i));
        for j in (i + 1)..v.n_items() {
            assert_eq!(
                wah[i as usize].intersect_count(&wah[j as usize]),
                idx.pair_support(i, j),
                "pair ({i},{j})"
            );
        }
    }
}

#[test]
fn command_queue_totals_match_manual_accounting() {
    use gpu_sim::{CommandQueue, DeviceSpec};
    use pairminer::gpu::{run_tile, run_tile_queued, DeviceData};
    let db = instance(32, 20_000, 0.05, 21);
    let v = fim::VerticalDb::from_horizontal(&db);
    let pre = pairminer::preprocess(&v, 1, 128);
    let data = DeviceData::upload(&pre);
    let device = DeviceSpec::gtx285();
    let tiles = pairminer::schedule(pre.padded_items(), 16);
    let mut queue = CommandQueue::new(&device);
    queue.enqueue_transfer(&data.buffer);
    let mut manual_kernel_s = 0.0;
    for &tile in &tiles {
        let direct = run_tile(&device, &data, tile);
        let queued = run_tile_queued(&mut queue, &data, tile);
        assert_eq!(direct.counts, queued.counts, "tile ({},{})", tile.p, tile.q);
        manual_kernel_s += direct.report.seconds();
    }
    let expect = manual_kernel_s + queue.transfer_seconds();
    assert!((queue.elapsed_seconds() - expect).abs() < 1e-12);
    assert_eq!(queue.launches(), tiles.len());
    assert_eq!(queue.watchdog_violations(), 0);
}

#[test]
fn declat_matches_eclat_on_generated_instance() {
    let db = instance(20, 15_000, 0.15, 31);
    for minsup in [5u64, 40] {
        assert_eq!(
            fim::eclat::mine_diffsets(&db, minsup, 4),
            fim::eclat::mine(&db, minsup, 4),
            "minsup={minsup}"
        );
    }
}
