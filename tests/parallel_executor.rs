//! Property-based equivalence of the parallel tiled CPU engine against
//! the strictly serial path: identical pair sets for arbitrary
//! databases, thread counts, and tile sides, including the diagonal-
//! tile deduplication.

use batmap::{EngineOptions, Parallelism};
use pairminer::{
    mine, preprocess, Engine, MinerConfig, ParallelCpuExecutor, SerialCpuExecutor, Tile,
    TileConsumer, TileExecutor, TilePlan,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_db() -> impl Strategy<Value = fim::TransactionDb> {
    // Up to 60 transactions over up to 24 items.
    (2u32..24, 1usize..60).prop_flat_map(|(n, m)| {
        vec(vec(0u32..n, 0..(n as usize).min(12)), m)
            .prop_map(move |ts| fim::TransactionDb::new(n, ts))
    })
}

/// A mining report's pairs as a sorted list, for order-insensitive
/// comparison.
fn sorted_pairs(report: pairminer::MiningReport) -> Vec<((u32, u32), u64)> {
    let mut pairs: Vec<_> = report.pairs.into_iter().collect();
    pairs.sort_unstable();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The parallel CPU miner returns the exact same (sorted) pair set
    /// as the serial path, for arbitrary thread counts and tile sides.
    #[test]
    fn parallel_miner_matches_serial(
        db in arb_db(),
        seed in 0u64..50,
        k_shift in 0u32..3,
        threads in 2usize..9,
        minsup in 1u64..4,
    ) {
        let base = MinerConfig {
            seed,
            k: 16 << k_shift,
            minsup,
            engine: Engine::Cpu,
            options: EngineOptions::auto().threads(Parallelism::Serial),
            ..Default::default()
        };
        let serial = mine(&db, &base);
        let parallel = mine(&db, &MinerConfig {
            options: base.options.threads(Parallelism::threads(threads)),
            ..base
        });
        prop_assert_eq!(sorted_pairs(serial), sorted_pairs(parallel));
    }

    /// At the executor level: every useful cell is delivered exactly
    /// once (diagonal tiles deduplicated to their strict upper
    /// triangle) and with the same counts as the serial walk.
    #[test]
    fn executor_cells_are_exact_and_deduplicated(
        db in arb_db(),
        seed in 0u64..50,
        k_shift in 0u32..3,
        threads in 2usize..9,
    ) {
        #[derive(Default)]
        struct Cells(Vec<((u32, u32), u64)>);
        impl TileConsumer for Cells {
            fn consume(&mut self, tile: &Tile, counts: &[u64]) {
                for r in 0..tile.rows {
                    let first = if tile.is_diagonal() { r + 1 } else { 0 };
                    for c in first..tile.cols {
                        self.0.push((
                            ((tile.row_base + r) as u32, (tile.col_base + c) as u32),
                            counts[r * tile.cols + c],
                        ));
                    }
                }
            }
            fn absorb(&mut self, other: Self) {
                self.0.extend(other.0);
            }
        }

        let v = fim::VerticalDb::from_horizontal(&db);
        let pre = preprocess(&v, seed, 128);
        let plan = TilePlan::new(pre.padded_items(), 16 << k_shift);
        let (serial, _) = SerialCpuExecutor.execute(&pre, &plan, Cells::default);
        let executor = ParallelCpuExecutor {
            parallelism: Parallelism::threads(threads),
        };
        let (parallel, report) = executor.execute(&pre, &plan, Cells::default);
        prop_assert_eq!(report.threads, threads);

        let mut expect = serial.0;
        expect.sort_unstable();
        let mut got = parallel.0;
        got.sort_unstable();
        // Same cells, same counts…
        prop_assert_eq!(&got, &expect);
        // …exactly the strict upper triangle, each cell once.
        prop_assert_eq!(got.len(), plan.reported_comparisons());
        for w in got.windows(2) {
            prop_assert_ne!(w[0].0, w[1].0);
        }
        prop_assert!(got.iter().all(|((i, j), _)| i < j));
    }
}
