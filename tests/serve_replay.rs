//! Concurrency pins for the query service: whatever the shard count,
//! worker parallelism, and client interleaving, every response must be
//! **byte-identical** (same wire encoding) to a single-threaded,
//! batching-off replay of the same request stream. This is the
//! correctness half of the admission-queue batching story — coalescing
//! concurrent probes into one-vs-many sweeps must be invisible in the
//! answers.

use batmap::{EngineOptions, Parallelism, ReprPolicy};
use batmap_server::proto::{encode_response, Request};
use batmap_server::{Client, EngineConfig, Probe, QueryEngine, Server};
use fim::{TransactionDb, VerticalDb};
use pairminer::{preprocess_with, Preprocessed};
use proptest::collection::vec;
use proptest::prelude::*;

const CLIENTS: usize = 4;

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    (2u32..16, 1usize..40).prop_flat_map(|(n, m)| {
        vec(vec(0u32..n, 0..(n as usize).min(10)), m).prop_map(move |ts| TransactionDb::new(n, ts))
    })
}

/// One op descriptor; materialized against the database's dimensions so
/// every request is in range.
fn materialize(ops: &[(u8, u32, u32, u64)], n: u32, m: u32) -> Vec<Request> {
    ops.iter()
        .map(|&(op, x, y, z)| match op % 6 {
            0 => Request::Count { a: x % n, b: y % n },
            1 => Request::Member {
                set: x % n,
                element: y % m.max(1),
            },
            2 => Request::TopK {
                probe: Probe::Set(x % n),
                k: 1 + y % 5,
            },
            3 => {
                // A deterministic, strictly-ascending ad-hoc probe.
                let elements: Vec<u32> = (0..m)
                    .filter(|&e| (z.wrapping_mul(e as u64 + 1) >> 7) & 3 == 0)
                    .collect();
                Request::TopK {
                    probe: Probe::Elements(elements),
                    k: 1 + y % 5,
                }
            }
            4 => Request::Info,
            _ => Request::Mine {
                depth: 3,
                minsup: 1 + (y as u64) % 3,
            },
        })
        .collect()
}

/// Preprocess under the hybrid policy and push the corpus through a
/// snapshot write→read cycle, as a served corpus would arrive on disk.
fn hybrid_snapshot(d: &TransactionDb, seed: u64) -> Preprocessed {
    let v = VerticalDb::from_horizontal(d);
    let pre = preprocess_with(
        &v,
        seed,
        128,
        EngineOptions::auto().repr(ReprPolicy::Hybrid),
    );
    let mut buf = Vec::new();
    pre.write_snapshot(&mut buf).unwrap();
    Preprocessed::read_snapshot(&mut buf.as_slice()).unwrap()
}

/// Derive a non-empty, strictly ascending item list from a bit soup.
fn derive_items(bits: u64, n: u32) -> Vec<u32> {
    let mut items: Vec<u32> = (0..n).filter(|&i| (bits >> (i % 64)) & 1 == 1).collect();
    if items.is_empty() {
        items.push((bits % n as u64) as u32);
    }
    items
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// N concurrent pipelining clients against every (threads × shards)
    /// engine shape produce responses byte-identical to a sequential
    /// batching-off replay of the same requests on the same shape.
    #[test]
    fn concurrent_batched_responses_equal_sequential_replay(
        db in arb_db(),
        ops in vec((0u8..6, any::<u32>(), any::<u32>(), any::<u64>()), 8..32),
        seed in 0u64..100,
    ) {
        let requests = materialize(&ops, db.n_items(), db.len() as u32);
        let pre = hybrid_snapshot(&db, seed);
        let cores = std::thread::available_parallelism().map_or(2, |c| c.get());
        for threads in [Parallelism::Serial, Parallelism::threads(4)] {
            for shards in [1usize, 2, cores] {
                let options = EngineOptions::auto().threads(threads);
                let config = EngineConfig {
                    options,
                    shards,
                    batching: true,
                    ..EngineConfig::default()
                };
                let engine = QueryEngine::new(vec![pre.clone()], config);
                let handle = Server::bind_tcp("127.0.0.1:0").unwrap().serve(engine);
                let addr = handle.tcp_addr().unwrap();

                // Round-robin the stream over N clients, each pipelining
                // its whole slice so admission queues fill deeply.
                let mut by_client: Vec<Vec<(usize, Request)>> =
                    (0..CLIENTS).map(|_| Vec::new()).collect();
                for (j, request) in requests.iter().enumerate() {
                    by_client[j % CLIENTS].push((j, request.clone()));
                }
                let mut served: Vec<Option<batmap_server::Response>> =
                    vec![None; requests.len()];
                std::thread::scope(|scope| {
                    let answers: Vec<_> = by_client
                        .iter()
                        .map(|slice| {
                            scope.spawn(move || {
                                let mut client = Client::connect_tcp(addr).unwrap();
                                let reqs: Vec<Request> =
                                    slice.iter().map(|(_, r)| r.clone()).collect();
                                client.pipeline(0, &reqs).unwrap()
                            })
                        })
                        .collect();
                    for (slice, thread) in by_client.iter().zip(answers) {
                        for ((j, _), response) in slice.iter().zip(thread.join().unwrap()) {
                            served[*j] = Some(response);
                        }
                    }
                });
                drop(handle);

                // Sequential single-connection replay on the same shape
                // with coalescing off; same bytes, request by request.
                let replay_engine = QueryEngine::new(
                    vec![pre.clone()],
                    EngineConfig {
                        options,
                        shards,
                        batching: false,
                        ..EngineConfig::default()
                    },
                );
                for (j, request) in requests.iter().enumerate() {
                    let concurrent = served[j].clone().unwrap();
                    let sequential = replay_engine.query(0, request.clone());
                    prop_assert_eq!(
                        encode_response(j as u64, &concurrent),
                        encode_response(j as u64, &sequential),
                        "request {} ({:?}) under threads {} shards {}",
                        j,
                        request,
                        threads,
                        shards
                    );
                }
            }
        }
    }

    /// Byte-identity with interleaved writes: a writer client mutates
    /// the served corpus through the wire protocol between rounds of
    /// concurrent batched reads, with every acknowledged write mirrored
    /// onto a sequential batching-off replay engine. Writes land at
    /// round boundaries (the one ordering a byte-exact oracle can pin
    /// — mid-flight interleavings are the chaos suite's domain), so
    /// every batched read round must replay bit-for-bit, however the
    /// admission queues coalesced it and wherever compaction struck.
    #[test]
    fn batched_reads_stay_identical_across_interleaved_writes(
        db in arb_db(),
        rounds in vec(
            (
                vec((any::<u32>(), any::<u64>()), 0..6),
                vec((0u8..6, any::<u32>(), any::<u32>(), any::<u64>()), 2..10),
                any::<bool>(),
            ),
            1..4,
        ),
        seed in 0u64..100,
    ) {
        // Leave trailing slots free so the writer has room to insert.
        let n = db.n_items();
        let mut txns = db.transactions().to_vec();
        txns.extend(std::iter::repeat_with(Vec::new).take(8));
        let db = TransactionDb::new(n, txns);
        let m = db.len() as u32;
        let pre = hybrid_snapshot(&db, seed);

        for threads in [Parallelism::Serial, Parallelism::threads(4)] {
            for shards in [1usize, 2] {
                let options = EngineOptions::auto().threads(threads);
                let engine = QueryEngine::new(
                    vec![pre.clone()],
                    EngineConfig { options, shards, batching: true, ..EngineConfig::default() },
                );
                let replay_engine = QueryEngine::new(
                    vec![pre.clone()],
                    EngineConfig { options, shards, batching: false, ..EngineConfig::default() },
                );
                let handle = Server::bind_tcp("127.0.0.1:0").unwrap().serve(engine);
                let addr = handle.tcp_addr().unwrap();
                let mut writer = Client::connect_tcp(addr).unwrap();
                let mut model: Vec<Vec<u32>> = db.transactions().to_vec();

                for (writes, reads, flush) in &rounds {
                    // Write phase: toggle slots over the wire, mirroring
                    // each acknowledged write onto the replay engine —
                    // both must acknowledge identically.
                    for &(t, bits) in writes {
                        let tid = t % m;
                        let request = if model[tid as usize].is_empty() {
                            let items = derive_items(bits, n);
                            model[tid as usize] = items.clone();
                            Request::Insert { tid, items }
                        } else {
                            model[tid as usize].clear();
                            Request::Remove { tid }
                        };
                        let served = writer.call(0, &request).unwrap();
                        let mirrored = replay_engine.query(0, request.clone());
                        prop_assert_eq!(
                            encode_response(0, &served),
                            encode_response(0, &mirrored),
                            "write ack {:?} diverged", &request
                        );
                    }
                    if *flush {
                        // Compact the served side only: compaction must
                        // be invisible next to the delta-layered replay.
                        writer.flush(0).unwrap();
                    }

                    // Read phase: concurrent pipelining clients vs the
                    // sequential batching-off replay of the same state.
                    // `Info` is the one read that is *not*
                    // compaction-invisible (the repr histogram and
                    // failed count may legitimately change when a
                    // racing `Mine` folds the deltas), so its
                    // byte-identity would depend on queue ordering —
                    // swap it for a count.
                    let requests: Vec<Request> = materialize(reads, n, m)
                        .into_iter()
                        .map(|request| match request {
                            Request::Info => Request::Count { a: 0, b: n - 1 },
                            other => other,
                        })
                        .collect();
                    let mut by_client: Vec<Vec<(usize, Request)>> =
                        (0..CLIENTS).map(|_| Vec::new()).collect();
                    for (j, request) in requests.iter().enumerate() {
                        by_client[j % CLIENTS].push((j, request.clone()));
                    }
                    let mut served: Vec<Option<batmap_server::Response>> =
                        vec![None; requests.len()];
                    std::thread::scope(|scope| {
                        let answers: Vec<_> = by_client
                            .iter()
                            .map(|slice| {
                                scope.spawn(move || {
                                    let mut client = Client::connect_tcp(addr).unwrap();
                                    let reqs: Vec<Request> =
                                        slice.iter().map(|(_, r)| r.clone()).collect();
                                    client.pipeline(0, &reqs).unwrap()
                                })
                            })
                            .collect();
                        for (slice, thread) in by_client.iter().zip(answers) {
                            for ((j, _), response) in slice.iter().zip(thread.join().unwrap()) {
                                served[*j] = Some(response);
                            }
                        }
                    });
                    for (j, request) in requests.iter().enumerate() {
                        let concurrent = served[j].clone().unwrap();
                        let sequential = replay_engine.query(0, request.clone());
                        prop_assert_eq!(
                            encode_response(j as u64, &concurrent),
                            encode_response(j as u64, &sequential),
                            "read {} ({:?}) after writes, threads {} shards {} flush {}",
                            j, request, threads, shards, flush
                        );
                    }
                }
                drop(writer);
                drop(handle);
            }
        }
    }
}
