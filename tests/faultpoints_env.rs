//! Pin for the `BATMAP_FAULTPOINTS` plumbing: arming happens once, as
//! a side effect of engine-options resolution, reading the environment
//! through `batmap::options` (the single `BATMAP_*` reader). This
//! lives in its own test binary because the fault registry is
//! process-global and the chaos suite's tests disarm it at will — here
//! nothing else can have consumed the env-armed sites first.
//!
//! The CI chaos job runs with
//! `BATMAP_FAULTPOINTS=chaos.env.probe=error(armed-from-env)x1`, which
//! makes this test assert the full env path; without the variable it
//! asserts the default remains completely disarmed.

use batmap::EngineOptions;

#[test]
fn resolving_options_arms_faultpoints_from_env() {
    let _ = EngineOptions::auto().resolve();
    let armed = batmap::fault::armed_sites();
    match batmap::options::faultpoints_env() {
        Some(spec) => {
            // Every site named in the spec must have been armed.
            for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
                let site = clause.split('=').next().unwrap().trim();
                assert!(
                    armed.iter().any(|s| s == site),
                    "BATMAP_FAULTPOINTS names `{site}` but it is not armed (armed: {armed:?})"
                );
            }
        }
        None => assert!(
            armed.is_empty(),
            "no BATMAP_FAULTPOINTS set, yet sites are armed: {armed:?}"
        ),
    }
}
