//! Property tests pinning the true SIMD match kernels
//! (SSE2/AVX2/AVX-512 on x86_64, NEON on aarch64) and the batched
//! one-vs-many driver to the scalar reference, plus unit tests of the
//! `Auto`/`BATMAP_KERNEL` resolution policy.
//!
//! On hardware without a backend (e.g. no AVX-512) the corresponding
//! assertions skip: `available_backends()` simply does not yield it,
//! which is exactly the graceful degradation the CI kernel matrix
//! relies on.

use batmap::kernel::ScalarKernel;
use batmap::{available_backends, intersect, Batmap, BatmapParams, KernelBackend, MatchKernel};
use proptest::collection::btree_set;
use proptest::prelude::*;
use std::sync::Arc;

const M: u64 = 30_000;

/// SIMD-capable backends only (lanes wider than one register byte
/// stream): the subject of this file. SSE2/AVX2/AVX-512 on x86_64 (the
/// latter two as CPU support permits), NEON on aarch64, empty elsewhere.
fn simd_backends() -> Vec<KernelBackend> {
    available_backends()
        .filter(|b| {
            matches!(
                b,
                KernelBackend::Sse2
                    | KernelBackend::Avx2
                    | KernelBackend::Avx512
                    | KernelBackend::Neon
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SSE2/AVX2 `count_equal_width` equals the scalar reference for
    /// arbitrary widths — including ragged tails shorter than one
    /// 16/32-byte register and widths straddling register boundaries.
    #[test]
    fn simd_equal_width_matches_scalar(
        bytes in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..200),
    ) {
        let xs: Vec<u8> = bytes.iter().map(|(x, _)| *x).collect();
        let ys: Vec<u8> = bytes.iter().map(|(_, y)| *y).collect();
        let expect = ScalarKernel.count_equal_width(&xs, &ys);
        for backend in simd_backends() {
            prop_assert_eq!(
                backend.kernel().count_equal_width(&xs, &ys),
                expect,
                "backend {}, width {}", backend, xs.len()
            );
        }
    }

    /// SSE2/AVX2 `count_wrapped` equals the scalar reference on the §II
    /// small-vs-large chunk layout — small widths below one register
    /// included, so the wrapped loop exercises pure-tail chunks.
    #[test]
    fn simd_wrapped_matches_scalar(
        small in proptest::collection::vec(any::<u8>(), 1..48),
        factor in 1usize..6,
        seed in any::<u64>(),
    ) {
        // Derive the large array deterministically from the seed so the
        // chunks differ from each other.
        let mut state = seed | 1;
        let large: Vec<u8> = (0..small.len() * factor)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let expect = ScalarKernel.count_wrapped(&large, &small);
        for backend in simd_backends() {
            prop_assert_eq!(
                backend.kernel().count_wrapped(&large, &small),
                expect,
                "backend {}, small {}, factor {}", backend, small.len(), factor
            );
        }
    }

    /// The batched `count_equal_width_many` kernel primitive equals the
    /// per-candidate loop for arbitrary widths and candidate counts
    /// (ragged blocks smaller than the accumulator width included).
    #[test]
    fn simd_batched_many_matches_scalar(
        probe in proptest::collection::vec(any::<u8>(), 0..150),
        n_candidates in 0usize..11,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let stores: Vec<Vec<u8>> = (0..n_candidates)
            .map(|_| {
                (0..probe.len())
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state as u8
                    })
                    .collect()
            })
            .collect();
        let cands: Vec<&[u8]> = stores.iter().map(Vec::as_slice).collect();
        let mut expect = vec![0u64; cands.len()];
        ScalarKernel.count_equal_width_many(&probe, &cands, &mut expect);
        for backend in simd_backends() {
            let mut out = vec![0u64; cands.len()];
            backend.kernel().count_equal_width_many(&probe, &cands, &mut out);
            prop_assert_eq!(
                &out, &expect,
                "backend {}, width {}, candidates {}", backend, probe.len(), n_candidates
            );
        }
    }

    /// End to end: the batched one-vs-many driver returns exactly the
    /// pointwise intersection counts for arbitrary batmap sets with
    /// mixed widths (blocked equal-width path and pairwise fallback in
    /// one batch), under every available backend.
    #[test]
    fn one_vs_many_driver_matches_pointwise(
        probe in btree_set(0u32..M as u32, 1..500),
        sets in proptest::collection::vec(btree_set(0u32..M as u32, 0..500), 0..8),
        seed in 0u64..200,
    ) {
        let params = Arc::new(BatmapParams::new(M, seed));
        let probe_v: Vec<u32> = probe.iter().copied().collect();
        let bp = Batmap::build_sorted(params.clone(), &probe_v).batmap;
        prop_assume!(bp.len() == probe_v.len());
        let many: Vec<Batmap> = sets
            .iter()
            .map(|s| {
                let v: Vec<u32> = s.iter().copied().collect();
                Batmap::build_sorted(params.clone(), &v).batmap
            })
            .collect();
        prop_assume!(many.iter().zip(&sets).all(|(m, s)| m.len() == s.len()));
        let expect: Vec<u64> = sets
            .iter()
            .map(|s| probe.intersection(s).count() as u64)
            .collect();
        for backend in available_backends() {
            let mut out = vec![0u64; many.len()];
            intersect::count_one_vs_many_with(backend, &bp, &many, &mut out);
            prop_assert_eq!(&out, &expect, "backend {}", backend);
        }
        // And the params-driven entry point (what the tile executors
        // and examples call).
        prop_assert_eq!(intersect::count_one_vs_many(&bp, &many), expect);
    }
}

#[test]
fn auto_resolution_under_forced_overrides() {
    let widest = KernelBackend::widest_available();
    assert!(widest.is_available());
    // Absent/auto overrides resolve to the widest available backend.
    assert_eq!(KernelBackend::resolve_override(None), widest);
    assert_eq!(KernelBackend::resolve_override(Some("auto")), widest);
    assert_eq!(KernelBackend::resolve_override(Some("  AUTO ")), widest);
    // Each forced concrete override resolves to itself when the CPU
    // supports it and downgrades to the widest available when not —
    // never to something unavailable, never to Auto.
    for (name, backend) in [
        ("scalar", KernelBackend::Scalar),
        ("swar32", KernelBackend::SwarU32),
        ("swar64", KernelBackend::SwarU64),
        ("neon", KernelBackend::Neon),
        ("sse2", KernelBackend::Sse2),
        ("avx2", KernelBackend::Avx2),
        ("avx512", KernelBackend::Avx512),
    ] {
        let resolved = KernelBackend::resolve_override(Some(name));
        assert_ne!(resolved, KernelBackend::Auto);
        assert!(resolved.is_available(), "{name} -> {resolved}");
        if backend.is_available() {
            assert_eq!(resolved, backend, "{name}");
        } else {
            assert_eq!(resolved, widest, "{name} must downgrade");
        }
    }
    // Garbage degrades instead of failing (CI matrix safety).
    assert_eq!(KernelBackend::resolve_override(Some("quantum")), widest);
    // Whatever the ambient BATMAP_KERNEL says, the process-wide Auto
    // resolution must obey the same policy.
    assert_eq!(
        KernelBackend::Auto.resolve(),
        KernelBackend::resolve_override(batmap::options::kernel_env())
    );
}

#[test]
fn simd_backends_report_their_lane_widths() {
    for backend in simd_backends() {
        let kernel = backend.kernel();
        let lanes = kernel.lanes();
        match backend {
            KernelBackend::Sse2 | KernelBackend::Neon => assert_eq!(lanes, 16),
            KernelBackend::Avx2 => assert_eq!(lanes, 32),
            KernelBackend::Avx512 => assert_eq!(lanes, 64),
            _ => unreachable!(),
        }
        // The GPU simulator's amortized per-staged-word charge shrinks
        // with lane width — 32/lanes·4, i.e. 2 for sse2/neon, 1 for
        // avx2 — but floors at one scalar op, so avx512 also charges 1.
        assert_eq!(kernel.ops_per_staged_word(), ((32 / lanes) as u64).max(1));
    }
}
