//! Property-based tests of the levelwise k-itemset engine: random
//! databases, every depth up to 5, two independent oracles (levelwise
//! Apriori and FP-Growth), and the forced-fallback failure path.

use fim::apriori::{self, Itemset};
use fim::{fpgrowth, TransactionDb};
use pairminer::{
    mine, mine_triples, Engine, LevelwiseConfig, LevelwiseMiner, MinerConfig, Parallelism,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_db() -> impl Strategy<Value = TransactionDb> {
    // Up to 50 transactions over up to 16 items, wide enough for
    // frequent itemsets beyond pairs to appear regularly.
    (3u32..16, 1usize..50).prop_flat_map(|(n, m)| {
        vec(vec(0u32..n, 0..(n as usize).min(10)), m).prop_map(move |ts| TransactionDb::new(n, ts))
    })
}

fn levelwise_config(depth: usize, minsup: u64) -> LevelwiseConfig {
    LevelwiseConfig {
        depth,
        pair: MinerConfig {
            minsup,
            engine: Engine::Cpu,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Canonical ordering shared by engine output and oracles.
fn canonical(mut sets: Vec<Itemset>) -> Vec<Itemset> {
    sets.sort_unstable_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
    sets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The levelwise batmap engine equals the Apriori oracle for every
    /// depth up to 5 and arbitrary minsup.
    #[test]
    fn levelwise_matches_apriori_oracle(
        db in arb_db(),
        minsup in 1u64..6,
        depth in 2usize..6,
    ) {
        let report = LevelwiseMiner::new(levelwise_config(depth, minsup)).mine(&db);
        let expect = canonical(apriori::mine(&db, minsup, depth));
        prop_assert_eq!(report.itemsets, expect);
    }

    /// …and equals FP-Growth, a structurally unrelated second oracle.
    #[test]
    fn levelwise_matches_fpgrowth(db in arb_db(), minsup in 1u64..6, depth in 3usize..6) {
        let report = LevelwiseMiner::new(levelwise_config(depth, minsup)).mine(&db);
        let expect = canonical(
            fpgrowth::mine(&db, minsup, depth)
                .into_iter()
                .filter(|s| s.items.len() >= 2)
                .collect(),
        );
        prop_assert_eq!(report.itemsets, expect);
    }

    /// The forced-fallback path (multiway builds failing at MaxLoop 1
    /// with no range growth) is exact too, at every depth.
    #[test]
    fn forced_fallback_is_exact(db in arb_db(), minsup in 1u64..4, depth in 3usize..6) {
        let mut config = levelwise_config(depth, minsup);
        config.multiway_max_loop = 1;
        config.growth_doublings = 0;
        let report = LevelwiseMiner::new(config).mine(&db);
        let expect = canonical(apriori::mine(&db, minsup, depth));
        prop_assert_eq!(report.itemsets, expect);
    }

    /// Depth 3 through the `kitemsets` façade equals the general
    /// engine's level 3 and the Apriori oracle's triples.
    #[test]
    fn triples_equal_levelwise_depth3(db in arb_db(), minsup in 1u64..5) {
        let pairs = mine(&db, &MinerConfig { minsup, ..Default::default() }).pairs;
        let triples = mine_triples(&db, &pairs, minsup);
        let expect: Vec<Itemset> = canonical(apriori::mine(&db, minsup, 3))
            .into_iter()
            .filter(|s| s.items.len() == 3)
            .collect();
        prop_assert_eq!(&triples.triples, &expect);
        let report = LevelwiseMiner::new(levelwise_config(3, minsup)).mine_from_pairs(&db, &pairs);
        let from_engine: Vec<Itemset> = report
            .itemsets
            .into_iter()
            .filter(|s| s.items.len() == 3)
            .collect();
        prop_assert_eq!(triples.triples, from_engine);
    }

    /// Thread counts never change results (the LPT candidate
    /// partitioning is a pure work split).
    #[test]
    fn parallel_counting_matches_serial(db in arb_db(), threads in 2usize..6) {
        let mut serial_config = levelwise_config(4, 2);
        serial_config.pair.options = serial_config.pair.options.threads(Parallelism::Serial);
        let serial = LevelwiseMiner::new(serial_config).mine(&db);
        let mut parallel_config = levelwise_config(4, 2);
        parallel_config.pair.options = parallel_config
            .pair
            .options
            .threads(Parallelism::threads(threads));
        let parallel = LevelwiseMiner::new(parallel_config).mine(&db);
        prop_assert_eq!(serial.itemsets, parallel.itemsets);
    }

    /// Structural invariants of the report: one level per k, per-level
    /// tallies consistent, empty levels present.
    #[test]
    fn level_reports_are_complete(db in arb_db(), minsup in 1u64..8, depth in 2usize..6) {
        let report = LevelwiseMiner::new(levelwise_config(depth, minsup)).mine(&db);
        prop_assert_eq!(report.levels.len(), depth - 1);
        for (i, level) in report.levels.iter().enumerate() {
            prop_assert_eq!(level.k, i + 2);
            prop_assert!(level.frequent <= level.candidates);
            prop_assert_eq!(
                level.frequent,
                report.itemsets.iter().filter(|s| s.items.len() == level.k).count()
            );
            if level.k > 2 {
                prop_assert_eq!(level.batched + level.fallback, level.candidates);
            }
        }
    }
}
