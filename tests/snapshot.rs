//! Snapshot-serving equivalence, pinned: `mine` end-to-end over the
//! tiled engines and `mine_levelwise` must produce identical reports
//! whether the corpus is freshly built inside `mine`, arena-built
//! up front (`preprocess` + `mine_preprocessed`), or loaded from a
//! persisted snapshot (`write_snapshot` → `read_snapshot` →
//! `mine_preprocessed`) — the storage layer and the persistence format
//! must be invisible to every mining result.

use batmap::{Parallelism, ReprPolicy};
use fim::{TransactionDb, VerticalDb};
use gpu_sim::DeviceSpec;
use pairminer::{
    mine, mine_preprocessed, preprocess_with, Engine, LevelwiseConfig, LevelwiseMiner, MinerConfig,
    Preprocessed,
};

fn db() -> TransactionDb {
    TransactionDb::new(
        36,
        (0..800usize)
            .map(|t| (0..36u32).filter(|&i| (t as u32 + i * 7) % 9 < 2).collect())
            .collect(),
    )
}

/// Build the corpus exactly as `mine` would for `config`, then push it
/// through a snapshot write→read cycle.
fn snapshot_corpus(d: &TransactionDb, config: &MinerConfig) -> Preprocessed {
    let vertical = VerticalDb::from_horizontal(d);
    let pre = preprocess_with(
        &vertical,
        config.seed,
        config.max_loop,
        config.options.repr(ReprPolicy::Batmap),
    );
    let mut buf = Vec::new();
    pre.write_snapshot(&mut buf).unwrap();
    Preprocessed::read_snapshot(&mut buf.as_slice()).unwrap()
}

#[test]
fn mine_is_identical_fresh_arena_built_and_snapshot_loaded() {
    let d = db();
    for engine in [Engine::Cpu, Engine::Gpu(DeviceSpec::gtx285())] {
        for threads in [Parallelism::Serial, Parallelism::threads(4)] {
            let config = MinerConfig {
                k: 32,
                engine: engine.clone(),
                options: batmap::EngineOptions::auto().threads(threads),
                ..Default::default()
            };
            // Freshly built inside `mine`.
            let fresh = mine(&d, &config);
            // Arena-built up front, served without re-preprocessing.
            let vertical = VerticalDb::from_horizontal(&d);
            let pre = preprocess_with(
                &vertical,
                config.seed,
                config.max_loop,
                config.options.repr(ReprPolicy::Batmap),
            );
            let arena_built = mine_preprocessed(&d, &pre, &config);
            // Loaded from a persisted snapshot.
            let loaded = snapshot_corpus(&d, &config);
            let snapshot_served = mine_preprocessed(&d, &loaded, &config);

            let label = format!("engine {engine:?} threads {threads}");
            assert_eq!(fresh.pairs, arena_built.pairs, "{label} (arena-built)");
            assert_eq!(fresh.pairs, snapshot_served.pairs, "{label} (snapshot)");
            assert_eq!(fresh.comparisons, snapshot_served.comparisons, "{label}");
            assert_eq!(
                fresh.failed_pair_occurrences, snapshot_served.failed_pair_occurrences,
                "{label}"
            );
            // Serving a snapshot pays no preprocessing.
            assert_eq!(snapshot_served.timings.preprocess_s, 0.0, "{label}");
        }
    }
}

#[test]
fn snapshot_serving_recovers_failed_insertions_too() {
    // MaxLoop = 1 forces failed insertions; the snapshot carries the
    // failure list, so the served counts stay exact.
    let d = TransactionDb::new(
        24,
        (0..3000usize)
            .map(|t| {
                (0..24u32)
                    .filter(|&i| (t as u32 + i * 7) % 30 < 2)
                    .collect()
            })
            .collect(),
    );
    let config = MinerConfig {
        max_loop: 1,
        ..Default::default()
    };
    let fresh = mine(&d, &config);
    assert!(
        fresh.failed_pair_occurrences > 0,
        "fixture must force failures"
    );
    let loaded = snapshot_corpus(&d, &config);
    assert!(!loaded.failed.is_empty(), "snapshot must carry failures");
    let served = mine_preprocessed(&d, &loaded, &config);
    assert_eq!(fresh.pairs, served.pairs);
    assert_eq!(
        fresh.failed_pair_occurrences,
        served.failed_pair_occurrences
    );
    assert_eq!(fresh.pairs, fim::pairs::brute_force_pairs(&d, 1));
}

#[test]
fn mine_levelwise_is_identical_fresh_and_snapshot_loaded() {
    let d = db();
    let config = LevelwiseConfig {
        depth: 4,
        pair: MinerConfig {
            minsup: 25,
            engine: Engine::Cpu,
            ..Default::default()
        },
        ..Default::default()
    };
    let miner = LevelwiseMiner::new(config.clone());
    let fresh = miner.mine(&d);
    let loaded = snapshot_corpus(&d, &config.pair);
    let served = miner.mine_with_preprocessed(&d, &loaded);
    assert_eq!(fresh.itemsets, served.itemsets);
    assert_eq!(fresh.levels.len(), served.levels.len());
    for (f, s) in fresh.levels.iter().zip(&served.levels) {
        assert_eq!(
            (f.k, f.candidates, f.frequent),
            (s.k, s.candidates, s.frequent)
        );
    }
    assert!(served.pair_report.is_some());
}

/// A snapshot fixture small enough to probe byte-by-byte.
fn tiny_snapshot_bytes() -> Vec<u8> {
    let d = TransactionDb::new(
        10,
        (0..60usize)
            .map(|t| (0..10u32).filter(|&i| (t as u32 + i * 3) % 5 < 2).collect())
            .collect(),
    );
    let vertical = VerticalDb::from_horizontal(&d);
    let pre = preprocess_with(
        &vertical,
        3,
        128,
        batmap::EngineOptions::auto().repr(ReprPolicy::Hybrid),
    );
    let mut buf = Vec::new();
    pre.write_snapshot(&mut buf).unwrap();
    buf
}

/// A write torn at *any* byte — mid-magic, mid-header, mid-directory,
/// mid-payload, mid-side-tables — must come back as the torn-write
/// variant of the taxonomy ([`batmap::SnapshotError::is_torn`]), never
/// a panic, never a silent success, and never be misread as bit-rot.
#[test]
fn truncation_at_every_byte_reads_as_torn() {
    let bytes = tiny_snapshot_bytes();
    for cut in 0..bytes.len() {
        match Preprocessed::read_snapshot(&mut &bytes[..cut]) {
            Ok(_) => panic!("truncation at byte {cut}/{} parsed", bytes.len()),
            Err(e) => assert!(
                e.is_torn(),
                "truncation at byte {cut}/{} must read as torn, got: {e}",
                bytes.len()
            ),
        }
    }
    // And the untouched bytes still load, so the loop above proved
    // something about truncation, not about a broken fixture.
    Preprocessed::read_snapshot(&mut bytes.as_slice()).unwrap();
}

/// Bit-rot: flipping the low bit of any single byte must fail the
/// read with a typed error. Checksummed sections must report
/// `Corrupted`; the magic/version envelope must report a format
/// error; nothing may parse successfully.
#[test]
fn single_bit_corruption_never_parses() {
    let bytes = tiny_snapshot_bytes();
    let mut saw_corrupted = false;
    let mut saw_format = false;
    for i in 0..bytes.len() {
        let mut rotten = bytes.clone();
        rotten[i] ^= 1;
        match Preprocessed::read_snapshot(&mut rotten.as_slice()) {
            Ok(_) => panic!("bit flip at byte {i} parsed successfully"),
            Err(batmap::SnapshotError::Corrupted(_)) => saw_corrupted = true,
            Err(batmap::SnapshotError::Format(_)) => saw_format = true,
            // Length-field flips legitimately look like truncation;
            // Io cannot happen from an in-memory slice.
            Err(_) => {}
        }
    }
    assert!(saw_corrupted, "checksums must catch payload bit-rot");
    assert!(saw_format, "the magic/version envelope must be validated");
}

/// The atomic write path: a failure while filling the temp file must
/// leave a previously persisted snapshot byte-identical and loadable,
/// and must not litter the directory with temp files.
#[test]
fn failed_atomic_write_preserves_previous_snapshot() {
    let dir = std::env::temp_dir().join(format!("batmap-snaptest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pinned.batmap");
    let golden = tiny_snapshot_bytes();
    batmap::arena::atomic_write(&path, |w| {
        use std::io::Write;
        w.write_all(&golden)
    })
    .unwrap();

    // Fill halfway, then die.
    let result = batmap::arena::atomic_write(&path, |w| {
        use std::io::Write;
        w.write_all(&golden[..golden.len() / 2])?;
        Err(std::io::Error::other("simulated crash mid-write"))
    });
    assert!(result.is_err());
    assert_eq!(
        std::fs::read(&path).unwrap(),
        golden,
        "old snapshot must be byte-identical after a failed overwrite"
    );
    Preprocessed::read_snapshot(&mut std::fs::read(&path).unwrap().as_slice()).unwrap();
    let leftovers = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .count();
    assert_eq!(leftovers, 0, "failed writes must clean up their temp file");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mine_preprocessed_rejects_mismatched_database() {
    let d = db();
    let other = TransactionDb::new(12, vec![vec![0, 1], vec![1, 2]]);
    let config = MinerConfig::default();
    let loaded = snapshot_corpus(&d, &config);
    let result = std::panic::catch_unwind(|| mine_preprocessed(&other, &loaded, &config));
    assert!(result.is_err(), "foreign database must be rejected");
}
