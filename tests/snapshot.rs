//! Snapshot-serving equivalence, pinned: `mine` end-to-end over the
//! tiled engines and `mine_levelwise` must produce identical reports
//! whether the corpus is freshly built inside `mine`, arena-built
//! up front (`preprocess` + `mine_preprocessed`), or loaded from a
//! persisted snapshot (`write_snapshot` → `read_snapshot` →
//! `mine_preprocessed`) — the storage layer and the persistence format
//! must be invisible to every mining result.

use batmap::{Parallelism, ReprPolicy};
use fim::{TransactionDb, VerticalDb};
use gpu_sim::DeviceSpec;
use pairminer::{
    mine, mine_preprocessed, preprocess_with, Engine, LevelwiseConfig, LevelwiseMiner, MinerConfig,
    Preprocessed,
};

fn db() -> TransactionDb {
    TransactionDb::new(
        36,
        (0..800usize)
            .map(|t| (0..36u32).filter(|&i| (t as u32 + i * 7) % 9 < 2).collect())
            .collect(),
    )
}

/// Build the corpus exactly as `mine` would for `config`, then push it
/// through a snapshot write→read cycle.
fn snapshot_corpus(d: &TransactionDb, config: &MinerConfig) -> Preprocessed {
    let vertical = VerticalDb::from_horizontal(d);
    let pre = preprocess_with(
        &vertical,
        config.seed,
        config.max_loop,
        config.options.repr(ReprPolicy::Batmap),
    );
    let mut buf = Vec::new();
    pre.write_snapshot(&mut buf).unwrap();
    Preprocessed::read_snapshot(&mut buf.as_slice()).unwrap()
}

#[test]
fn mine_is_identical_fresh_arena_built_and_snapshot_loaded() {
    let d = db();
    for engine in [Engine::Cpu, Engine::Gpu(DeviceSpec::gtx285())] {
        for threads in [Parallelism::Serial, Parallelism::threads(4)] {
            let config = MinerConfig {
                k: 32,
                engine: engine.clone(),
                options: batmap::EngineOptions::auto().threads(threads),
                ..Default::default()
            };
            // Freshly built inside `mine`.
            let fresh = mine(&d, &config);
            // Arena-built up front, served without re-preprocessing.
            let vertical = VerticalDb::from_horizontal(&d);
            let pre = preprocess_with(
                &vertical,
                config.seed,
                config.max_loop,
                config.options.repr(ReprPolicy::Batmap),
            );
            let arena_built = mine_preprocessed(&d, &pre, &config);
            // Loaded from a persisted snapshot.
            let loaded = snapshot_corpus(&d, &config);
            let snapshot_served = mine_preprocessed(&d, &loaded, &config);

            let label = format!("engine {engine:?} threads {threads}");
            assert_eq!(fresh.pairs, arena_built.pairs, "{label} (arena-built)");
            assert_eq!(fresh.pairs, snapshot_served.pairs, "{label} (snapshot)");
            assert_eq!(fresh.comparisons, snapshot_served.comparisons, "{label}");
            assert_eq!(
                fresh.failed_pair_occurrences, snapshot_served.failed_pair_occurrences,
                "{label}"
            );
            // Serving a snapshot pays no preprocessing.
            assert_eq!(snapshot_served.timings.preprocess_s, 0.0, "{label}");
        }
    }
}

#[test]
fn snapshot_serving_recovers_failed_insertions_too() {
    // MaxLoop = 1 forces failed insertions; the snapshot carries the
    // failure list, so the served counts stay exact.
    let d = TransactionDb::new(
        24,
        (0..3000usize)
            .map(|t| {
                (0..24u32)
                    .filter(|&i| (t as u32 + i * 7) % 30 < 2)
                    .collect()
            })
            .collect(),
    );
    let config = MinerConfig {
        max_loop: 1,
        ..Default::default()
    };
    let fresh = mine(&d, &config);
    assert!(
        fresh.failed_pair_occurrences > 0,
        "fixture must force failures"
    );
    let loaded = snapshot_corpus(&d, &config);
    assert!(!loaded.failed.is_empty(), "snapshot must carry failures");
    let served = mine_preprocessed(&d, &loaded, &config);
    assert_eq!(fresh.pairs, served.pairs);
    assert_eq!(
        fresh.failed_pair_occurrences,
        served.failed_pair_occurrences
    );
    assert_eq!(fresh.pairs, fim::pairs::brute_force_pairs(&d, 1));
}

#[test]
fn mine_levelwise_is_identical_fresh_and_snapshot_loaded() {
    let d = db();
    let config = LevelwiseConfig {
        depth: 4,
        pair: MinerConfig {
            minsup: 25,
            engine: Engine::Cpu,
            ..Default::default()
        },
        ..Default::default()
    };
    let miner = LevelwiseMiner::new(config.clone());
    let fresh = miner.mine(&d);
    let loaded = snapshot_corpus(&d, &config.pair);
    let served = miner.mine_with_preprocessed(&d, &loaded);
    assert_eq!(fresh.itemsets, served.itemsets);
    assert_eq!(fresh.levels.len(), served.levels.len());
    for (f, s) in fresh.levels.iter().zip(&served.levels) {
        assert_eq!(
            (f.k, f.candidates, f.frequent),
            (s.k, s.candidates, s.frequent)
        );
    }
    assert!(served.pair_report.is_some());
}

#[test]
fn mine_preprocessed_rejects_mismatched_database() {
    let d = db();
    let other = TransactionDb::new(12, vec![vec![0, 1], vec![1, 2]]);
    let config = MinerConfig::default();
    let loaded = snapshot_corpus(&d, &config);
    let result = std::panic::catch_unwind(|| mine_preprocessed(&other, &loaded, &config));
    assert!(result.is_err(), "foreign database must be rejected");
}
