//! Property tests for the in-place update path (`insert_mut` /
//! `remove_mut`), aimed at the boundaries the unit tests in
//! `core/src/update.rs` only spot-check:
//!
//! * **Power-of-two range doublings** — growth must fire exactly when
//!   the sizing policy demands it (`range_for(len + 1) > range()`), and
//!   every rebuild must land on a power-of-two range that the policy
//!   would accept for the new size.
//! * **Eviction-chain indicator-bit repair** — a long random
//!   interleaving under a deliberately tiny `MaxLoop` forces eviction
//!   chains and mid-chain failures; afterwards the cyclic-order
//!   invariant (exactly one indicator bit per element) and positional
//!   intersection exactness must both hold, including against an
//!   independently *built* batmap of a different width.
//! * **Remove-then-reinsert round trips** — deleting and re-adding any
//!   subset must restore the exact query behaviour of the original set.

use batmap::params::BatmapParams;
use batmap::{slot, Batmap, UpdateOutcome};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

const M: u64 = 8_192;

fn params(seed: u64, max_loop: u32) -> Arc<BatmapParams> {
    Arc::new(BatmapParams::with_max_loop(M, seed, max_loop))
}

/// The indicator invariant: every live element owns exactly one set
/// indicator bit across its two copies, so the number of set bits among
/// occupied slots equals the cardinality.
fn assert_indicators(bm: &Batmap) {
    let ones = bm
        .as_bytes()
        .iter()
        .filter(|&&b| !slot::is_empty(b) && slot::indicator(b))
        .count();
    assert_eq!(ones, bm.len(), "exactly one indicator bit per element");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Growth fires exactly at the policy boundary, and every rebuild
    /// (policy-driven or eviction-failure) lands on a power-of-two
    /// range wide enough for the new cardinality.
    #[test]
    fn growth_fires_exactly_at_policy_boundary(
        raw in vec(any::<u32>(), 1..400usize),
        seed in 0u64..50,
    ) {
        let p = params(seed, 32);
        let mut bm = Batmap::build(p.clone(), &[]).batmap;
        let mut live = BTreeSet::new();
        for x in raw.iter().map(|&x| x % M as u32) {
            let predicted = !live.contains(&x)
                && p.range_for(bm.len() + 1) > bm.range();
            let before = bm.range();
            let outcome = bm.insert_mut(x);
            if live.insert(x) {
                prop_assert_ne!(outcome, UpdateOutcome::AlreadyPresent);
            } else {
                prop_assert_eq!(outcome, UpdateOutcome::AlreadyPresent);
            }
            if predicted {
                // The policy boundary *must* trigger a growth rebuild…
                prop_assert_eq!(outcome, UpdateOutcome::InsertedWithGrowth);
            }
            if outcome == UpdateOutcome::InsertedWithGrowth {
                // …and any rebuild (boundary or eviction failure) must
                // double to a power of two the policy accepts.
                prop_assert!(bm.range() > before, "growth must widen the range");
                prop_assert!(bm.range().is_power_of_two());
            }
            prop_assert!(
                bm.range() >= p.range_for(bm.len()),
                "range {} below policy minimum {} for {} elements",
                bm.range(), p.range_for(bm.len()), bm.len()
            );
            prop_assert_eq!(bm.len(), live.len());
        }
        let mut got = bm.elements();
        got.sort_unstable();
        prop_assert_eq!(got, live.into_iter().collect::<Vec<_>>());
    }

    /// Long interleavings under a tiny `MaxLoop` (so eviction chains
    /// and mid-chain failures are common) preserve the indicator
    /// invariant and exact positional intersection — against itself,
    /// against a fresh build of the same set, and against an
    /// independently built probe of a different width.
    #[test]
    fn eviction_chains_repair_indicator_bits(
        ops in vec((any::<bool>(), any::<u32>()), 1..600usize),
        probe_raw in vec(any::<u32>(), 0..200usize),
        seed in 0u64..50,
    ) {
        // max_loop = 4 makes try_insert_copies fail often, exercising
        // the decode-occupants recovery rebuild. Built maps may shed
        // failed elements under that budget (§III-C), so expectations
        // use what each build actually stored.
        let p = params(seed, 4);
        let probe_set: BTreeSet<u32> =
            probe_raw.iter().map(|&x| x % M as u32).collect();
        let probe =
            Batmap::build(p.clone(), &probe_set.iter().copied().collect::<Vec<_>>()).batmap;
        let probe_stored: BTreeSet<u32> = probe.elements().into_iter().collect();

        let mut bm = Batmap::build(p.clone(), &[]).batmap;
        let mut live: BTreeSet<u32> = BTreeSet::new();
        for &(is_remove, raw) in &ops {
            let x = raw % M as u32;
            if is_remove {
                prop_assert_eq!(bm.remove_mut(x), live.remove(&x));
            } else {
                let outcome = bm.insert_mut(x);
                prop_assert_eq!(
                    outcome == UpdateOutcome::AlreadyPresent,
                    !live.insert(x)
                );
            }
        }
        assert_indicators(&bm);
        prop_assert_eq!(bm.len(), live.len());
        prop_assert_eq!(bm.intersect_count(&bm), live.len() as u64);

        // Positional sweep against a *built* map of the same contents:
        // indicator bits on both sides must agree element-for-element
        // (on everything the build managed to place).
        let rebuilt =
            Batmap::build(p, &live.iter().copied().collect::<Vec<_>>()).batmap;
        prop_assert_eq!(bm.intersect_count(&rebuilt), rebuilt.len() as u64);
        prop_assert_eq!(
            bm.intersect_count(&probe),
            live.intersection(&probe_stored).count() as u64
        );
    }

    /// Removing any subset and re-inserting it restores the original
    /// query behaviour exactly (membership, cardinality, and positional
    /// intersections), no matter how the eviction chains replayed.
    #[test]
    fn remove_then_reinsert_round_trips(
        base_raw in vec(any::<u32>(), 1..300usize),
        picks in vec(any::<u32>(), 1..80usize),
        seed in 0u64..50,
    ) {
        let p = params(seed, 16);
        let base_set: BTreeSet<u32> = base_raw.iter().map(|&x| x % M as u32).collect();
        let requested: Vec<u32> = base_set.iter().copied().collect();
        let reference = Batmap::build(p.clone(), &requested).batmap;
        // Builds are deterministic, so `bm` starts with exactly the
        // elements `reference` stored (failures under the MaxLoop
        // budget drop out of both identically).
        let mut bm = Batmap::build(p, &requested).batmap;
        let mut elements = bm.elements();
        elements.sort_unstable();
        prop_assume!(!elements.is_empty());
        let base: BTreeSet<u32> = elements.iter().copied().collect();
        let victims: BTreeSet<u32> = picks
            .iter()
            .map(|&ix| elements[ix as usize % elements.len()])
            .collect();
        for &x in &victims {
            prop_assert!(bm.remove_mut(x), "{} was present", x);
            prop_assert!(!bm.contains(x));
            prop_assert!(!bm.remove_mut(x), "double remove of {}", x);
        }
        prop_assert_eq!(bm.len(), base.len() - victims.len());
        assert_indicators(&bm);
        for &x in &victims {
            prop_assert_ne!(bm.insert_mut(x), UpdateOutcome::AlreadyPresent);
        }

        prop_assert_eq!(bm.len(), base.len());
        assert_indicators(&bm);
        for &x in &elements {
            prop_assert!(bm.contains(x), "{} lost in round trip", x);
        }
        // The round-tripped map and the untouched reference must agree
        // under the positional kernel even though their slot layouts
        // may differ.
        prop_assert_eq!(bm.intersect_count(&reference), base.len() as u64);
        prop_assert_eq!(bm.intersect_count(&bm), base.len() as u64);
    }
}
