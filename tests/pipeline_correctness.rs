//! Cross-crate integration: the full batmap/GPU pipeline against every
//! baseline, on generated workloads.

use datagen::uniform::{generate, UniformSpec};
use datagen::webdocs::{self, WebDocsSpec};
use fim::pairs::brute_force_pairs;
use fim::{apriori, eclat, fpgrowth, BitmapIndex, VerticalDb};
use pairminer::{mine, Engine, MinerConfig};

fn uniform_db(n: u32, total: usize, density: f64, seed: u64) -> fim::TransactionDb {
    generate(&UniformSpec {
        n_items: n,
        density,
        total_items: total,
        seed,
    })
}

#[test]
fn all_six_miners_agree_on_uniform_instance() {
    let db = uniform_db(60, 30_000, 0.05, 11);
    let v = VerticalDb::from_horizontal(&db);
    let idx = BitmapIndex::from_vertical(&v);
    for minsup in [1u64, 5, 20] {
        let oracle = brute_force_pairs(&db, minsup);
        assert_eq!(
            apriori::mine_pairs(&db, minsup),
            oracle,
            "apriori m={minsup}"
        );
        assert_eq!(
            fpgrowth::mine_pairs(&db, minsup),
            oracle,
            "fpgrowth m={minsup}"
        );
        assert_eq!(eclat::mine_pairs(&v, minsup), oracle, "eclat m={minsup}");
        assert_eq!(idx.mine_pairs(minsup), oracle, "bitmap m={minsup}");
        let gpu = mine(
            &db,
            &MinerConfig {
                minsup,
                ..Default::default()
            },
        );
        assert_eq!(gpu.pairs, oracle, "batmap-gpu m={minsup}");
        let cpu = mine(
            &db,
            &MinerConfig {
                minsup,
                engine: Engine::Cpu,
                ..Default::default()
            },
        );
        assert_eq!(cpu.pairs, oracle, "batmap-cpu m={minsup}");
    }
}

#[test]
fn pipeline_exact_on_skewed_webdocs() {
    // Zipf-skewed data produces wildly different set sizes → exercises
    // the folded (different-width) comparisons heavily.
    let corpus = webdocs::generate(&WebDocsSpec {
        documents: 400,
        mean_doc_len: 30,
        seed: 0xD0C,
        ..Default::default()
    });
    let (db, _) = corpus.prune_infrequent(2);
    let oracle = brute_force_pairs(&db, 3);
    let report = mine(
        &db,
        &MinerConfig {
            minsup: 3,
            ..Default::default()
        },
    );
    assert_eq!(report.pairs, oracle);
    assert!(report.watchdog_violations == 0);
}

#[test]
fn pipeline_exact_across_tile_sizes() {
    let db = uniform_db(100, 40_000, 0.04, 23);
    let oracle = brute_force_pairs(&db, 1);
    for k in [16usize, 32, 64, 2048] {
        let report = mine(
            &db,
            &MinerConfig {
                k,
                ..Default::default()
            },
        );
        assert_eq!(report.pairs, oracle, "k={k}");
    }
}

#[test]
fn pipeline_exact_under_forced_insertion_failures() {
    // Sparse instance (collisions possible) + MaxLoop=1: the F_b/M_pq
    // path must recover exactness.
    let db = uniform_db(40, 20_000, 0.02, 37);
    for seed in [1u64, 2, 3] {
        let report = mine(
            &db,
            &MinerConfig {
                max_loop: 1,
                seed,
                ..Default::default()
            },
        );
        assert_eq!(
            report.pairs,
            brute_force_pairs(&db, 1),
            "seed={seed} (failures={})",
            report.failed_pair_occurrences
        );
    }
}

#[test]
fn deterministic_given_seed() {
    let db = uniform_db(50, 20_000, 0.05, 5);
    let cfg = MinerConfig::default();
    let a = mine(&db, &cfg);
    let b = mine(&db, &cfg);
    assert_eq!(a.pairs, b.pairs);
    assert_eq!(a.comparisons, b.comparisons);
    assert_eq!(a.gpu_stats, b.gpu_stats);
    // Simulated timing is a pure function of the stats.
    assert_eq!(a.timings.kernel_s, b.timings.kernel_s);
}

#[test]
fn general_itemset_miners_agree_beyond_pairs() {
    // Expected triple support is m·p³ ≈ 7 here, so threshold 6 keeps a
    // healthy set of frequent triples.
    let db = uniform_db(25, 8_000, 0.15, 7);
    let ap = apriori::mine(&db, 6, 3);
    let fp = fpgrowth::mine(&db, 6, 3);
    let ec = eclat::mine(&db, 6, 3);
    assert_eq!(ap, fp);
    assert_eq!(ap, ec);
    assert!(
        ap.iter().any(|s| s.items.len() == 3),
        "expected some frequent triples at 15% density"
    );
}
