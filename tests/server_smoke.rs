//! End-to-end smoke test of the snapshot-serving query service: bind an
//! ephemeral socket (TCP and Unix), serve a hybrid corpus, answer every
//! query type through the real wire protocol, check the answers against
//! brute force on the source database, and shut down cleanly. A second
//! corpus is preprocessed with `max_loop = 1` to force failed cuckoo
//! insertions, so the served counts also exercise the correction path.

use batmap::{EngineOptions, ReprPolicy};
use batmap_server::{Client, EngineConfig, Probe, QueryEngine, Request, Response, Server};
use fim::{TransactionDb, VerticalDb};
use pairminer::{preprocess_with, Preprocessed};

fn db() -> TransactionDb {
    TransactionDb::new(
        30,
        (0..600usize)
            .map(|t| {
                (0..30u32)
                    .filter(|&i| (t as u32 + i * 7) % 11 < 3)
                    .collect()
            })
            .collect(),
    )
}

fn corpus_with(d: &TransactionDb, max_loop: u32, repr: ReprPolicy) -> Preprocessed {
    let v = VerticalDb::from_horizontal(d);
    preprocess_with(&v, 0xBA7_A11, max_loop, EngineOptions::auto().repr(repr))
}

fn corpus(d: &TransactionDb, max_loop: u32) -> Preprocessed {
    corpus_with(d, max_loop, ReprPolicy::Hybrid)
}

/// |tidlist(a) ∩ tidlist(b)| straight off the vertical layout.
fn oracle_count(v: &VerticalDb, a: u32, b: u32) -> u64 {
    let (ta, tb) = (v.tidlist(a), v.tidlist(b));
    ta.iter().filter(|x| tb.binary_search(x).is_ok()).count() as u64
}

fn oracle_top_k(
    v: &VerticalDb,
    probe_elements: &[u32],
    exclude: Option<u32>,
    k: usize,
) -> Vec<(u32, u64)> {
    let mut scored: Vec<(u32, u64)> = (0..v.n_items())
        .filter(|&s| Some(s) != exclude)
        .map(|s| {
            let t = v.tidlist(s);
            let c = probe_elements
                .iter()
                .filter(|x| t.binary_search(x).is_ok())
                .count() as u64;
            (s, c)
        })
        .filter(|&(_, c)| c > 0)
        .collect();
    scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

fn exercise(client: &mut Client, d: &TransactionDb, corpus_id: u32) {
    let v = VerticalDb::from_horizontal(d);
    let n = v.n_items();

    // Counts, including the diagonal (a == b is a set's cardinality).
    for a in 0..n {
        for b in [a, (a + 1) % n, (a * 7 + 3) % n] {
            assert_eq!(
                client.count(corpus_id, a, b).unwrap(),
                oracle_count(&v, a, b),
                "count {a}x{b}"
            );
        }
    }

    // Membership, hits and misses.
    for s in 0..n {
        let t = v.tidlist(s);
        if let Some(&e) = t.first() {
            assert!(client.member(corpus_id, s, e).unwrap(), "member hit {s}");
        }
        let miss = (0..d.len() as u32).find(|x| t.binary_search(x).is_err());
        if let Some(e) = miss {
            assert!(!client.member(corpus_id, s, e).unwrap(), "member miss {s}");
        }
    }

    // Top-k against a stored probe and an ad-hoc element probe.
    for s in [0u32, n / 2, n - 1] {
        assert_eq!(
            client.top_k(corpus_id, Probe::Set(s), 5).unwrap(),
            oracle_top_k(&v, v.tidlist(s), Some(s), 5),
            "top-k stored probe {s}"
        );
    }
    let adhoc: Vec<u32> = (0..d.len() as u32).filter(|x| x % 5 == 0).collect();
    assert_eq!(
        client
            .top_k(corpus_id, Probe::Elements(adhoc.clone()), 7)
            .unwrap(),
        oracle_top_k(&v, &adhoc, None, 7),
        "top-k ad-hoc probe"
    );

    // Info reflects the corpus.
    let info = client.info(corpus_id).unwrap();
    assert_eq!(info.sets, n);
    assert_eq!(info.m, d.len() as u64);

    // Mining through the server equals levelwise Apriori on the source.
    let mined = client.mine(corpus_id, 3, 20).unwrap();
    assert!(!mined.truncated);
    let mut served: Vec<(Vec<u32>, u64)> = mined
        .itemsets
        .into_iter()
        .map(|e| (e.items, e.support))
        .collect();
    served.sort();
    let mut expect: Vec<(Vec<u32>, u64)> = fim::apriori::mine(d, 20, 3)
        .into_iter()
        .map(|s| (s.items, s.support))
        .collect();
    expect.sort();
    assert_eq!(served, expect, "mine summary");

    // Errors come back typed, not as dropped connections.
    match client
        .call(corpus_id, &Request::Count { a: n + 9, b: 0 })
        .unwrap()
    {
        Response::Error(_) => {}
        other => panic!("out-of-range set must error, got {other:?}"),
    }
}

#[test]
fn tcp_smoke_counts_match_brute_force_and_shutdown_is_clean() {
    let d = db();
    // Two corpora on one engine: clean hybrid, and failure-forced (a
    // dense pure-batmap fixture under max_loop=1 — bitmaps and tidlists
    // never fail insertion) so the correction path serves under-stored
    // payloads exactly.
    let dense = TransactionDb::new(
        24,
        (0..3000usize)
            .map(|t| {
                (0..24u32)
                    .filter(|&i| (t as u32 + i * 7) % 30 < 2)
                    .collect()
            })
            .collect(),
    );
    let clean = corpus(&d, 128);
    let forced = corpus_with(&dense, 1, ReprPolicy::Batmap);
    assert!(
        !forced.failed.is_empty(),
        "fixture must force failed insertions"
    );
    let engine = QueryEngine::new(
        vec![clean, forced],
        EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        },
    );
    let handle = Server::bind_tcp("127.0.0.1:0").unwrap().serve(engine);
    let addr = handle.tcp_addr().unwrap();

    let mut client = Client::connect_tcp(addr).unwrap();
    assert_eq!(client.corpora(), 2);
    exercise(&mut client, &d, 0);
    exercise(&mut client, &dense, 1);

    // A second connection works concurrently with the first.
    let mut second = Client::connect_tcp(addr).unwrap();
    assert_eq!(
        second.count(0, 1, 2).unwrap(),
        client.count(0, 1, 2).unwrap()
    );

    // Shutdown stops the accept loop; join returns even though `second`
    // is still connected and idle (the server closes its read half).
    client.shutdown().unwrap();
    handle.join();
    assert!(
        Client::connect_tcp(addr).is_err(),
        "server must stop listening"
    );
    assert!(
        second.count(0, 1, 2).is_err(),
        "idle connection must be closed by shutdown"
    );
}

#[cfg(unix)]
#[test]
fn unix_socket_smoke_serves_and_removes_the_socket_file() {
    let d = db();
    let engine = QueryEngine::new(vec![corpus(&d, 128)], EngineConfig::default());
    let path = std::env::temp_dir().join(format!("batmap-serve-test-{}.sock", std::process::id()));
    let handle = Server::bind_unix(&path).unwrap().serve(engine);
    assert_eq!(handle.unix_path(), Some(path.as_path()));

    let mut client = Client::connect_unix(&path).unwrap();
    assert_eq!(client.corpora(), 1);
    exercise(&mut client, &d, 0);

    client.shutdown().unwrap();
    handle.join();
    assert!(!path.exists(), "shutdown must remove the Unix socket file");
}

#[test]
fn handle_drop_shuts_the_server_down() {
    let d = db();
    let engine = QueryEngine::new(vec![corpus(&d, 128)], EngineConfig::default());
    let handle = Server::bind_tcp("127.0.0.1:0").unwrap().serve(engine);
    let addr = handle.tcp_addr().unwrap();
    let mut client = Client::connect_tcp(addr).unwrap();
    assert_eq!(
        client.count(0, 0, 0).unwrap(),
        oracle_count(&VerticalDb::from_horizontal(&d), 0, 0)
    );
    drop(client);
    drop(handle); // Drop impl = shutdown + join; must not hang.
    assert!(Client::connect_tcp(addr).is_err());
}

#[cfg(unix)]
#[test]
fn stale_unix_socket_file_is_detected_and_rebound() {
    // A crashed server leaves its socket file behind; rebinding must
    // probe it, find nobody home, unlink, and serve — while a *live*
    // listener on the same path must still be refused.
    let d = db();
    let path = std::env::temp_dir().join(format!("batmap-stale-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Fabricate the crash: bind a listener, then drop it without
    // unlinking (std never removes the file on drop).
    let dead = std::os::unix::net::UnixListener::bind(&path).unwrap();
    drop(dead);
    assert!(path.exists(), "fixture: the stale socket file must remain");

    let engine = QueryEngine::new(vec![corpus(&d, 128)], EngineConfig::default());
    let handle = Server::bind_unix(&path)
        .expect("stale socket must be unlinked and rebound")
        .serve(engine);

    // While this server is alive, the path is genuinely in use.
    match Server::bind_unix(&path) {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::AddrInUse, "{e}"),
        Ok(_) => panic!("a live listener must not be evicted"),
    }

    let mut client = Client::connect_unix(&path).unwrap();
    let v = VerticalDb::from_horizontal(&d);
    assert_eq!(client.count(0, 2, 5).unwrap(), oracle_count(&v, 2, 5));
    client.shutdown().unwrap();
    handle.join();
    assert!(!path.exists());
}

#[test]
fn idle_connections_are_evicted_on_deadline() {
    // With an idle deadline configured, a connection that goes quiet is
    // evicted; a fresh connection still serves.
    use std::time::Duration;
    let d = db();
    let engine = QueryEngine::new(vec![corpus(&d, 128)], EngineConfig::default());
    let config = batmap_server::ServerConfig {
        read_timeout: Some(Duration::from_millis(20)),
        write_timeout: Some(Duration::from_secs(5)),
        idle_timeout: Some(Duration::from_millis(80)),
    };
    let handle = Server::bind_tcp("127.0.0.1:0")
        .unwrap()
        .config(config)
        .serve(engine);
    let addr = handle.tcp_addr().unwrap();

    let mut lazy = Client::connect_tcp(addr)
        .unwrap()
        .with_retry(batmap_server::RetryPolicy::none());
    let v = VerticalDb::from_horizontal(&d);
    assert_eq!(lazy.count(0, 1, 2).unwrap(), oracle_count(&v, 1, 2));
    std::thread::sleep(Duration::from_millis(400));
    assert!(
        lazy.count(0, 1, 2).is_err(),
        "a connection idle past the deadline must have been evicted"
    );

    let mut fresh = Client::connect_tcp(addr).unwrap();
    assert_eq!(fresh.count(0, 1, 2).unwrap(), oracle_count(&v, 1, 2));
    fresh.shutdown().unwrap();
    handle.join();
}
