//! Differential oracle for the incremental-ingestion layer.
//!
//! Property: for **any** interleaving of inserts, removes, queries, and
//! compactions over a random corpus, the live [`LayeredCorpus`] answers
//! every query — per-item counts, membership, pair counts, top-k, and
//! levelwise mining reports — identically to a **from-scratch
//! preprocess** of the final transaction multiset. And not just at the
//! end: mid-stream probes along the interleaving must match a
//! brute-force model of the live contents at that instant.
//!
//! The property is pinned across both storage-policy axes
//! (`ReprPolicy::Batmap` and `ReprPolicy::Hybrid` — the delta layer
//! must be invisible regardless of how the base represents each set)
//! and across host parallelism 1 and 4 (mining fan-out must not change
//! any report).

use batmap::{EngineOptions, Parallelism, ReprPolicy};
use fim::TransactionDb;
use pairminer::{Engine, LayeredCorpus, LevelwiseConfig, LevelwiseMiner, MinerConfig};
use proptest::collection::vec;
use proptest::prelude::*;

/// One scripted step of the interleaving.
#[derive(Debug, Clone)]
enum Step {
    /// Toggle slot `tid`: insert a derived transaction when free,
    /// remove when live.
    Toggle { tid: u32, bits: u64 },
    /// Re-apply the current state of slot `tid` (idempotence probe):
    /// re-insert live slots with identical items, re-remove free ones —
    /// both must answer 0 and change nothing.
    Reapply { tid: u32 },
    /// Fold all pending deltas into a fresh base arena.
    Compact,
    /// Check a pair count and an item count against the model.
    Probe { a: u32, b: u32 },
}

fn materialize(ops: &[(u8, u32, u32, u64)], n: u32, m: u32) -> Vec<Step> {
    ops.iter()
        .map(|&(op, x, y, bits)| match op % 8 {
            0..=3 => Step::Toggle { tid: x % m, bits },
            4 => Step::Reapply { tid: x % m },
            5 => Step::Compact,
            _ => Step::Probe { a: x % n, b: y % n },
        })
        .collect()
}

/// Derive a non-empty, strictly ascending item list from a bit soup.
fn derive_items(bits: u64, n: u32) -> Vec<u32> {
    let mut items: Vec<u32> = (0..n).filter(|&i| (bits >> (i % 64)) & 1 == 1).collect();
    if items.is_empty() {
        items.push((bits % n as u64) as u32);
    }
    items
}

/// Brute-force pair count over the model's live transactions.
fn model_pair(model: &[Vec<u32>], a: u32, b: u32) -> u64 {
    model
        .iter()
        .filter(|t| t.binary_search(&a).is_ok() && t.binary_search(&b).is_ok())
        .count() as u64
}

fn model_support(model: &[Vec<u32>], a: u32) -> u64 {
    model.iter().filter(|t| t.binary_search(&a).is_ok()).count() as u64
}

fn mine_config(options: EngineOptions) -> LevelwiseConfig {
    LevelwiseConfig {
        depth: 3,
        pair: MinerConfig {
            engine: Engine::Cpu,
            options,
            ..MinerConfig::default()
        },
        ..LevelwiseConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The differential oracle (see module docs).
    #[test]
    fn interleaved_writes_equal_from_scratch_preprocess(
        n in 2u32..12,
        m in 4u32..32,
        start in vec(vec(any::<u32>(), 0..8usize), 0..16),
        ops in vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u64>()), 5..40),
        seed in 0u64..100,
    ) {
        // Seed database: some live slots, the rest free for writes.
        let mut txns: Vec<Vec<u32>> = vec![Vec::new(); m as usize];
        for (i, soup) in start.iter().enumerate() {
            txns[i % m as usize] = soup.iter().map(|&x| x % n).collect();
        }
        let db = TransactionDb::new(n, txns);
        let steps = materialize(&ops, n, m);

        for policy in [ReprPolicy::Batmap, ReprPolicy::Hybrid] {
            for threads in [Parallelism::Serial, Parallelism::threads(4)] {
                let options = EngineOptions::auto().repr(policy).threads(threads);
                let mut corpus = LayeredCorpus::new(&db, seed, 128, options);
                // The model: live transactions, maintained in lockstep.
                let mut model: Vec<Vec<u32>> = db.transactions().to_vec();

                for step in &steps {
                    match step {
                        Step::Toggle { tid, bits } => {
                            let t = *tid as usize;
                            if model[t].is_empty() {
                                let items = derive_items(*bits, n);
                                let changed = corpus.insert_txn(*tid, &items).unwrap();
                                prop_assert_eq!(changed, items.len() as u64);
                                model[t] = items;
                            } else {
                                let changed = corpus.remove_txn(*tid).unwrap();
                                prop_assert_eq!(changed, model[t].len() as u64);
                                model[t].clear();
                            }
                        }
                        Step::Reapply { tid } => {
                            let t = *tid as usize;
                            if model[t].is_empty() {
                                prop_assert_eq!(corpus.remove_txn(*tid).unwrap(), 0);
                            } else {
                                let items = model[t].clone();
                                prop_assert_eq!(corpus.insert_txn(*tid, &items).unwrap(), 0);
                            }
                        }
                        Step::Compact => {
                            corpus.compact().unwrap();
                            prop_assert!(!corpus.is_dirty());
                        }
                        Step::Probe { a, b } => {
                            prop_assert_eq!(corpus.pair_count(*a, *b), model_pair(&model, *a, *b));
                            prop_assert_eq!(corpus.count(*a), model_support(&model, *a));
                        }
                    }
                }

                // Final state: every answer equals a from-scratch
                // preprocess of the final transaction multiset.
                let final_db = TransactionDb::new(n, model.clone());
                let fresh = LayeredCorpus::new(&final_db, seed.wrapping_add(1), 128, options);
                for a in 0..n {
                    prop_assert_eq!(corpus.count(a), fresh.count(a), "count({})", a);
                    for b in 0..n {
                        prop_assert_eq!(
                            corpus.pair_count(a, b),
                            fresh.pair_count(a, b),
                            "pair ({}, {}) under {:?}",
                            a, b, policy
                        );
                    }
                    prop_assert_eq!(
                        corpus.top_k(a, 5),
                        fresh.top_k(a, 5),
                        "top-k of {} under {:?}",
                        a, policy
                    );
                }
                for tid in 0..m {
                    for a in 0..n {
                        prop_assert_eq!(
                            corpus.member(a, tid),
                            model[tid as usize].binary_search(&a).is_ok(),
                            "member({}, {})", a, tid
                        );
                    }
                }

                // Levelwise mining: the live corpus' report (compacting
                // its deltas) equals a from-scratch mine of the final
                // database — same itemsets, same supports.
                let report = corpus.mine(mine_config(options)).unwrap();
                let scratch = LevelwiseMiner::new(mine_config(options)).mine(&final_db);
                prop_assert_eq!(&report.itemsets, &scratch.itemsets);
                prop_assert_eq!(report.levels.len(), scratch.levels.len());
                for (have, want) in report.levels.iter().zip(&scratch.levels) {
                    prop_assert_eq!(have.k, want.k);
                    prop_assert_eq!(have.frequent, want.frequent);
                }
            }
        }
    }
}

/// Compaction mid-stream is query-invisible: interleaving a compact
/// between every write gives the same answers as never compacting.
#[test]
fn compaction_placement_is_query_invisible() {
    let n = 8u32;
    let m = 16u32;
    let db = TransactionDb::new(n, vec![Vec::new(); m as usize]);
    let options = EngineOptions::auto().repr(ReprPolicy::Hybrid);
    let mut eager = LayeredCorpus::new(&db, 3, 128, options);
    let mut lazy = LayeredCorpus::new(&db, 3, 128, options);
    let writes: Vec<(u32, Vec<u32>)> = (0..m)
        .map(|t| (t, (0..n).filter(|&i| (t + i) % 3 != 0).collect()))
        .collect();
    for (tid, items) in &writes {
        if items.is_empty() {
            continue;
        }
        eager.insert_txn(*tid, items).unwrap();
        lazy.insert_txn(*tid, items).unwrap();
        eager.compact().unwrap();
        for a in 0..n {
            assert_eq!(eager.count(a), lazy.count(a));
            for b in 0..n {
                assert_eq!(eager.pair_count(a, b), lazy.pair_count(a, b), "({a},{b})");
            }
        }
    }
    assert!(!eager.is_dirty());
    assert!(lazy.is_dirty());
}
