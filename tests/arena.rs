//! Property tests for the arena storage layer: arena-backed views must
//! be indistinguishable from owned batmaps for every counting path, at
//! every kernel backend, across arbitrary databases and set widths; and
//! snapshot persistence must be lossless (roundtrips preserve every
//! pairwise and multiway count) while corrupted snapshots are rejected.

use batmap::{
    intersect, multiway, ArenaBuilder, Batmap, BatmapArena, BatmapParams, EngineOptions,
    KernelBackend,
};
use proptest::collection::btree_set;
use proptest::prelude::*;
use std::sync::Arc;

const M: u64 = 20_000;

/// A database: a handful of sets with wildly different sizes, so the
/// arena holds genuinely mixed widths (the folding path included).
fn arb_db() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        (0usize..4).prop_flat_map(|scale| {
            // 0..8, 0..64, 0..512, 0..2048 elements → several widths.
            let cap = 8usize << (3 * scale);
            btree_set(0u32..M as u32, 0..cap).prop_map(|s| s.into_iter().collect::<Vec<u32>>())
        }),
        2..7,
    )
}

/// One of the backends this CPU can actually run.
fn arb_backend() -> impl Strategy<Value = KernelBackend> {
    let available: Vec<KernelBackend> = batmap::available_backends().collect();
    (0..available.len()).prop_map(move |i| available[i])
}

/// Build the same sets as owned batmaps and as one arena.
fn build_both(params: &batmap::ParamsHandle, sets: &[Vec<u32>]) -> (Vec<Batmap>, BatmapArena) {
    let owned: Vec<Batmap> = sets
        .iter()
        .map(|s| Batmap::build_sorted(params.clone(), s).batmap)
        .collect();
    let mut builder = ArenaBuilder::new(params.clone());
    for bm in &owned {
        builder.push(bm);
    }
    (owned, builder.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arena-backed counts equal owned-batmap counts: pairwise (both
    /// argument orders and mixed storage), batched one-vs-many, and the
    /// multiway probe sweep — for arbitrary databases, widths, and
    /// every kernel backend available on this CPU.
    #[test]
    fn arena_counts_equal_owned_counts(
        sets in arb_db(),
        backend in arb_backend(),
        seed in 0u64..500,
    ) {
        let params = Arc::new(BatmapParams::new(M, seed).with_engine_options(EngineOptions::auto().kernel(backend)));
        let (owned, arena) = build_both(&params, &sets);
        prop_assume!(owned.iter().zip(&sets).all(|(b, s)| b.len() == s.len()));

        // Pairwise, both orders, owned/view mixed.
        for i in 0..owned.len() {
            for j in 0..owned.len() {
                let expect = owned[i].intersect_count(&owned[j]);
                prop_assert_eq!(arena.get(i).intersect_count(&arena.get(j)), expect);
                prop_assert_eq!(arena.get(i).intersect_count(&owned[j]), expect);
                prop_assert_eq!(owned[i].intersect_count(&arena.get(j)), expect);
                prop_assert_eq!(
                    intersect::count_with(backend.kernel(), &arena.get(i), &arena.get(j)),
                    expect
                );
            }
        }

        // Batched one-vs-many over views vs over owned batmaps.
        let views = arena.views(0..arena.len());
        for i in 0..owned.len() {
            let from_views = intersect::count_one_vs_many(&arena.get(i), &views);
            let from_owned = intersect::count_one_vs_many(&owned[i], &owned);
            prop_assert_eq!(from_views, from_owned);
        }

        // The §V probe sweep (multiway counting on pairwise batmaps).
        if owned.len() >= 3 {
            let view_ops: Vec<_> = (0..3).map(|i| arena.get(i)).collect();
            let view_refs: Vec<&_> = view_ops.iter().collect();
            let owned_refs: Vec<&Batmap> = owned[..3].iter().collect();
            prop_assert_eq!(
                multiway::intersect_count_probe(&view_refs),
                multiway::intersect_count_probe(&owned_refs)
            );
        }
    }

    /// Snapshot write→read roundtrip preserves every pairwise count,
    /// every multiway probe count, and every decoded element set.
    #[test]
    fn snapshot_roundtrip_preserves_counts(
        sets in arb_db(),
        backend in arb_backend(),
        seed in 0u64..500,
    ) {
        let params = Arc::new(BatmapParams::new(M, seed).with_engine_options(EngineOptions::auto().kernel(backend)));
        let (owned, arena) = build_both(&params, &sets);
        prop_assume!(owned.iter().zip(&sets).all(|(b, s)| b.len() == s.len()));
        let mut buf = Vec::new();
        arena.write_to(&mut buf).unwrap();
        let loaded = BatmapArena::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(loaded.len(), arena.len());
        prop_assert_eq!(loaded.params().kernel_backend(), backend);
        for i in 0..arena.len() {
            let mut e = loaded.get(i).elements();
            e.sort_unstable();
            prop_assert_eq!(&e, &sets[i]);
            for j in 0..arena.len() {
                prop_assert_eq!(
                    loaded.get(i).intersect_count(&loaded.get(j)),
                    owned[i].intersect_count(&owned[j]),
                    "pair ({}, {})", i, j
                );
            }
        }
        if arena.len() >= 3 {
            let ops: Vec<_> = (0..3).map(|i| loaded.get(i)).collect();
            let refs: Vec<&_> = ops.iter().collect();
            let owned_refs: Vec<&Batmap> = owned[..3].iter().collect();
            prop_assert_eq!(
                multiway::intersect_count_probe(&refs),
                multiway::intersect_count_probe(&owned_refs)
            );
        }
    }

    /// Corruption anywhere in the checked regions — magic, version,
    /// structural header bytes, directory, payload, or truncation —
    /// must be rejected, never served as silently-wrong counts.
    #[test]
    fn snapshot_rejects_corrupted_headers(
        sets in arb_db(),
        seed in 0u64..200,
        poke in 0usize..1_000_000,
        flip in 1u8..255,
    ) {
        let params = Arc::new(BatmapParams::new(M, seed));
        let (_, arena) = build_both(&params, &sets);
        let mut buf = Vec::new();
        arena.write_to(&mut buf).unwrap();

        // Magic.
        let mut bad = buf.clone();
        bad[0] ^= flip;
        prop_assert!(BatmapArena::read_from(&mut bad.as_slice()).is_err());

        // Version word.
        let mut bad = buf.clone();
        bad[8] ^= flip;
        prop_assert!(BatmapArena::read_from(&mut bad.as_slice()).is_err());

        // Payload (tail region): checksum must catch any flipped byte.
        let payload_start = buf.len() - arena.backing_bytes();
        let mut bad = buf.clone();
        let idx = payload_start + poke % arena.backing_bytes().max(1);
        bad[idx] ^= flip;
        prop_assert!(BatmapArena::read_from(&mut bad.as_slice()).is_err());

        // Truncation at an arbitrary point.
        let cut = poke % buf.len().max(1);
        prop_assert!(BatmapArena::read_from(&mut &buf[..cut]).is_err());

        // The pristine buffer still loads (the corruption cases above
        // are rejections of *those* bytes, not flakiness).
        prop_assert!(BatmapArena::read_from(&mut buf.as_slice()).is_ok());
    }
}

/// The in-place arena preprocessing path must produce byte-identical
/// slot arrays to per-set owned builds over the same universe — the
/// storage refactor may not change a single bit of the layout.
#[test]
fn preprocessed_arena_bytes_match_owned_builds() {
    use fim::{TransactionDb, VerticalDb};
    let db = TransactionDb::new(
        40,
        (0..700usize)
            .map(|t| {
                (0..40u32)
                    .filter(|&i| (t as u32 + i * 3) % 11 < 3)
                    .collect()
            })
            .collect(),
    );
    let v = VerticalDb::from_horizontal(&db);
    let pre = pairminer::preprocess(&v, 0xA1, 128);
    for (s, &item) in pre.order.iter().enumerate() {
        let owned = Batmap::build_sorted(pre.params.clone(), v.tidlist(item)).batmap;
        assert_eq!(
            pre.batmap(s).as_bytes(),
            owned.as_bytes(),
            "sorted position {s} (item {item})"
        );
        assert_eq!(pre.batmap(s).len(), owned.len());
    }
}
