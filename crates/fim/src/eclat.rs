//! Eclat (Zaki et al. \[29\]): vertical-format mining by depth-first
//! tidlist intersection.
//!
//! The paper ran Borgelt's Eclat and dropped it from the plots for
//! slowness; we implement it both as a baseline and because its pairs
//! mode — *every* pairwise tidlist intersection by sorted merge — is
//! precisely the CPU computation the batmap/GPU pipeline replaces.

use crate::apriori::Itemset;
use crate::merge;
use crate::pairs::PairMap;
use crate::transactions::TransactionDb;
use crate::vertical::VerticalDb;

/// Frequent-pair mining: merge-intersect every pair of tidlists.
/// `Θ(Σᵢⱼ (|Sᵢ|+|Sⱼ|))` — the quantity the paper's §IV-B throughput
/// comparison measures.
pub fn mine_pairs(v: &VerticalDb, minsup: u64) -> PairMap {
    let n = v.n_items();
    let mut out = PairMap::default();
    for i in 0..n {
        let ti = v.tidlist(i);
        if (ti.len() as u64) < minsup {
            continue; // |Sᵢ∩Sⱼ| ≤ |Sᵢ|: cannot reach minsup
        }
        for j in (i + 1)..n {
            let tj = v.tidlist(j);
            if (tj.len() as u64) < minsup {
                continue;
            }
            let support = merge::count_branchy(ti, tj);
            if support >= minsup && support > 0 {
                out.insert((i, j), support);
            }
        }
    }
    out
}

/// Full Eclat: DFS over the item lattice with materialized intersection
/// tidlists. Returns frequent itemsets of size `2..=max_len`.
pub fn mine(db: &TransactionDb, minsup: u64, max_len: usize) -> Vec<Itemset> {
    let v = VerticalDb::from_horizontal(db);
    let mut out = Vec::new();
    if max_len < 2 {
        return out;
    }
    let frequent: Vec<u32> = (0..v.n_items())
        .filter(|&i| v.support(i) >= minsup && v.support(i) > 0)
        .collect();
    // DFS with prefix tidlists.
    let mut prefix: Vec<u32> = Vec::new();
    for (idx, &i) in frequent.iter().enumerate() {
        prefix.push(i);
        dfs(
            &v,
            &frequent[idx + 1..],
            v.tidlist(i),
            minsup,
            max_len,
            &mut prefix,
            &mut out,
        );
        prefix.pop();
    }
    out.sort_unstable_by(|a, b| a.items.cmp(&b.items));
    out
}

fn dfs(
    v: &VerticalDb,
    extensions: &[u32],
    tids: &[u32],
    minsup: u64,
    max_len: usize,
    prefix: &mut Vec<u32>,
    out: &mut Vec<Itemset>,
) {
    for (idx, &j) in extensions.iter().enumerate() {
        let joined = intersect_lists(tids, v.tidlist(j));
        let support = joined.len() as u64;
        if support < minsup {
            continue;
        }
        prefix.push(j);
        out.push(Itemset {
            items: prefix.clone(),
            support,
        });
        if prefix.len() < max_len {
            dfs(
                v,
                &extensions[idx + 1..],
                &joined,
                minsup,
                max_len,
                prefix,
                out,
            );
        }
        prefix.pop();
    }
}

/// dEclat (Zaki & Gouda's diffset variant): instead of carrying the
/// intersection tidlist down the DFS, carry the *diffset* — the tids of
/// the prefix that the extension item does **not** cover. Support
/// becomes `support(prefix) − |diffset|`, and diffsets shrink as the
/// DFS deepens where tidlists would stay large on dense data.
///
/// Returns frequent itemsets of size `2..=max_len`, identical to
/// [`mine`] (cross-checked in tests).
pub fn mine_diffsets(db: &TransactionDb, minsup: u64, max_len: usize) -> Vec<Itemset> {
    let v = VerticalDb::from_horizontal(db);
    let mut out = Vec::new();
    if max_len < 2 {
        return out;
    }
    let frequent: Vec<u32> = (0..v.n_items())
        .filter(|&i| v.support(i) >= minsup && v.support(i) > 0)
        .collect();
    let mut prefix = Vec::new();
    for (idx, &i) in frequent.iter().enumerate() {
        prefix.push(i);
        dfs_diff(
            &v,
            &frequent[idx + 1..],
            v.tidlist(i),
            v.support(i),
            minsup,
            max_len,
            &mut prefix,
            &mut out,
        );
        prefix.pop();
    }
    out.sort_unstable_by(|a, b| a.items.cmp(&b.items));
    out
}

/// DFS step: `parent_tids` is the cover of the current prefix. The
/// diffset of `P ∪ {j}` is `cover(P) \ tidlist(j)`; its length gives
/// the support drop, and the child's cover is `cover(P) \ diffset` —
/// each level subtracts a (shrinking) diffset rather than
/// re-intersecting full tidlists, the dEclat saving.
#[allow(clippy::too_many_arguments)]
fn dfs_diff(
    v: &VerticalDb,
    extensions: &[u32],
    parent_tids: &[u32],
    parent_support: u64,
    minsup: u64,
    max_len: usize,
    prefix: &mut Vec<u32>,
    out: &mut Vec<Itemset>,
) {
    for (idx, &j) in extensions.iter().enumerate() {
        let diff = subtract(parent_tids, v.tidlist(j));
        let support = parent_support - diff.len() as u64;
        if support < minsup {
            continue;
        }
        prefix.push(j);
        out.push(Itemset {
            items: prefix.clone(),
            support,
        });
        if prefix.len() < max_len {
            let child_tids = subtract(parent_tids, &diff);
            dfs_diff(
                v,
                &extensions[idx + 1..],
                &child_tids,
                support,
                minsup,
                max_len,
                prefix,
                out,
            );
        }
        prefix.pop();
    }
}

/// `a \ b` over sorted slices.
fn subtract(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] == b[j] {
            i += 1;
            j += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Materializing sorted-list intersection (Eclat needs the tids, not
/// just the count).
fn intersect_lists(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori;
    use crate::fpgrowth;
    use crate::pairs::brute_force_pairs;

    fn db() -> TransactionDb {
        TransactionDb::new(
            5,
            vec![
                vec![0, 1, 2, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 3, 4],
                vec![0, 2, 4],
            ],
        )
    }

    #[test]
    fn pairs_match_brute_force() {
        let d = db();
        let v = VerticalDb::from_horizontal(&d);
        for minsup in [1, 2, 3] {
            assert_eq!(mine_pairs(&v, minsup), brute_force_pairs(&d, minsup));
        }
    }

    #[test]
    fn three_miners_agree_on_itemsets() {
        let d = db();
        for minsup in [2, 3] {
            let ec = mine(&d, minsup, 4);
            let ap = apriori::mine(&d, minsup, 4);
            let fp = fpgrowth::mine(&d, minsup, 4);
            assert_eq!(ec, ap, "eclat vs apriori, minsup={minsup}");
            assert_eq!(ec, fp, "eclat vs fpgrowth, minsup={minsup}");
        }
    }

    #[test]
    fn diffset_variant_matches_classic() {
        let d = db();
        for minsup in [1u64, 2, 3] {
            let classic = mine(&d, minsup, 4);
            let diff = mine_diffsets(&d, minsup, 4);
            assert_eq!(classic, diff, "minsup={minsup}");
        }
    }

    #[test]
    fn subtract_cases() {
        assert_eq!(subtract(&[1, 2, 3, 4], &[2, 4]), vec![1, 3]);
        assert_eq!(subtract(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(subtract(&[], &[1]), Vec::<u32>::new());
        assert_eq!(subtract(&[5], &[1, 5, 9]), Vec::<u32>::new());
    }

    #[test]
    fn intersect_lists_basic() {
        assert_eq!(intersect_lists(&[1, 2, 3], &[2, 3, 4]), vec![2, 3]);
        assert_eq!(intersect_lists(&[], &[1]), Vec::<u32>::new());
    }

    #[test]
    fn minsup_pruning_skips_small_lists() {
        let d = db();
        let v = VerticalDb::from_horizontal(&d);
        let pairs = mine_pairs(&v, 10);
        assert!(pairs.is_empty());
    }
}
