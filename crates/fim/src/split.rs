//! Instance splitting for the Fig. 9 multicore-scaling simulation.
//!
//! The paper simulates parallel execution on `i` cores by splitting the
//! instance into `i` equal sub-instances, running the miner on each, and
//! taking the *maximum* of the execution times (the parallel makespan;
//! support counts would then be combined, whose cost is the
//! communication bottleneck discussed in §I).

use crate::transactions::TransactionDb;

/// Split transaction-wise into `parts` sub-databases of (nearly) equal
/// transaction counts, preserving the item universe. Round-robin keeps
/// the parts statistically identical for i.i.d. generators.
pub fn split(db: &TransactionDb, parts: usize) -> Vec<TransactionDb> {
    assert!(parts > 0);
    let mut buckets: Vec<Vec<Vec<u32>>> = vec![Vec::new(); parts];
    for (idx, t) in db.transactions().iter().enumerate() {
        buckets[idx % parts].push(t.clone());
    }
    buckets
        .into_iter()
        .map(|ts| TransactionDb::new(db.n_items(), ts))
        .collect()
}

/// Combine per-part pair supports into global supports (the reduction
/// step of the simulated parallel run).
pub fn combine_pair_counts(parts: Vec<crate::pairs::PairMap>) -> crate::pairs::PairMap {
    let mut out = crate::pairs::PairMap::default();
    for p in parts {
        for (k, v) in p {
            *out.entry(k).or_insert(0) += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::brute_force_pairs;

    fn db() -> TransactionDb {
        TransactionDb::new(
            4,
            (0..10)
                .map(|i| vec![i % 4, (i + 1) % 4])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn split_preserves_transactions() {
        let d = db();
        let parts = split(&d, 3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(TransactionDb::len).sum();
        assert_eq!(total, d.len());
        // Near-equal sizes.
        let sizes: Vec<usize> = parts.iter().map(TransactionDb::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn combined_counts_equal_global_counts() {
        let d = db();
        for parts in [1usize, 2, 4] {
            let per_part: Vec<_> = split(&d, parts)
                .iter()
                .map(|p| brute_force_pairs(p, 1))
                .collect();
            let combined = combine_pair_counts(per_part);
            assert_eq!(combined, brute_force_pairs(&d, 1), "parts={parts}");
        }
    }

    #[test]
    fn single_part_is_identity() {
        let d = db();
        let parts = split(&d, 1);
        assert_eq!(parts[0], d);
    }

    #[test]
    #[should_panic]
    fn zero_parts_rejected() {
        let _ = split(&db(), 0);
    }
}
