//! WAH (Word-Aligned Hybrid) compressed bitmaps — the prior
//! compressed-bitmap state of the art the paper positions against
//! (Wu, Otoo & Shoshani \[27\], §I-B.1).
//!
//! A WAH bitmap is a sequence of 32-bit words: *literal* words carry 31
//! payload bits verbatim; *fill* words run-length encode a repeated
//! all-zero or all-one 31-bit group. Compression is excellent on sparse
//! or clustered data — but intersection requires **sequential
//! decoding** with data-dependent control flow (which input advances
//! depends on the run lengths), the property that makes WAH-style
//! formats a poor fit for GPUs and the motivation for batmaps: "these
//! methods all require data to be decoded sequentially, and provide no
//! easy parallelization."

use hpcutil::MemoryFootprint;

/// Bits carried per literal word.
const GROUP: u32 = 31;
/// MSB set ⇒ fill word.
const FILL_FLAG: u32 = 1 << 31;
/// Second-highest bit of a fill word: the fill bit value.
const FILL_VALUE: u32 = 1 << 30;
/// Run-length mask of a fill word (counts 31-bit groups).
const FILL_LEN: u32 = FILL_VALUE - 1;

/// A WAH-compressed bitmap over `{0..m-1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WahBitmap {
    /// Universe size in bits.
    m: u32,
    /// The compressed words.
    words: Vec<u32>,
}

/// Iterator state over a WAH word stream, yielding 31-bit groups.
struct Groups<'a> {
    words: &'a [u32],
    idx: usize,
    /// Remaining groups of the current fill (0 ⇒ fetch next word).
    fill_left: u32,
    fill_bits: u32,
}

impl<'a> Groups<'a> {
    fn new(words: &'a [u32]) -> Self {
        Groups {
            words,
            idx: 0,
            fill_left: 0,
            fill_bits: 0,
        }
    }
}

impl Iterator for Groups<'_> {
    type Item = u32;

    /// The data-dependent sequential decode loop — the very thing the
    /// paper's layout avoids.
    fn next(&mut self) -> Option<u32> {
        if self.fill_left > 0 {
            self.fill_left -= 1;
            return Some(self.fill_bits);
        }
        let w = *self.words.get(self.idx)?;
        self.idx += 1;
        if w & FILL_FLAG == 0 {
            return Some(w); // literal: 31 payload bits
        }
        let bits = if w & FILL_VALUE != 0 {
            (1 << GROUP) - 1
        } else {
            0
        };
        let len = w & FILL_LEN;
        debug_assert!(len >= 1);
        self.fill_left = len - 1;
        self.fill_bits = bits;
        Some(bits)
    }
}

impl WahBitmap {
    /// Compress a sorted, duplicate-free list of set bit positions.
    pub fn from_sorted(m: u32, positions: &[u32]) -> Self {
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        if let Some(&last) = positions.last() {
            assert!(last < m, "bit {last} out of range 0..{m}");
        }
        let groups = m.div_ceil(GROUP);
        let mut words: Vec<u32> = Vec::new();
        let mut pos = positions.iter().peekable();
        let mut pending_fill: Option<(u32, u32)> = None; // (bits, len)
        for g in 0..groups {
            let lo = g * GROUP;
            let hi = lo + GROUP;
            let mut group = 0u32;
            while let Some(&&p) = pos.peek() {
                if p >= hi {
                    break;
                }
                group |= 1 << (p - lo);
                pos.next();
            }
            let fill_bits = if group == 0 {
                Some(0u32)
            } else if group == (1 << GROUP) - 1 {
                Some((1 << GROUP) - 1)
            } else {
                None
            };
            match (fill_bits, &mut pending_fill) {
                (Some(b), Some((fb, len))) if *fb == b && *len < FILL_LEN => *len += 1,
                (Some(b), pending) => {
                    if let Some((fb, len)) = pending.take() {
                        words.push(encode_fill(fb, len));
                    }
                    *pending = Some((b, 1));
                }
                (None, pending) => {
                    if let Some((fb, len)) = pending.take() {
                        words.push(encode_fill(fb, len));
                    }
                    words.push(group);
                }
            }
        }
        if let Some((fb, len)) = pending_fill {
            words.push(encode_fill(fb, len));
        }
        WahBitmap { m, words }
    }

    /// Universe size in bits.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Uncompressed (plain bitmap) size in bytes, for comparison.
    pub fn plain_bytes(&self) -> usize {
        (self.m as usize).div_ceil(8)
    }

    /// Popcount of the bitmap.
    pub fn count(&self) -> u64 {
        Groups::new(&self.words)
            .map(|g| g.count_ones() as u64)
            .sum()
    }

    /// Decode back to sorted bit positions.
    pub fn decode(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (g, bits) in Groups::new(&self.words).enumerate() {
            let base = g as u32 * GROUP;
            let mut b = bits;
            while b != 0 {
                let t = b.trailing_zeros();
                let p = base + t;
                if p < self.m {
                    out.push(p);
                }
                b &= b - 1;
            }
        }
        out
    }

    /// `|self ∩ other|` by sequential co-decoding (the WAH AND loop).
    pub fn intersect_count(&self, other: &WahBitmap) -> u64 {
        assert_eq!(self.m, other.m, "universe mismatch");
        let mut a = Groups::new(&self.words);
        let mut b = Groups::new(&other.words);
        let mut count = 0u64;
        while let (Some(x), Some(y)) = (a.next(), b.next()) {
            count += (x & y).count_ones() as u64;
        }
        count
    }
}

fn encode_fill(bits: u32, len: u32) -> u32 {
    debug_assert!((1..=FILL_LEN).contains(&len));
    FILL_FLAG | if bits != 0 { FILL_VALUE } else { 0 } | len
}

impl MemoryFootprint for WahBitmap {
    fn heap_bytes(&self) -> usize {
        self.words.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: u32, positions: &[u32]) {
        let w = WahBitmap::from_sorted(m, positions);
        assert_eq!(w.decode(), positions, "m={m}");
        assert_eq!(w.count(), positions.len() as u64);
    }

    #[test]
    fn roundtrips() {
        roundtrip(100, &[]);
        roundtrip(100, &[0]);
        roundtrip(100, &[99]);
        roundtrip(100, &(0..100).collect::<Vec<_>>());
        roundtrip(1000, &[0, 30, 31, 62, 500, 999]);
        roundtrip(10_000, &(0..10_000).step_by(37).collect::<Vec<_>>());
        // Exactly on group boundaries.
        roundtrip(62, &[30, 31, 61]);
        roundtrip(93, &(31..62).collect::<Vec<_>>());
    }

    #[test]
    fn long_runs_compress() {
        // One set bit in a huge universe: two fills + one literal.
        let w = WahBitmap::from_sorted(1_000_000, &[500_000]);
        assert!(w.words.len() <= 3, "got {} words", w.words.len());
        assert!(w.compressed_bytes() < w.plain_bytes() / 1000);
    }

    #[test]
    fn all_ones_compresses_to_one_fill() {
        let m = 31 * 1000;
        let w = WahBitmap::from_sorted(m, &(0..m).collect::<Vec<_>>());
        assert_eq!(w.words.len(), 1);
        assert_eq!(w.count(), m as u64);
    }

    #[test]
    fn dense_random_data_stays_near_plain_size() {
        // ~50% density defeats run-length coding: size ≈ plain + 1/31.
        let positions: Vec<u32> = (0..10_000u32)
            .filter(|i| (i.wrapping_mul(2654435761) >> 16) & 1 == 0)
            .collect();
        let w = WahBitmap::from_sorted(10_000, &positions);
        assert!(w.compressed_bytes() as f64 <= w.plain_bytes() as f64 * 1.1);
        assert!(w.compressed_bytes() as f64 >= w.plain_bytes() as f64 * 0.9);
    }

    #[test]
    fn intersection_matches_exact() {
        let m = 50_000;
        let a: Vec<u32> = (0..m).step_by(3).collect();
        let b: Vec<u32> = (0..m).step_by(7).collect();
        let wa = WahBitmap::from_sorted(m, &a);
        let wb = WahBitmap::from_sorted(m, &b);
        let expect = (0..m).filter(|x| x % 3 == 0 && x % 7 == 0).count() as u64;
        assert_eq!(wa.intersect_count(&wb), expect);
        assert_eq!(wb.intersect_count(&wa), expect);
    }

    #[test]
    fn sparse_clustered_intersection() {
        let m = 1 << 20;
        let a: Vec<u32> = (1000..1100).chain(900_000..900_050).collect();
        let b: Vec<u32> = (1050..1200).chain(899_990..900_010).collect();
        let wa = WahBitmap::from_sorted(m, &a);
        let wb = WahBitmap::from_sorted(m, &b);
        let sa: std::collections::HashSet<u32> = a.into_iter().collect();
        let expect = b.iter().filter(|x| sa.contains(x)).count() as u64;
        assert_eq!(wa.intersect_count(&wb), expect);
        // And the compression actually engaged.
        assert!(wa.compressed_bytes() < wa.plain_bytes() / 50);
    }

    #[test]
    fn self_intersection_is_count() {
        let m = 10_000;
        let a: Vec<u32> = (0..m).step_by(11).collect();
        let w = WahBitmap::from_sorted(m, &a);
        assert_eq!(w.intersect_count(&w), w.count());
    }
}
