//! Sorted-list intersection (the "folklore" algorithm, §I-B.1, §IV-B).
//!
//! Three variants, all counting `|A ∩ B|` over strictly-sorted `u32`
//! slices:
//!
//! * [`count_branchy`] — the textbook two-pointer merge. Runs slowly on
//!   modern CPUs because every comparison is an unpredictable branch —
//!   the §IV-B baseline.
//! * [`count_branchless`] — the same merge with arithmetic pointer
//!   advancement instead of branches (the standard mitigation; included
//!   as an ablation point).
//! * [`count_galloping`] — exponential search of the larger list, better
//!   when sizes are very skewed (adaptive intersection, \[9\]).

/// Textbook two-pointer merge count.
pub fn count_branchy(a: &[u32], b: &[u32]) -> u64 {
    let mut count = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Branch-free two-pointer merge: pointer advancement and the match
/// counter are computed arithmetically so the loop's only branch is the
/// (predictable) termination test.
pub fn count_branchless(a: &[u32], b: &[u32]) -> u64 {
    let mut count = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        count += (x == y) as u64;
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
    count
}

/// Galloping (exponential-search) intersection: probe each element of
/// the smaller list into the larger by doubling steps + binary search.
/// O(|small| · log |large|), the right shape when sizes are skewed.
pub fn count_galloping(a: &[u32], b: &[u32]) -> u64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0u64;
    let mut lo = 0usize;
    for &x in small {
        // Gallop to an upper bound.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            hi = (hi + step).min(large.len());
            step *= 2;
        }
        // Binary search in (lo, hi].
        let base = lo + large[lo..hi.min(large.len())].partition_point(|&y| y < x);
        if base < large.len() && large[base] == x {
            count += 1;
            lo = base + 1;
        } else {
            lo = base;
        }
        if lo >= large.len() {
            break;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cases() -> Vec<(Vec<u32>, Vec<u32>, u64)> {
        vec![
            (vec![], vec![], 0),
            (vec![1, 2, 3], vec![], 0),
            (vec![1, 2, 3], vec![1, 2, 3], 3),
            (vec![1, 3, 5], vec![2, 4, 6], 0),
            (vec![1, 2, 3, 100], vec![3, 100, 200], 2),
            ((0..1000).collect(), (500..1500).collect(), 500),
            (vec![7], (0..100).collect(), 1),
        ]
    }

    #[test]
    fn all_variants_agree_on_cases() {
        for (a, b, expect) in cases() {
            assert_eq!(count_branchy(&a, &b), expect, "branchy {a:?} {b:?}");
            assert_eq!(count_branchless(&a, &b), expect, "branchless {a:?} {b:?}");
            assert_eq!(count_galloping(&a, &b), expect, "galloping {a:?} {b:?}");
            // Symmetry.
            assert_eq!(count_branchy(&b, &a), expect);
            assert_eq!(count_branchless(&b, &a), expect);
            assert_eq!(count_galloping(&b, &a), expect);
        }
    }

    #[test]
    fn random_cross_check() {
        let mut state = 0xD1CEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let mut a: Vec<u32> = (0..200).map(|_| (next() % 500) as u32).collect();
            let mut b: Vec<u32> = (0..300).map(|_| (next() % 500) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let expect = count_branchy(&a, &b);
            assert_eq!(count_branchless(&a, &b), expect, "trial {trial}");
            assert_eq!(count_galloping(&a, &b), expect, "trial {trial}");
        }
    }

    #[test]
    fn galloping_skewed() {
        let small: Vec<u32> = vec![10, 100_000, 500_000];
        let large: Vec<u32> = (0..1_000_000).step_by(2).collect(); // evens
        assert_eq!(count_galloping(&small, &large), 3);
    }
}
