//! The full-bitmap vertical representation (Fang et al.'s PBI-GPU
//! baseline, §I-B.2a).
//!
//! Each item's tidlist is stored as an `m`-bit bitmap; pair support is
//! bitwise AND + popcount. Perfectly regular — but the representation
//! costs `n·m` bits regardless of density, which is the space blow-up
//! (and proportional slow-down on sparse data) the paper's batmaps fix.

use crate::pairs::PairMap;
use crate::vertical::VerticalDb;
use hpcutil::MemoryFootprint;

/// A vertical database as one bitmap per item.
#[derive(Debug, Clone)]
pub struct BitmapIndex {
    /// Transactions (bit positions) per bitmap.
    m: u32,
    /// 64-bit words per bitmap row.
    words_per_row: usize,
    /// Row-major bit matrix: row `i` = bitmap of item `i`.
    words: Vec<u64>,
}

impl BitmapIndex {
    /// Build from tidlists.
    pub fn from_vertical(v: &VerticalDb) -> Self {
        let m = v.m();
        let words_per_row = (m as usize).div_ceil(64);
        let mut words = vec![0u64; words_per_row * v.n_items() as usize];
        for item in 0..v.n_items() {
            let row =
                &mut words[item as usize * words_per_row..(item as usize + 1) * words_per_row];
            for &tid in v.tidlist(item) {
                row[(tid / 64) as usize] |= 1u64 << (tid % 64);
            }
        }
        BitmapIndex {
            m,
            words_per_row,
            words,
        }
    }

    /// Number of items.
    pub fn n_items(&self) -> u32 {
        (self.words.len() / self.words_per_row.max(1)) as u32
    }

    /// Transaction-domain size.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Words per item row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The bitmap row of one item.
    pub fn row(&self, item: u32) -> &[u64] {
        &self.words[item as usize * self.words_per_row..(item as usize + 1) * self.words_per_row]
    }

    /// Raw words (row-major) — what a GPU kernel would consume.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Support of a single item (popcount of its row).
    pub fn support(&self, item: u32) -> u64 {
        self.row(item).iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Pair support: AND + popcount across the two rows.
    pub fn pair_support(&self, i: u32, j: u32) -> u64 {
        self.row(i)
            .iter()
            .zip(self.row(j))
            .map(|(a, b)| (a & b).count_ones() as u64)
            .sum()
    }

    /// Full pair mining by bitmap AND — the PBI computation.
    pub fn mine_pairs(&self, minsup: u64) -> PairMap {
        let n = self.n_items();
        let mut out = PairMap::default();
        for i in 0..n {
            for j in (i + 1)..n {
                let s = self.pair_support(i, j);
                if s >= minsup && s > 0 {
                    out.insert((i, j), s);
                }
            }
        }
        out
    }

    /// The representation's fixed cost: `n·m` bits, independent of
    /// density — the §I-B space argument against full bitmaps.
    pub fn bits(&self) -> u64 {
        self.words.len() as u64 * 64
    }
}

impl MemoryFootprint for BitmapIndex {
    fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::brute_force_pairs;
    use crate::transactions::TransactionDb;

    fn index() -> (TransactionDb, BitmapIndex) {
        let db = TransactionDb::new(
            4,
            vec![
                vec![0, 1],
                vec![1, 2],
                vec![0, 1, 2, 3],
                vec![3],
                vec![0, 2],
            ],
        );
        let v = VerticalDb::from_horizontal(&db);
        let idx = BitmapIndex::from_vertical(&v);
        (db, idx)
    }

    #[test]
    fn supports_match() {
        let (db, idx) = index();
        let s = db.item_supports();
        for i in 0..4u32 {
            assert_eq!(idx.support(i), s[i as usize]);
        }
    }

    #[test]
    fn pair_mining_matches_brute_force() {
        let (db, idx) = index();
        for minsup in [1, 2] {
            assert_eq!(idx.mine_pairs(minsup), brute_force_pairs(&db, minsup));
        }
    }

    #[test]
    fn space_is_nm_bits_rounded_to_words() {
        let (_, idx) = index();
        // m=5 → 1 word per row, 4 items → 4 words = 256 bits ≥ n·m = 20.
        assert_eq!(idx.bits(), 256);
        assert_eq!(idx.words_per_row(), 1);
    }

    #[test]
    fn crosses_word_boundaries() {
        let tidlists = vec![vec![0, 63, 64, 127, 128], vec![63, 64, 100, 128]];
        let v = VerticalDb::new(130, tidlists);
        let idx = BitmapIndex::from_vertical(&v);
        assert_eq!(idx.words_per_row(), 3);
        assert_eq!(idx.pair_support(0, 1), 3); // {63, 64, 128}
    }

    #[test]
    fn empty_items_have_zero_rows() {
        let v = VerticalDb::new(10, vec![vec![], vec![5]]);
        let idx = BitmapIndex::from_vertical(&v);
        assert_eq!(idx.support(0), 0);
        assert_eq!(idx.pair_support(0, 1), 0);
    }
}
