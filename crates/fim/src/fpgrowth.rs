//! FP-growth (Han, Pei, Yin & Mao \[14\]; Borgelt's implementation \[7\] is
//! the paper's CPU baseline).
//!
//! The FP-tree is a prefix tree over transactions with items ordered by
//! descending support, plus per-item header chains threading all nodes
//! of an item. Mining proceeds bottom-up: each item's *conditional
//! pattern base* (the prefix paths above its nodes, weighted by node
//! count) is itself a small weighted transaction set, recursively mined.
//!
//! * [`mine_pairs`] — the pair specialization used in the paper's
//!   benchmarks: one upward walk per node accumulates the support of
//!   `{item, ancestor}` for every ancestor; no recursion needed. Memory
//!   is `O(tree)`, linear in the instance — the Fig. 5 contrast with
//!   Apriori.
//! * [`mine`] — full recursive FP-growth for general itemsets.

use crate::apriori::Itemset;
use crate::pairs::{pair_key, PairMap};
use crate::transactions::TransactionDb;
use hpcutil::MemoryFootprint;

/// Sentinel for "no node".
const NIL: u32 = u32::MAX;

/// One FP-tree node.
#[derive(Debug, Clone)]
struct FpNode {
    /// Item id (in *rank space*: 0 is the most frequent item).
    item: u32,
    /// Occurrence count of the path prefix ending here.
    count: u64,
    /// Parent node index (NIL for root).
    parent: u32,
    /// Next node of the same item (header chain).
    link: u32,
    /// Children as (rank-item, node) pairs, sorted by item for binary
    /// search; transactions insert in rank order so fan-out stays small.
    children: Vec<(u32, u32)>,
}

/// An FP-tree over a weighted transaction multiset.
#[derive(Debug, Clone)]
pub struct FpTree {
    nodes: Vec<FpNode>,
    /// Head of each rank-item's node chain.
    headers: Vec<u32>,
    /// Total support of each rank-item inside this tree.
    supports: Vec<u64>,
    /// rank → original item id.
    rank_to_item: Vec<u32>,
}

impl FpTree {
    /// Build from a horizontal database, keeping items with support
    /// `≥ minsup`.
    pub fn build(db: &TransactionDb, minsup: u64) -> Self {
        let supports = db.item_supports();
        // Rank frequent items by descending support (ascending id tie).
        let mut frequent: Vec<u32> = (0..db.n_items())
            .filter(|&i| supports[i as usize] >= minsup && supports[i as usize] > 0)
            .collect();
        frequent.sort_by_key(|&i| (std::cmp::Reverse(supports[i as usize]), i));
        let mut item_to_rank = vec![NIL; db.n_items() as usize];
        for (rank, &item) in frequent.iter().enumerate() {
            item_to_rank[item as usize] = rank as u32;
        }
        let mut tree = FpTree::empty(frequent.clone());
        let mut ranked = Vec::new();
        for t in db.transactions() {
            ranked.clear();
            ranked.extend(t.iter().filter_map(|&i| {
                let r = item_to_rank[i as usize];
                (r != NIL).then_some(r)
            }));
            ranked.sort_unstable();
            tree.insert_path(&ranked, 1);
        }
        tree
    }

    /// Build from weighted rank-space paths (used for conditional trees;
    /// `paths` items must already be sorted ascending in rank space and
    /// restricted to items that remain frequent).
    fn from_weighted_paths(
        paths: &[(Vec<u32>, u64)],
        n_ranks: usize,
        rank_to_item: Vec<u32>,
    ) -> Self {
        let mut tree = FpTree::empty(rank_to_item);
        tree.headers = vec![NIL; n_ranks];
        tree.supports = vec![0; n_ranks];
        for (path, count) in paths {
            tree.insert_path(path, *count);
        }
        tree
    }

    fn empty(rank_to_item: Vec<u32>) -> Self {
        let n = rank_to_item.len();
        FpTree {
            nodes: vec![FpNode {
                item: NIL,
                count: 0,
                parent: NIL,
                link: NIL,
                children: Vec::new(),
            }],
            headers: vec![NIL; n],
            supports: vec![0; n],
            rank_to_item,
        }
    }

    /// Insert one rank-sorted path with multiplicity `count`.
    fn insert_path(&mut self, ranked: &[u32], count: u64) {
        let mut node = 0u32;
        for &item in ranked {
            self.supports[item as usize] += count;
            let pos = self.nodes[node as usize]
                .children
                .binary_search_by_key(&item, |&(i, _)| i);
            node = match pos {
                Ok(idx) => {
                    let child = self.nodes[node as usize].children[idx].1;
                    self.nodes[child as usize].count += count;
                    child
                }
                Err(idx) => {
                    let child = self.nodes.len() as u32;
                    self.nodes.push(FpNode {
                        item,
                        count,
                        parent: node,
                        link: self.headers[item as usize],
                        children: Vec::new(),
                    });
                    self.headers[item as usize] = child;
                    self.nodes[node as usize]
                        .children
                        .insert(idx, (item, child));
                    child
                }
            };
        }
    }

    /// Number of nodes (incl. root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct frequent items in the tree.
    pub fn n_ranks(&self) -> usize {
        self.headers.len()
    }
}

impl MemoryFootprint for FpTree {
    fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<FpNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<(u32, u32)>())
                .sum::<usize>()
            + self.headers.capacity() * 4
            + self.supports.capacity() * 8
            + self.rank_to_item.capacity() * 4
    }
}

/// Frequent-pair mining on the FP-tree: for every node of every item,
/// one upward walk accumulating the node count into each
/// `{item, ancestor}` pair.
pub fn mine_pairs(db: &TransactionDb, minsup: u64) -> PairMap {
    let tree = FpTree::build(db, minsup);
    let mut out = PairMap::default();
    // Accumulate per lower-ranked item into a dense row, then emit: the
    // row is over higher-ranked ancestors only (< rank), so size rank.
    let mut row = vec![0u64; tree.n_ranks()];
    for rank in 0..tree.n_ranks() {
        let mut touched: Vec<u32> = Vec::new();
        let mut node = tree.headers[rank];
        while node != NIL {
            let count = tree.nodes[node as usize].count;
            let mut up = tree.nodes[node as usize].parent;
            while up != 0 && up != NIL {
                let anc = tree.nodes[up as usize].item;
                if row[anc as usize] == 0 {
                    touched.push(anc);
                }
                row[anc as usize] += count;
                up = tree.nodes[up as usize].parent;
            }
            node = tree.nodes[node as usize].link;
        }
        let item_j = tree.rank_to_item[rank];
        for &anc in &touched {
            let support = row[anc as usize];
            row[anc as usize] = 0;
            if support >= minsup {
                out.insert(pair_key(item_j, tree.rank_to_item[anc as usize]), support);
            }
        }
    }
    out
}

/// Full recursive FP-growth: all frequent itemsets of size
/// `2..=max_len`, in original item ids.
pub fn mine(db: &TransactionDb, minsup: u64, max_len: usize) -> Vec<Itemset> {
    let tree = FpTree::build(db, minsup);
    let mut out = Vec::new();
    if max_len >= 2 {
        let mut suffix = Vec::new();
        mine_rec(&tree, minsup, max_len, &mut suffix, &mut out);
    }
    for set in &mut out {
        set.items.sort_unstable();
    }
    out.sort_unstable_by(|a, b| a.items.cmp(&b.items));
    out
}

fn mine_rec(
    tree: &FpTree,
    minsup: u64,
    max_len: usize,
    suffix: &mut Vec<u32>,
    out: &mut Vec<Itemset>,
) {
    for rank in (0..tree.n_ranks()).rev() {
        let support = tree.supports[rank];
        if support < minsup {
            continue;
        }
        let item = tree.rank_to_item[rank];
        suffix.push(item);
        if suffix.len() >= 2 {
            out.push(Itemset {
                items: suffix.clone(),
                support,
            });
        }
        if suffix.len() < max_len {
            // Conditional pattern base of `rank`: prefix paths above its
            // nodes, weighted by node count, restricted to items still
            // frequent within the base.
            let mut cond_support = vec![0u64; rank];
            let mut paths: Vec<(Vec<u32>, u64)> = Vec::new();
            let mut node = tree.headers[rank];
            while node != NIL {
                let count = tree.nodes[node as usize].count;
                let mut path = Vec::new();
                let mut up = tree.nodes[node as usize].parent;
                while up != 0 && up != NIL {
                    let anc = tree.nodes[up as usize].item;
                    path.push(anc);
                    cond_support[anc as usize] += count;
                    up = tree.nodes[up as usize].parent;
                }
                if !path.is_empty() {
                    path.reverse(); // ascending rank order
                    paths.push((path, count));
                }
                node = tree.nodes[node as usize].link;
            }
            // Re-rank the conditional items (keep original rank ids —
            // they are already consistent — but drop infrequent ones).
            let keep: Vec<bool> = cond_support.iter().map(|&s| s >= minsup).collect();
            if keep.iter().any(|&k| k) {
                for (path, _) in &mut paths {
                    path.retain(|&r| keep[r as usize]);
                }
                paths.retain(|(p, _)| !p.is_empty());
                let cond = FpTree::from_weighted_paths(&paths, rank, tree.rank_to_item.clone());
                mine_rec(&cond, minsup, max_len, suffix, out);
            }
        }
        suffix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori;
    use crate::pairs::brute_force_pairs;

    fn db() -> TransactionDb {
        TransactionDb::new(
            6,
            vec![
                vec![0, 1, 2],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 3],
                vec![0, 2],
                vec![2, 3, 4],
                vec![0, 1, 2, 4],
            ],
        )
    }

    #[test]
    fn tree_structure_shares_prefixes() {
        let d = TransactionDb::new(3, vec![vec![0, 1], vec![0, 1], vec![0, 2]]);
        let tree = FpTree::build(&d, 1);
        // Root + item0 node + item1 node + item2 node = 4: item 0 is
        // shared across all three transactions.
        assert_eq!(tree.node_count(), 4);
    }

    #[test]
    fn pairs_match_brute_force() {
        let d = db();
        for minsup in [1, 2, 3, 4] {
            assert_eq!(
                mine_pairs(&d, minsup),
                brute_force_pairs(&d, minsup),
                "minsup={minsup}"
            );
        }
    }

    #[test]
    fn pairs_match_apriori() {
        let d = db();
        assert_eq!(mine_pairs(&d, 2), apriori::mine_pairs(&d, 2));
    }

    #[test]
    fn general_mining_matches_apriori() {
        let d = db();
        for minsup in [2, 3] {
            let mut fp = mine(&d, minsup, 4);
            let mut ap = apriori::mine(&d, minsup, 4);
            fp.sort_by(|a, b| a.items.cmp(&b.items));
            ap.sort_by(|a, b| a.items.cmp(&b.items));
            assert_eq!(fp, ap, "minsup={minsup}");
        }
    }

    #[test]
    fn minsup_prunes_tree_items() {
        let d = db();
        let tree = FpTree::build(&d, 4);
        // supports: item0=4, item1=5, item2=6, item3=4, item4=2.
        assert_eq!(tree.n_ranks(), 4);
    }

    #[test]
    fn empty_db() {
        let d = TransactionDb::new(4, vec![]);
        assert!(mine_pairs(&d, 1).is_empty());
        assert!(mine(&d, 1, 3).is_empty());
    }

    #[test]
    fn footprint_grows_with_distinct_paths() {
        let shared = TransactionDb::new(6, vec![vec![0, 1, 2]; 16]);
        let distinct = TransactionDb::new(
            6,
            (0..16)
                .map(|i| vec![i % 6, (i + 1) % 6, (i + 2) % 6])
                .collect(),
        );
        let t_shared = FpTree::build(&shared, 1);
        let t_distinct = FpTree::build(&distinct, 1);
        assert!(t_distinct.node_count() > t_shared.node_count());
        assert!(t_distinct.heap_bytes() > 0);
    }
}
