//! The horizontal transaction database.
//!
//! Transactions are the paper's `T₁..Tₘ ⊆ {1..n}`; we use 0-based item
//! ids. Items within a transaction are stored sorted and duplicate-free.
//! All miners preprocess by removing items below the support threshold
//! ("all existing frequent itemset methods do this"), which
//! [`TransactionDb::prune_infrequent`] implements with id remapping.

use hpcutil::MemoryFootprint;
use serde::{Deserialize, Serialize};

/// A horizontal-format transaction database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransactionDb {
    /// Number of distinct item ids (items are `0..n_items`; some may
    /// have zero support).
    n_items: u32,
    /// The transactions; each sorted and deduplicated.
    transactions: Vec<Vec<u32>>,
}

impl TransactionDb {
    /// Create a database over `n_items` items. Each transaction is
    /// sorted and deduplicated; items must be `< n_items`.
    pub fn new(n_items: u32, mut transactions: Vec<Vec<u32>>) -> Self {
        for t in &mut transactions {
            t.sort_unstable();
            t.dedup();
            if let Some(&max) = t.last() {
                assert!(max < n_items, "item {max} out of range 0..{n_items}");
            }
        }
        TransactionDb {
            n_items,
            transactions,
        }
    }

    /// Number of distinct item ids.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Number of transactions `m`.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True when there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The transactions.
    pub fn transactions(&self) -> &[Vec<u32>] {
        &self.transactions
    }

    /// Total number of item occurrences (the paper's "instance size").
    pub fn total_items(&self) -> usize {
        self.transactions.iter().map(Vec::len).sum()
    }

    /// Instance density: occurrences / (n·m).
    pub fn density(&self) -> f64 {
        if self.n_items == 0 || self.transactions.is_empty() {
            return 0.0;
        }
        self.total_items() as f64 / (self.n_items as f64 * self.len() as f64)
    }

    /// Per-item support counts.
    pub fn item_supports(&self) -> Vec<u64> {
        let mut s = vec![0u64; self.n_items as usize];
        for t in &self.transactions {
            for &i in t {
                s[i as usize] += 1;
            }
        }
        s
    }

    /// Remove items with support `< minsup` and remap the survivors to
    /// dense ids `0..k` (ascending original id). Returns the pruned
    /// database and the mapping `new id → original id`.
    ///
    /// Transactions that become empty are dropped — they cannot
    /// contribute to any itemset, and dropping them matches the tidlist
    /// view downstream.
    pub fn prune_infrequent(&self, minsup: u64) -> (TransactionDb, Vec<u32>) {
        let supports = self.item_supports();
        let mut remap = vec![u32::MAX; self.n_items as usize];
        let mut kept = Vec::new();
        for (item, &s) in supports.iter().enumerate() {
            if s >= minsup {
                remap[item] = kept.len() as u32;
                kept.push(item as u32);
            }
        }
        let transactions: Vec<Vec<u32>> = self
            .transactions
            .iter()
            .filter_map(|t| {
                let mapped: Vec<u32> = t
                    .iter()
                    .filter_map(|&i| {
                        let r = remap[i as usize];
                        (r != u32::MAX).then_some(r)
                    })
                    .collect();
                (!mapped.is_empty()).then_some(mapped)
            })
            .collect();
        (
            TransactionDb {
                n_items: kept.len() as u32,
                transactions,
            },
            kept,
        )
    }
}

impl MemoryFootprint for TransactionDb {
    fn heap_bytes(&self) -> usize {
        self.transactions.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        TransactionDb::new(
            5,
            vec![
                vec![0, 1, 2],
                vec![1, 2],
                vec![0, 2, 4],
                vec![2],
                vec![1, 4],
            ],
        )
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let d = TransactionDb::new(10, vec![vec![3, 1, 3, 2]]);
        assert_eq!(d.transactions()[0], vec![1, 2, 3]);
    }

    #[test]
    fn supports() {
        let d = db();
        assert_eq!(d.item_supports(), vec![2, 3, 4, 0, 2]);
        assert_eq!(d.total_items(), 11);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn density() {
        let d = db();
        assert!((d.density() - 11.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn prune_remaps_and_drops_empty() {
        let d = db();
        let (pruned, map) = d.prune_infrequent(3);
        // Items 1 (sup 3) and 2 (sup 4) survive, remapped to 0 and 1.
        assert_eq!(map, vec![1, 2]);
        assert_eq!(pruned.n_items(), 2);
        // Transaction [1,4] loses item 4 → [1] → new id [0].
        // Transaction [0,2,4] → [2] → [1].
        assert_eq!(
            pruned.transactions(),
            &[vec![0, 1], vec![0, 1], vec![1], vec![1], vec![0]]
        );
    }

    #[test]
    fn prune_with_zero_threshold_is_compaction_only() {
        let d = db();
        let (pruned, map) = d.prune_infrequent(1);
        // Item 3 has zero support and is dropped even at minsup 1.
        assert_eq!(map, vec![0, 1, 2, 4]);
        assert_eq!(pruned.len(), d.len());
    }

    #[test]
    #[should_panic]
    fn out_of_range_item_rejected() {
        let _ = TransactionDb::new(3, vec![vec![3]]);
    }
}
