//! Pair-support result types and reference counting.
//!
//! All pair miners in the workspace produce a [`PairMap`]: supports of
//! item pairs `(i, j)` with `i < j`. The brute-force counter here is the
//! oracle every implementation is tested against.

use crate::transactions::TransactionDb;
use hpcutil::FxHashMap;

/// Supports of item pairs, keyed `(i, j)` with `i < j`.
pub type PairMap = FxHashMap<(u32, u32), u64>;

/// Canonicalize a pair key.
#[inline]
pub fn pair_key(a: u32, b: u32) -> (u32, u32) {
    debug_assert_ne!(a, b);
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Index of pair `(i, j)`, `i < j < n`, in a packed upper-triangular
/// array (row-major over `i`).
#[inline]
pub fn tri_index(i: u32, j: u32, n: u32) -> usize {
    debug_assert!(i < j && j < n);
    let (i, j, n) = (i as usize, j as usize, n as usize);
    // Offset of row i = Σ_{k<i} (n-1-k) = i·(2n−i−1)/2; then the column
    // offset within the row is j−i−1.
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// Number of pairs over `n` items (`n·(n−1)/2`).
#[inline]
pub fn tri_len(n: u32) -> usize {
    let n = n as usize;
    n * (n - 1) / 2
}

/// Brute-force pair counting straight off the horizontal database:
/// O(Σ|T|²), hash-map accumulation. The test oracle.
pub fn brute_force_pairs(db: &TransactionDb, minsup: u64) -> PairMap {
    let mut counts: PairMap = PairMap::default();
    for t in db.transactions() {
        for (a, &i) in t.iter().enumerate() {
            for &j in &t[a + 1..] {
                *counts.entry(pair_key(i, j)).or_insert(0) += 1;
            }
        }
    }
    counts.retain(|_, &mut c| c >= minsup);
    counts
}

/// Filter a pair map by support threshold (consumes and returns).
pub fn filter_minsup(mut pairs: PairMap, minsup: u64) -> PairMap {
    pairs.retain(|_, &mut c| c >= minsup);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tri_index_is_a_bijection() {
        let n = 20u32;
        let mut seen = vec![false; tri_len(n)];
        for i in 0..n {
            for j in (i + 1)..n {
                let idx = tri_index(i, j, n);
                assert!(!seen[idx], "collision at ({i},{j})");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn tri_index_row_major_order() {
        let n = 5;
        assert_eq!(tri_index(0, 1, n), 0);
        assert_eq!(tri_index(0, 4, n), 3);
        assert_eq!(tri_index(1, 2, n), 4);
        assert_eq!(tri_index(3, 4, n), 9);
        assert_eq!(tri_len(n), 10);
    }

    #[test]
    fn brute_force_counts_simple_db() {
        let db = TransactionDb::new(3, vec![vec![0, 1, 2], vec![0, 1], vec![1, 2]]);
        let pairs = brute_force_pairs(&db, 1);
        assert_eq!(pairs[&(0, 1)], 2);
        assert_eq!(pairs[&(0, 2)], 1);
        assert_eq!(pairs[&(1, 2)], 2);
        let frequent = brute_force_pairs(&db, 2);
        assert_eq!(frequent.len(), 2);
        assert!(!frequent.contains_key(&(0, 2)));
    }

    #[test]
    fn pair_key_orders() {
        assert_eq!(pair_key(5, 2), (2, 5));
        assert_eq!(pair_key(2, 5), (2, 5));
    }

    #[test]
    fn filter_retains_at_threshold() {
        let mut m = PairMap::default();
        m.insert((0, 1), 3);
        m.insert((0, 2), 2);
        let f = filter_minsup(m, 3);
        assert_eq!(f.len(), 1);
        assert!(f.contains_key(&(0, 1)));
    }
}
