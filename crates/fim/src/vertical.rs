//! The vertical (tidlist) format.
//!
//! For each item `i`, the sorted list of transaction ids containing it —
//! the paper's `Sᵢ`. The support of `{i,j}` is `|Sᵢ ∩ Sⱼ|`; batmaps,
//! Eclat and the merge baselines all start from this view.

use crate::transactions::TransactionDb;
use hpcutil::MemoryFootprint;

/// A vertical-format database: one sorted tidlist per item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerticalDb {
    /// Number of transactions (tid domain size `m`).
    m: u32,
    /// Sorted tidlists, indexed by item.
    tidlists: Vec<Vec<u32>>,
}

impl VerticalDb {
    /// Convert a horizontal database.
    pub fn from_horizontal(db: &TransactionDb) -> Self {
        let mut tidlists = vec![Vec::new(); db.n_items() as usize];
        for (tid, t) in db.transactions().iter().enumerate() {
            for &item in t {
                tidlists[item as usize].push(tid as u32);
            }
        }
        // tids were visited in ascending order, so lists are sorted.
        VerticalDb {
            m: db.len() as u32,
            tidlists,
        }
    }

    /// Assemble directly from tidlists (each must be sorted, dedup'd,
    /// with tids `< m`).
    pub fn new(m: u32, tidlists: Vec<Vec<u32>>) -> Self {
        for (item, l) in tidlists.iter().enumerate() {
            debug_assert!(
                l.windows(2).all(|w| w[0] < w[1]),
                "tidlist of item {item} not strictly sorted"
            );
            if let Some(&last) = l.last() {
                assert!(last < m, "tid {last} out of range 0..{m}");
            }
        }
        VerticalDb { m, tidlists }
    }

    /// Transaction-domain size `m`.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Number of items.
    pub fn n_items(&self) -> u32 {
        self.tidlists.len() as u32
    }

    /// The tidlist of `item`.
    pub fn tidlist(&self, item: u32) -> &[u32] {
        &self.tidlists[item as usize]
    }

    /// All tidlists.
    pub fn tidlists(&self) -> &[Vec<u32>] {
        &self.tidlists
    }

    /// Item support (tidlist length).
    pub fn support(&self, item: u32) -> u64 {
        self.tidlists[item as usize].len() as u64
    }

    /// Total occurrences (instance size).
    pub fn total_items(&self) -> usize {
        self.tidlists.iter().map(Vec::len).sum()
    }
}

impl MemoryFootprint for VerticalDb {
    fn heap_bytes(&self) -> usize {
        self.tidlists.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_from_horizontal() {
        let db = TransactionDb::new(3, vec![vec![0, 1], vec![1, 2], vec![0, 1, 2]]);
        let v = VerticalDb::from_horizontal(&db);
        assert_eq!(v.m(), 3);
        assert_eq!(v.tidlist(0), &[0, 2]);
        assert_eq!(v.tidlist(1), &[0, 1, 2]);
        assert_eq!(v.tidlist(2), &[1, 2]);
        assert_eq!(v.total_items(), db.total_items());
    }

    #[test]
    fn supports_match_horizontal() {
        let db = TransactionDb::new(4, vec![vec![0, 3], vec![3], vec![0]]);
        let v = VerticalDb::from_horizontal(&db);
        let h = db.item_supports();
        for i in 0..4u32 {
            assert_eq!(v.support(i), h[i as usize]);
        }
    }

    #[test]
    fn empty_item_has_empty_tidlist() {
        let db = TransactionDb::new(2, vec![vec![0]]);
        let v = VerticalDb::from_horizontal(&db);
        assert!(v.tidlist(1).is_empty());
    }

    #[test]
    #[should_panic]
    fn tid_out_of_range_rejected() {
        let _ = VerticalDb::new(2, vec![vec![2]]);
    }
}
