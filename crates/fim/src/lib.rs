//! # fim — frequent-itemset-mining substrate and baselines
//!
//! Everything the paper's evaluation compares the GPU batmap pipeline
//! against, implemented from scratch:
//!
//! * [`transactions`] / [`vertical`] — the horizontal and vertical
//!   (tidlist) database formats.
//! * [`apriori`] — Apriori with the triangular pair-count array (the
//!   quadratic-memory baseline of Figs. 5–10) plus the general levelwise
//!   miner.
//! * [`fpgrowth`] — FP-tree construction and FP-growth mining (the
//!   strong CPU baseline).
//! * [`eclat`] — vertical DFS mining (run by the paper, dropped from its
//!   plots for slowness).
//! * [`bitmap`] — the full-bitmap PBI representation of Fang et al.,
//!   the prior GPU approach.
//! * [`merge`] — sorted-list intersection variants (§IV-B comparison).
//! * [`wah`] — WAH compressed bitmaps (the sequential-decode prior art
//!   of §I-B.1).
//! * [`pairs`] — pair-support result types and the brute-force oracle.
//! * [`split`] — instance splitting for the Fig. 9 core-scaling setup.
//!
//! All pair miners return the same [`pairs::PairMap`] and are
//! cross-checked against each other and against brute force in the test
//! suites.

#![warn(missing_docs)]

pub mod apriori;
pub mod bitmap;
pub mod eclat;
pub mod fpgrowth;
pub mod merge;
pub mod pairs;
pub mod split;
pub mod transactions;
pub mod vertical;
pub mod wah;

pub use bitmap::BitmapIndex;
pub use pairs::PairMap;
pub use transactions::TransactionDb;
pub use vertical::VerticalDb;
pub use wah::WahBitmap;
