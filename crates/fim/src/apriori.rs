//! Apriori (Agrawal & Srikant \[1\]; Borgelt's engineering \[5\], \[6\]).
//!
//! Two entry points:
//!
//! * [`mine_pairs`] — the pair specialization the paper benchmarks
//!   against: after the L1 prune, candidate pairs are *all* pairs of
//!   frequent items, counted in a packed triangular `u32` array. This is
//!   the structure whose `Θ(n²)` memory produces the Fig. 5 blow-up and
//!   the "memory trashing" failures beyond n = 64,000.
//! * [`mine`] — the general levelwise miner (candidate generation by
//!   prefix join + subset pruning, hash-map counting), used by the
//!   larger-itemset extension experiments.
//!
//! [`pair_bytes_required`] predicts the triangular array's size so the
//! Fig. 5 harness can account memory without allocating 8 GiB, and
//! [`mine_pairs_capped`] refuses (like the paper's 6 GB machine) when
//! the prediction exceeds a budget.

use crate::pairs::{tri_index, tri_len, PairMap};
use crate::transactions::TransactionDb;
use hpcutil::{FxHashMap, MemoryFootprint};

/// Bytes of counter memory the pair miner needs for `n` frequent items.
pub fn pair_bytes_required(n: u32) -> usize {
    tri_len(n) * std::mem::size_of::<u32>()
}

/// Error returned when the pair-count array would not fit the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes the miner asked for.
    pub required: usize,
    /// The budget it was given.
    pub budget: usize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "apriori pair array needs {} bytes, budget is {}",
            self.required, self.budget
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Frequent-pair mining with the triangular counting array.
///
/// `db` is assumed already L1-pruned (every item frequent) — the paper's
/// evaluation setting ("the interesting comparison is for the case where
/// there are only frequent items"). Pass the raw database through
/// [`TransactionDb::prune_infrequent`] first otherwise.
pub fn mine_pairs(db: &TransactionDb, minsup: u64) -> PairMap {
    mine_pairs_capped(db, minsup, usize::MAX).expect("uncapped")
}

/// [`mine_pairs`] with a memory budget for the counting array.
pub fn mine_pairs_capped(
    db: &TransactionDb,
    minsup: u64,
    budget_bytes: usize,
) -> Result<PairMap, OutOfMemory> {
    let n = db.n_items();
    let required = pair_bytes_required(n);
    if required > budget_bytes {
        return Err(OutOfMemory {
            required,
            budget: budget_bytes,
        });
    }
    let mut counts = vec![0u32; tri_len(n)];
    for t in db.transactions() {
        for (a, &i) in t.iter().enumerate() {
            // Row base for item i, hoisted out of the inner loop.
            for &j in &t[a + 1..] {
                counts[tri_index(i, j, n)] += 1;
            }
        }
    }
    let mut out = PairMap::default();
    for i in 0..n {
        for j in (i + 1)..n {
            let c = counts[tri_index(i, j, n)] as u64;
            if c >= minsup && c > 0 {
                out.insert((i, j), c);
            }
        }
    }
    Ok(out)
}

/// A frequent itemset with its support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Itemset {
    /// Sorted item ids.
    pub items: Vec<u32>,
    /// Number of transactions containing all of them.
    pub support: u64,
}

/// General levelwise Apriori: returns all frequent itemsets of size
/// `2..=max_len` (size-1 sets are the item supports; callers have them).
pub fn mine(db: &TransactionDb, minsup: u64, max_len: usize) -> Vec<Itemset> {
    let mut results = Vec::new();
    if max_len < 2 {
        return results;
    }
    // L2 via the triangular counter.
    let l2 = mine_pairs(db, minsup);
    let mut current: Vec<Vec<u32>> = l2.keys().map(|&(i, j)| vec![i, j]).collect();
    current.sort_unstable();
    for (&(i, j), &s) in &l2 {
        results.push(Itemset {
            items: vec![i, j],
            support: s,
        });
    }
    let mut k = 2usize;
    while !current.is_empty() && k < max_len {
        let candidates = generate_candidates(&current);
        if candidates.is_empty() {
            break;
        }
        let counts = count_candidates(db, &candidates);
        let mut next = Vec::new();
        for (cand, count) in candidates.into_iter().zip(counts) {
            if count >= minsup {
                results.push(Itemset {
                    items: cand.clone(),
                    support: count,
                });
                next.push(cand);
            }
        }
        next.sort_unstable();
        current = next;
        k += 1;
    }
    results.sort_unstable_by(|a, b| a.items.cmp(&b.items));
    results
}

/// Candidate generation — the Apriori join: combine `L_k` itemsets
/// sharing a (k−1)-prefix, then prune candidates with an infrequent
/// k-subset. `lk` must be sorted (lexicographically, items ascending
/// within each set); the output is sorted the same way, and candidates
/// sharing a (k−1)-prefix are consecutive — the grouping the levelwise
/// batmap miner's batched counting relies on.
///
/// Public so engines counting supports differently (e.g.
/// `pairminer`'s multiway-batmap levelwise miner) reuse exactly this
/// join and stay cross-checkable against [`mine`].
pub fn generate_candidates(lk: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for (a, x) in lk.iter().enumerate() {
        for y in &lk[a + 1..] {
            let k = x.len();
            if x[..k - 1] != y[..k - 1] {
                break; // sorted order: the shared-prefix run has ended
            }
            let mut cand = x.clone();
            cand.push(y[k - 1]);
            // Subset pruning: every k-subset must be in L_k.
            let all_frequent = (0..cand.len() - 2).all(|drop| {
                let mut sub: Vec<u32> = cand.clone();
                sub.remove(drop);
                lk.binary_search(&sub).is_ok()
            });
            if all_frequent {
                out.push(cand);
            }
        }
    }
    out
}

/// Count candidate supports with one pass over the database, indexing
/// candidates by their first item to avoid the full subset test per
/// transaction. Public as the exact horizontal-scan oracle the
/// positional-count engines are property-tested against.
pub fn count_candidates(db: &TransactionDb, candidates: &[Vec<u32>]) -> Vec<u64> {
    let mut by_first: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
    for (idx, c) in candidates.iter().enumerate() {
        by_first.entry(c[0]).or_default().push(idx);
    }
    let mut counts = vec![0u64; candidates.len()];
    for t in db.transactions() {
        for &first in t {
            if let Some(idxs) = by_first.get(&first) {
                for &ci in idxs {
                    if is_subset(&candidates[ci], t) {
                        counts[ci] += 1;
                    }
                }
            }
        }
    }
    counts
}

/// `needle ⊆ haystack`, both sorted.
fn is_subset(needle: &[u32], haystack: &[u32]) -> bool {
    let mut it = haystack.iter();
    'outer: for &x in needle {
        for &y in it.by_ref() {
            match y.cmp(&x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Live memory accounting wrapper for the Fig. 5 harness: the peak heap
/// of the pair miner (counter array dominates).
pub fn pair_peak_bytes(db: &TransactionDb) -> usize {
    pair_bytes_required(db.n_items()) + db.heap_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::brute_force_pairs;

    fn db() -> TransactionDb {
        TransactionDb::new(
            4,
            vec![
                vec![0, 1, 2],
                vec![0, 1, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 3],
            ],
        )
    }

    #[test]
    fn pairs_match_brute_force() {
        let d = db();
        for minsup in [1, 2, 3] {
            assert_eq!(mine_pairs(&d, minsup), brute_force_pairs(&d, minsup));
        }
    }

    #[test]
    fn capped_refuses_large_n() {
        let d = TransactionDb::new(100_000, vec![vec![0, 1]]);
        let err = mine_pairs_capped(&d, 1, 1 << 20).unwrap_err();
        assert!(err.required > err.budget);
        // The paper's setting: 64k items ≈ 8 GiB of u32 counters,
        // exceeding the 6 GB machine.
        assert!(pair_bytes_required(64_000) > 6_000_000_000);
        assert!(pair_bytes_required(32_000) < 6_000_000_000);
    }

    #[test]
    fn general_miner_finds_triples() {
        let d = db();
        let sets = mine(&d, 2, 3);
        let triple = sets
            .iter()
            .find(|s| s.items == vec![0, 1, 3])
            .expect("triple {0,1,3} should be frequent");
        assert_eq!(triple.support, 2);
        // All pairs from the L2 level are included.
        assert!(sets.iter().any(|s| s.items == vec![0, 1] && s.support == 3));
    }

    #[test]
    fn general_miner_agrees_with_pairs_at_level_2() {
        let d = db();
        let sets = mine(&d, 2, 2);
        let pairs = mine_pairs(&d, 2);
        assert_eq!(sets.len(), pairs.len());
        for s in sets {
            assert_eq!(pairs[&(s.items[0], s.items[1])], s.support);
        }
    }

    #[test]
    fn is_subset_cases() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[0], &[]));
    }

    #[test]
    fn empty_db_yields_nothing() {
        let d = TransactionDb::new(3, vec![]);
        assert!(mine_pairs(&d, 1).is_empty());
        assert!(mine(&d, 1, 4).is_empty());
    }
}
