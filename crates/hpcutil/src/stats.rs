//! Summary statistics and throughput-unit helpers for the experiment
//! harness.

use serde::Serialize;

/// Summary statistics of a sample of f64 observations.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (linear interpolation).
    pub median: f64,
}

impl Summary {
    /// Compute summary statistics over `samples`.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "Summary::of on empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let median = percentile_sorted(&sorted, 50.0);
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median,
        }
    }

    /// Relative standard deviation (stddev / mean), 0 when mean is 0.
    pub fn rsd(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Percentile (0..=100) with linear interpolation over a pre-sorted slice.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&pct));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Format a bytes-per-second rate as e.g. `"36.2 GB/s"` (decimal units —
/// the paper reports decimal gigabytes).
pub fn human_rate(bytes_per_sec: f64) -> String {
    const UNITS: [&str; 5] = ["B/s", "KB/s", "MB/s", "GB/s", "TB/s"];
    let mut v = bytes_per_sec;
    let mut u = 0;
    while v >= 1000.0 && u + 1 < UNITS.len() {
        v /= 1000.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

/// Format an operations-per-second rate as e.g. `"3.68e9 elem/s"`.
pub fn human_ops(ops_per_sec: f64, unit: &str) -> String {
    format!("{ops_per_sec:.3e} {unit}/s")
}

/// Geometric mean of positive samples.
pub fn geomean(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty());
    let log_sum: f64 = samples
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive samples");
            x.ln()
        })
        .sum();
    (log_sum / samples.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant() {
        let s = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.rsd(), 0.0);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert!((s.stddev - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn summary_empty_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 10.0);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(human_rate(36.2e9), "36.20 GB/s");
        assert_eq!(human_rate(500.0), "500.00 B/s");
    }

    #[test]
    fn geomean_of_powers() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }
}
