//! Heap-footprint accounting.
//!
//! Figure 5 of the paper compares the *memory usage* of the GPU batmap
//! pipeline, Apriori and FP-growth. Rather than sampling RSS (noisy,
//! allocator-dependent), every data structure in this workspace reports
//! its own deep heap footprint through [`MemoryFootprint`]; the figure
//! binary sums the footprints of the live structures at each phase.

/// Types that can report their deep heap usage in bytes.
///
/// Implementations count the bytes *owned* by the value: inline size is
/// excluded (it is the container's business), heap blocks reachable from
/// the value are included. Collections therefore report
/// `capacity * element_size + Σ element.heap_bytes()`.
pub trait MemoryFootprint {
    /// Bytes of heap memory owned by `self`.
    fn heap_bytes(&self) -> usize;

    /// Total footprint: heap bytes plus the inline size of the value.
    fn total_bytes(&self) -> usize
    where
        Self: Sized,
    {
        self.heap_bytes() + std::mem::size_of::<Self>()
    }
}

macro_rules! impl_pod_footprint {
    ($($t:ty),* $(,)?) => {
        $(impl MemoryFootprint for $t {
            #[inline]
            fn heap_bytes(&self) -> usize { 0 }
        })*
    };
}

impl_pod_footprint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl<T: MemoryFootprint> MemoryFootprint for Vec<T> {
    fn heap_bytes(&self) -> usize {
        let inline = self.capacity() * std::mem::size_of::<T>();
        // For POD element types the per-element call folds to zero and
        // the optimizer removes the loop entirely.
        inline + self.iter().map(MemoryFootprint::heap_bytes).sum::<usize>()
    }
}

impl<T: MemoryFootprint> MemoryFootprint for Box<[T]> {
    fn heap_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>()
            + self.iter().map(MemoryFootprint::heap_bytes).sum::<usize>()
    }
}

impl<T: MemoryFootprint> MemoryFootprint for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, MemoryFootprint::heap_bytes)
    }
}

impl<A: MemoryFootprint, B: MemoryFootprint> MemoryFootprint for (A, B) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<K: MemoryFootprint, V: MemoryFootprint, S> MemoryFootprint
    for std::collections::HashMap<K, V, S>
{
    fn heap_bytes(&self) -> usize {
        // A hashbrown table stores (K, V) pairs plus one control byte per
        // bucket; capacity() understates bucket count, but this is the
        // accepted approximation for accounting purposes.
        let bucket = std::mem::size_of::<(K, V)>() + 1;
        self.capacity() * bucket
            + self
                .iter()
                .map(|(k, v)| k.heap_bytes() + v.heap_bytes())
                .sum::<usize>()
    }
}

impl<T: MemoryFootprint, S> MemoryFootprint for std::collections::HashSet<T, S> {
    fn heap_bytes(&self) -> usize {
        let bucket = std::mem::size_of::<T>() + 1;
        self.capacity() * bucket + self.iter().map(MemoryFootprint::heap_bytes).sum::<usize>()
    }
}

/// Pretty-print a byte count with binary units.
///
/// ```
/// assert_eq!(hpcutil::mem::human_bytes(0), "0 B");
/// assert_eq!(hpcutil::mem::human_bytes(1536), "1.50 KiB");
/// assert_eq!(hpcutil::mem::human_bytes(3 * 1024 * 1024), "3.00 MiB");
/// ```
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    if bytes < 1024 {
        return format!("{bytes} B");
    }
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_has_no_heap() {
        assert_eq!(42u32.heap_bytes(), 0);
        assert_eq!(42u32.total_bytes(), 4);
    }

    #[test]
    fn vec_counts_capacity_not_len() {
        let mut v: Vec<u32> = Vec::with_capacity(100);
        v.push(1);
        assert_eq!(v.heap_bytes(), 400);
    }

    #[test]
    fn nested_vec_counts_deep() {
        let v: Vec<Vec<u8>> = vec![Vec::with_capacity(10), Vec::with_capacity(20)];
        let expected = v.capacity() * std::mem::size_of::<Vec<u8>>() + 10 + 20;
        assert_eq!(v.heap_bytes(), expected);
    }

    #[test]
    fn boxed_slice_counts_len() {
        let b: Box<[u64]> = vec![0u64; 8].into_boxed_slice();
        assert_eq!(b.heap_bytes(), 64);
    }

    #[test]
    fn option_none_is_zero() {
        let none: Option<Vec<u8>> = None;
        assert_eq!(none.heap_bytes(), 0);
        let some = Some(Vec::<u8>::with_capacity(5));
        assert_eq!(some.heap_bytes(), 5);
    }

    #[test]
    fn human_bytes_rounds() {
        assert_eq!(human_bytes(1023), "1023 B");
        assert_eq!(human_bytes(1024), "1.00 KiB");
        assert_eq!(human_bytes(5 * 1024 * 1024 * 1024), "5.00 GiB");
    }
}
