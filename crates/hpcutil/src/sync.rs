//! Poison-recovering lock helpers.
//!
//! A `Mutex` is poisoned when a holder panics. For the data guarded in
//! this workspace — job queues, connection tables, partial top-k
//! accumulators — the guarded state is either valid-by-construction
//! after every push/pop or re-validated by the consumer, so the right
//! response to poisoning is to take the lock anyway and keep serving,
//! not to cascade the panic into every other thread that touches the
//! lock. These helpers centralize that policy (and pair with the
//! `catch_unwind` containment in the server's shard workers).

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock `mutex`, recovering the guard if a previous holder panicked.
#[inline]
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Block on `condvar` with `guard`, recovering the guard if the mutex
/// was poisoned while waiting.
#[inline]
pub fn wait_recover<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Read-lock `rwlock`, recovering the guard if a previous writer
/// panicked.
#[inline]
pub fn read_recover<T>(rwlock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rwlock
        .read()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Write-lock `rwlock`, recovering the guard if a previous writer
/// panicked.
#[inline]
pub fn write_recover<T>(rwlock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rwlock
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};

    #[test]
    fn lock_recover_survives_a_poisoned_mutex() {
        let shared = Arc::new(Mutex::new(41u32));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(shared.is_poisoned());
        let mut guard = lock_recover(&shared);
        *guard += 1;
        assert_eq!(*guard, 42);
    }

    #[test]
    fn rwlock_recover_survives_a_poisoned_writer() {
        use std::sync::RwLock;
        let shared = Arc::new(RwLock::new(1u32));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.write().unwrap();
            panic!("poison it");
        })
        .join();
        *write_recover(&shared) += 1;
        assert_eq!(*read_recover(&shared), 2);
    }

    #[test]
    fn wait_recover_wakes_through_poison() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let notifier = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*notifier;
            let mut guard = lock_recover(lock);
            while !*guard {
                guard = wait_recover(cvar, guard);
            }
        });
        // Poison the mutex from a panicking holder, then set the flag
        // through recovery and notify: the waiter must still wake.
        {
            let poisoner = Arc::clone(&pair);
            let _ = std::thread::spawn(move || {
                let _guard = poisoner.0.lock().unwrap();
                panic!("poison it");
            })
            .join();
        }
        {
            let (lock, cvar) = &*pair;
            *lock_recover(lock) = true;
            cvar.notify_all();
        }
        waiter.join().unwrap();
    }
}
