//! Wall-clock timing scopes and capped thread pools.
//!
//! The paper's multicore experiments (Figs. 9 and 11) sweep over 1, 2, 4
//! and 8 cores; [`scoped_pool`] builds a rayon pool with exactly that many
//! threads so the sweep is reproducible regardless of the host's core
//! count.

use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch with lap support.
///
/// ```
/// use hpcutil::Stopwatch;
/// let mut sw = Stopwatch::start();
/// let _work: u64 = (0..1000u64).sum();
/// let lap = sw.lap();
/// assert!(lap >= std::time::Duration::ZERO);
/// assert!(sw.total() >= lap);
/// ```
#[derive(Debug, Clone)]
pub struct Stopwatch {
    start: Instant,
    last_lap: Instant,
}

impl Stopwatch {
    /// Start a new stopwatch.
    pub fn start() -> Self {
        let now = Instant::now();
        Stopwatch {
            start: now,
            last_lap: now,
        }
    }

    /// Time elapsed since the previous `lap` call (or since start), and
    /// reset the lap marker.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.last_lap;
        self.last_lap = now;
        d
    }

    /// Total time since the stopwatch was started.
    pub fn total(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Run `f` inside a rayon pool with exactly `threads` worker threads and
/// return its result.
///
/// Used by the core-count sweeps; a fresh pool per call keeps runs
/// independent (no warm work-stealing state leaks between sweep points).
pub fn scoped_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// Time a closure, returning `(result, wall_seconds)`.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Run `f` repeatedly until at least `min_total` has elapsed or `max_reps`
/// is reached; returns the mean seconds per repetition.
///
/// This is the cheap fallback harness for the figure binaries (Criterion
/// is used for the micro-benches; the figure sweeps need one number per
/// configuration, fast).
pub fn time_reps(min_total: Duration, max_reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    let mut reps = 0usize;
    while reps < max_reps && (reps == 0 || t0.elapsed() < min_total) {
        f();
        reps += 1;
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotonic() {
        let mut sw = Stopwatch::start();
        let a = sw.lap();
        let b = sw.lap();
        assert!(a >= Duration::ZERO && b >= Duration::ZERO);
        assert!(sw.total() >= a + b);
    }

    #[test]
    fn scoped_pool_uses_requested_threads() {
        for threads in [1usize, 2, 4] {
            let n = scoped_pool(threads, rayon::current_num_threads);
            assert_eq!(n, threads);
        }
    }

    #[test]
    fn scoped_pool_returns_value() {
        let v = scoped_pool(2, || {
            use rayon::prelude::*;
            (0..1000u64).into_par_iter().sum::<u64>()
        });
        assert_eq!(v, 499_500);
    }

    #[test]
    fn time_reps_runs_at_least_once() {
        let mut count = 0;
        let per = time_reps(Duration::ZERO, 5, || count += 1);
        assert_eq!(count, 1);
        assert!(per >= 0.0);
    }

    #[test]
    fn time_reps_respects_max() {
        let mut count = 0;
        time_reps(Duration::from_secs(60), 3, || count += 1);
        assert_eq!(count, 3);
    }
}
