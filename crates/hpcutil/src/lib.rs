//! Substrate utilities shared across the BATMAP reproduction workspace.
//!
//! This crate intentionally has no knowledge of the paper's algorithms; it
//! provides the plumbing every other crate needs:
//!
//! * [`fxhash`] — a fast, deterministic, non-cryptographic hasher (the
//!   rustc `FxHash` algorithm re-implemented so we stay within the
//!   offline dependency set),
//! * [`timer`] — wall-clock scopes and capped rayon thread pools for the
//!   1/2/4/8-core experiments,
//! * [`mem`] — the [`mem::MemoryFootprint`] trait used by the Figure 5
//!   memory-usage experiment,
//! * [`stats`] — summary statistics and throughput unit helpers,
//! * [`table`] — aligned text tables for the figure binaries.

#![warn(missing_docs)]

pub mod fxhash;
pub mod mem;
pub mod stats;
pub mod table;
pub mod timer;

pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use mem::MemoryFootprint;
pub use stats::Summary;
pub use table::Table;
pub use timer::{scoped_pool, Stopwatch};
