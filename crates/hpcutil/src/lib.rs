//! Substrate utilities shared across the BATMAP reproduction workspace.
//!
//! This crate intentionally has no knowledge of the paper's algorithms; it
//! provides the plumbing every other crate needs:
//!
//! * [`fxhash`] — a fast, deterministic, non-cryptographic hasher (the
//!   rustc `FxHash` algorithm re-implemented so we stay within the
//!   offline dependency set),
//! * [`timer`] — wall-clock scopes and capped rayon thread pools for the
//!   1/2/4/8-core experiments,
//! * [`mem`] — the [`mem::MemoryFootprint`] trait used by the Figure 5
//!   memory-usage experiment,
//! * [`stats`] — summary statistics and throughput unit helpers,
//! * [`table`] — aligned text tables for the figure binaries,
//! * [`faultpoint`] — named fault-injection sites ([`fault_point!`])
//!   armed by tests and chaos suites, one relaxed atomic load when
//!   disarmed,
//! * [`sync`] — poison-recovering lock helpers so one panicked holder
//!   cannot cascade into every thread sharing a mutex.

#![warn(missing_docs)]

pub mod faultpoint;
pub mod fxhash;
pub mod mem;
pub mod stats;
pub mod sync;
pub mod table;
pub mod timer;

pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use mem::MemoryFootprint;
pub use stats::Summary;
pub use sync::{lock_recover, read_recover, wait_recover, write_recover};
pub use table::Table;
pub use timer::{scoped_pool, Stopwatch};
