//! The `FxHash` algorithm used by rustc, re-implemented locally.
//!
//! The standard library's SipHash is a poor fit for the hot integer-keyed
//! maps this workspace uses (item ids, transaction ids, tile coordinates).
//! `FxHash` is the conventional replacement in performance-sensitive Rust
//! (see the Rust Performance Book, "Hashing"); since external `rustc-hash`
//! is not in the offline dependency set, we re-implement the ~10-line
//! algorithm here.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Firefox/rustc FxHash implementation (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher.
///
/// Not HashDoS-resistant; all keys in this workspace are internally
/// generated (item ids, tids), so that is acceptable.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("batmap"), hash_of("batmap"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        let h: Vec<u64> = (0u64..1000).map(hash_of).collect();
        let distinct: std::collections::HashSet<_> = h.iter().collect();
        assert_eq!(distinct.len(), h.len());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m[&21], 42);
        let s: FxHashSet<u32> = (0..50).collect();
        assert!(s.contains(&49) && !s.contains(&50));
    }

    #[test]
    fn byte_stream_matches_any_chunking() {
        // Hashing the same bytes must not depend on how `write` is called
        // relative to alignment of the full buffer.
        let bytes = b"abcdefghijklmnopqrstuvwx";
        let mut h1 = FxHasher::default();
        h1.write(bytes);
        let mut h2 = FxHasher::default();
        h2.write(bytes);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn remainder_bytes_affect_hash() {
        let mut h1 = FxHasher::default();
        h1.write(b"123456789");
        let mut h2 = FxHasher::default();
        h2.write(b"123456788");
        assert_ne!(h1.finish(), h2.finish());
    }
}
