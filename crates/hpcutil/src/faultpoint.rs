//! Named fault-injection sites: make failure a first-class, testable
//! input.
//!
//! Production code marks its fragile moments with the
//! [`fault_point!`](crate::fault_point) macro — a snapshot write, a
//! connection read, a shard worker's batch — and tests *arm* those
//! sites with actions: return an error, panic, delay N milliseconds,
//! fire only on every k-th hit, stop after n firings. The invariant
//! under test is then asserted **with the fault active**, not merely in
//! its absence.
//!
//! # Cost when disarmed
//!
//! The entire registry sits behind one global relaxed atomic counter of
//! armed sites. A disarmed `fault_point!` compiles to a single
//! `AtomicUsize::load(Relaxed)` and a predictable branch — no lock, no
//! hash lookup, no allocation — so the sites can stay in release builds
//! and hot paths permanently (the perf suite asserts the per-hit cost
//! is negligible against the serving path). Only while at least one
//! site is armed does a hit take the registry lock.
//!
//! # Spec grammar
//!
//! Sites are armed programmatically ([`arm`]) or from a spec string
//! ([`arm_from_spec`], which is what the `BATMAP_FAULTPOINTS`
//! environment variable feeds through `batmap::options`):
//!
//! ```text
//! spec    = entry (';' entry)*
//! entry   = site '=' action
//! action  = kind [ '@' every ] [ 'x' limit ]
//! kind    = 'error' [ '(' message ')' ]
//!         | 'panic' [ '(' message ')' ]
//!         | 'delay' '(' millis ')'
//!         | 'off'
//! ```
//!
//! `@k` fires the action only on every k-th hit (deterministic
//! once-in-k, counted per site from arming); `xn` disables the site
//! after n firings. Examples:
//!
//! ```text
//! snapshot.write.payload=error(injected disk full)
//! server.conn.read=error@7          # drop every 7th read
//! engine.worker.batch=panic(boom)x1 # panic exactly once
//! server.conn.write=delay(25)       # 25ms added to every write
//! ```
//!
//! # Using the macro
//!
//! ```
//! use hpcutil::{fault_point, faultpoint};
//!
//! fn write_payload() -> std::io::Result<()> {
//!     // Unit form: executes delay/panic actions; an `error` action at
//!     // this site is returned through the mapping closure.
//!     fault_point!("doc.write.payload", |msg| {
//!         Err(std::io::Error::other(msg))
//!     });
//!     Ok(())
//! }
//!
//! faultpoint::arm("doc.write.payload", "error(no space)").unwrap();
//! assert!(write_payload().is_err());
//! faultpoint::disarm("doc.write.payload");
//! assert!(write_payload().is_ok());
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed site does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Surface an injected failure: the [`fault_point!`](crate::fault_point)
    /// macro's mapping closure receives this message and (by
    /// convention) early-returns an error built from it.
    Error(String),
    /// Panic with the message — exercises `catch_unwind` containment
    /// and supervisor restarts.
    Panic(String),
    /// Sleep for the given number of milliseconds, then continue —
    /// exercises timeouts and backpressure.
    Delay(u64),
}

/// A parsed fault action: the kind plus its firing schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultAction {
    /// What happens when the site fires.
    pub kind: FaultKind,
    /// Fire only on every `every`-th hit (1 = every hit).
    pub every: u64,
    /// Stop firing after this many firings (`None` = unlimited).
    pub limit: Option<u64>,
}

/// One armed site's live state.
struct Site {
    action: FaultAction,
    hits: u64,
    fired: u64,
}

/// Count of armed sites; the only state a disarmed hit reads.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// True when at least one site is armed. A single relaxed atomic load:
/// this is the whole cost of a disarmed [`fault_point!`](crate::fault_point).
#[inline(always)]
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed) != 0
}

/// Parse one action spec (`kind[@every][xlimit]`, see the module docs).
pub fn parse_action(spec: &str) -> Result<Option<FaultAction>, String> {
    let spec = spec.trim();
    // Split the trailing modifiers off first; the message may contain
    // anything except ')', so scan from the closing paren if present.
    let (kind_part, mods) = match spec.find(')') {
        Some(close) => (&spec[..=close], &spec[close + 1..]),
        None => {
            let cut = spec.find(['@', 'x']).unwrap_or(spec.len());
            (&spec[..cut], &spec[cut..])
        }
    };
    let (name, arg) = match kind_part.find('(') {
        Some(open) => {
            if !kind_part.ends_with(')') {
                return Err(format!("unterminated argument in `{spec}`"));
            }
            (
                &kind_part[..open],
                Some(&kind_part[open + 1..kind_part.len() - 1]),
            )
        }
        None => (kind_part, None),
    };
    let kind = match name.trim() {
        "off" => {
            if !mods.trim().is_empty() || arg.is_some() {
                return Err(format!("`off` takes no argument or modifiers in `{spec}`"));
            }
            return Ok(None);
        }
        "error" => FaultKind::Error(arg.unwrap_or("injected fault").to_string()),
        "panic" => FaultKind::Panic(arg.unwrap_or("injected panic").to_string()),
        "delay" => {
            let millis = arg
                .ok_or_else(|| format!("`delay` needs a millisecond argument in `{spec}`"))?
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("`delay` argument is not an integer in `{spec}`"))?;
            FaultKind::Delay(millis)
        }
        other => return Err(format!("unknown fault kind `{other}` in `{spec}`")),
    };
    let mut every = 1u64;
    let mut limit = None;
    let mut rest = mods.trim();
    if let Some(after) = rest.strip_prefix('@') {
        let cut = after.find('x').unwrap_or(after.len());
        every = after[..cut]
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("`@every` is not an integer in `{spec}`"))?;
        if every == 0 {
            return Err(format!("`@every` must be ≥ 1 in `{spec}`"));
        }
        rest = after[cut..].trim();
    }
    if let Some(after) = rest.strip_prefix('x') {
        let n = after
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("`xlimit` is not an integer in `{spec}`"))?;
        limit = Some(n);
        rest = "";
    }
    if !rest.is_empty() {
        return Err(format!("trailing garbage `{rest}` in `{spec}`"));
    }
    Ok(Some(FaultAction { kind, every, limit }))
}

/// Arm `site` with the given action spec (replacing any previous
/// action; hit counters restart). A spec of `off` disarms the site.
pub fn arm(site: &str, spec: &str) -> Result<(), String> {
    match parse_action(spec)? {
        Some(action) => {
            arm_action(site, action);
            Ok(())
        }
        None => {
            disarm(site);
            Ok(())
        }
    }
}

/// Arm `site` with an already-built action.
pub fn arm_action(site: &str, action: FaultAction) {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    let prev = reg.insert(
        site.to_string(),
        Site {
            action,
            hits: 0,
            fired: 0,
        },
    );
    if prev.is_none() {
        ARMED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disarm one site (idempotent).
pub fn disarm(site: &str) {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    if reg.remove(site).is_some() {
        ARMED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Disarm every site (what a test's cleanup calls).
pub fn disarm_all() {
    let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    let n = reg.len();
    reg.clear();
    ARMED.fetch_sub(n, Ordering::Relaxed);
}

/// Arm every `site=action` entry of a `;`-separated spec string (the
/// `BATMAP_FAULTPOINTS` format). Empty entries are ignored; the first
/// malformed entry aborts with an error and arms nothing further.
pub fn arm_from_spec(spec: &str) -> Result<(), String> {
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, action) = entry
            .split_once('=')
            .ok_or_else(|| format!("fault entry `{entry}` is not `site=action`"))?;
        arm(site.trim(), action)?;
    }
    Ok(())
}

/// Names of the currently armed sites, sorted (diagnostics and tests).
pub fn armed_sites() -> Vec<String> {
    let reg = registry().lock().unwrap_or_else(|p| p.into_inner());
    let mut names: Vec<String> = reg.keys().cloned().collect();
    names.sort();
    names
}

/// Evaluate a hit on `site`: returns `Some(message)` when an armed
/// `error` action fires (the macro's closure maps it into the caller's
/// error type), after executing any `delay` inline and raising any
/// `panic`. Returns `None` when the site is disarmed or scheduled off
/// this hit. Called by the macro only after [`is_armed`] — not intended
/// for direct use, but harmless.
pub fn hit(site: &str) -> Option<String> {
    let fire = {
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        let entry = reg.get_mut(site)?;
        entry.hits += 1;
        let due = entry.hits % entry.action.every == 0;
        let within = entry.action.limit.is_none_or(|l| entry.fired < l);
        if due && within {
            entry.fired += 1;
            Some(entry.action.kind.clone())
        } else {
            None
        }
        // Lock dropped before sleeping or panicking: a delayed or
        // panicking site must not poison or stall the registry.
    }?;
    match fire {
        FaultKind::Delay(millis) => {
            std::thread::sleep(Duration::from_millis(millis));
            None
        }
        FaultKind::Panic(message) => panic!("fault point `{site}` injected panic: {message}"),
        FaultKind::Error(message) => Some(message),
    }
}

/// Mark a named fault site. Two forms:
///
/// * `fault_point!("site")` — armed `delay` actions sleep, `panic`
///   actions panic; an `error` action at a unit-form site also panics
///   (arming `error` on a site that cannot return one is a test bug
///   worth failing loudly).
/// * `fault_point!("site", |msg| expr)` — as above, but an `error`
///   action evaluates the closure with the injected message and
///   **early-returns** its value from the enclosing function.
///
/// Disarmed cost: one relaxed atomic load.
#[macro_export]
macro_rules! fault_point {
    ($site:expr) => {
        if $crate::faultpoint::is_armed() {
            if let ::std::option::Option::Some(message) = $crate::faultpoint::hit($site) {
                panic!(
                    "fault point `{}` armed with an error action but the site cannot \
                     return one: {message}",
                    $site
                );
            }
        }
    };
    ($site:expr, $on_error:expr) => {
        if $crate::faultpoint::is_armed() {
            if let ::std::option::Option::Some(message) = $crate::faultpoint::hit($site) {
                #[allow(clippy::redundant_closure_call)]
                return ($on_error)(message);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global, so every test here runs under
    /// one lock to keep arming deterministic (the unit tests would
    /// otherwise race each other's disarm_all).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn guarded<R>(f: impl FnOnce() -> R) -> R {
        let _gate = serial();
        disarm_all();
        let out = f();
        disarm_all();
        out
    }

    #[test]
    fn disarmed_sites_do_nothing() {
        guarded(|| {
            assert!(!is_armed());
            fault_point!("test.nothing");
            let ok = (|| -> Result<u32, String> {
                fault_point!("test.nothing", Err);
                Ok(7)
            })();
            assert_eq!(ok, Ok(7));
        });
    }

    #[test]
    fn error_action_returns_through_the_closure() {
        guarded(|| {
            arm("test.err", "error(no luck)").unwrap();
            assert!(is_armed());
            let out = (|| -> Result<u32, String> {
                fault_point!("test.err", |m: String| Err(format!("mapped: {m}")));
                Ok(1)
            })();
            assert_eq!(out, Err("mapped: no luck".to_string()));
            disarm("test.err");
            assert!(!is_armed());
        });
    }

    #[test]
    fn every_k_and_limit_schedules_fire_deterministically() {
        guarded(|| {
            arm("test.sched", "error(f)@3x2").unwrap();
            let fire = |_: ()| -> Result<(), String> {
                fault_point!("test.sched", Err);
                Ok(())
            };
            let outcomes: Vec<bool> = (0..12).map(|_| fire(()).is_err()).collect();
            // Fires on hits 3 and 6 (every 3rd), then the x2 limit caps it.
            let expect: Vec<bool> = (1..=12).map(|h| h == 3 || h == 6).collect();
            assert_eq!(outcomes, expect);
        });
    }

    #[test]
    fn panic_action_panics_and_is_containable() {
        guarded(|| {
            arm("test.panic", "panic(kaboom)").unwrap();
            let caught = std::panic::catch_unwind(|| {
                fault_point!("test.panic");
            });
            assert!(caught.is_err());
            // The registry survives a panicking site.
            assert_eq!(armed_sites(), vec!["test.panic".to_string()]);
        });
    }

    #[test]
    fn delay_action_sleeps() {
        guarded(|| {
            arm("test.delay", "delay(30)").unwrap();
            let t0 = std::time::Instant::now();
            fault_point!("test.delay");
            assert!(t0.elapsed() >= Duration::from_millis(25));
        });
    }

    #[test]
    fn spec_strings_parse_and_reject() {
        guarded(|| {
            arm_from_spec("a.site=error(x); b.site=delay(5)@2 ; ;c.site=panic x1").unwrap();
            assert_eq!(armed_sites().len(), 3);
            disarm_all();
            assert!(arm_from_spec("no-equals-here").is_err());
            assert!(arm("s", "explode").is_err());
            assert!(arm("s", "delay").is_err());
            assert!(arm("s", "delay(ms)").is_err());
            assert!(arm("s", "error@0").is_err());
            assert!(arm("s", "error(m)zz").is_err());
            // `off` disarms.
            arm("s", "error").unwrap();
            assert!(is_armed());
            arm("s", "off").unwrap();
            assert!(!is_armed());
        });
    }

    #[test]
    fn rearming_resets_counters() {
        guarded(|| {
            arm("test.rearm", "error@2").unwrap();
            let fire = |_: ()| -> Result<(), String> {
                fault_point!("test.rearm", Err);
                Ok(())
            };
            assert!(fire(()).is_ok()); // hit 1
            arm("test.rearm", "error@2").unwrap(); // counters restart
            assert!(fire(()).is_ok()); // hit 1 again
            assert!(fire(()).is_err()); // hit 2 fires
        });
    }
}
