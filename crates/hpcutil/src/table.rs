//! Aligned text tables for the figure binaries.
//!
//! Every `fig*` binary prints a table whose rows correspond to the series
//! the paper plots; keeping the formatting here keeps the binaries short
//! and the output uniform (and machine-greppable: `|`-separated cells).

use std::fmt::Write as _;

/// A simple right-aligned text table.
///
/// ```
/// let mut t = hpcutil::Table::new(&["n", "gpu_s", "apriori_s"]);
/// t.row(&["4000", "0.12", "3.40"]);
/// t.row(&["8000", "0.25", "14.1"]);
/// let s = t.render();
/// assert!(s.contains("apriori_s"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must have the same arity as the headers.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Append a row of already-owned cells (for formatted values).
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with `|`-separated, right-aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}", cell, w = widths[i]);
                if i + 1 < ncols {
                    out.push_str(" | ");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 3 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds for table cells: 3 significant-ish digits, fixed point.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same display width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(123.4), "123");
        assert_eq!(fmt_secs(1.234), "1.23");
        assert_eq!(fmt_secs(0.01234), "0.0123");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
    }
}
