//! Shared harness for the figure binaries.
//!
//! Every `fig*` binary reproduces one figure/table of the paper's
//! evaluation (§IV). The paper's instances total 10⁷ item occurrences;
//! by default the binaries run at `--scale 0.01` (10⁵ occurrences) with
//! a proportionally scaled `n` sweep so the whole suite finishes in
//! minutes while preserving every *shape* the paper reports (who wins,
//! growth orders, crossovers, memory blow-ups). `--scale 1 --full`
//! restores the paper's exact parameters. EXPERIMENTS.md records the
//! mapping point by point.

#![warn(missing_docs)]

pub mod pbi;
pub mod report;

use batmap::{EngineOptions, KernelBackend};
use datagen::uniform::{generate, UniformSpec};
use fim::TransactionDb;

/// Command-line configuration shared by the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessConfig {
    /// Instance-size multiplier relative to the paper's 10⁷ items.
    pub scale: f64,
    /// Quick mode: even smaller sweeps (CI smoke).
    pub quick: bool,
    /// Full mode: the paper's exact sweep endpoints.
    pub full: bool,
    /// Memory budget for Apriori's counting array, bytes (the paper's
    /// machine had 6 GB; scaled runs default to 1 GiB so the "exceeds
    /// memory" point appears inside the scaled sweep).
    pub apriori_budget: usize,
    /// Seed for generators and hashing.
    pub seed: u64,
    /// The engine tuning knobs (match-count backend, host parallelism,
    /// storage representation) as one [`EngineOptions`] value with the
    /// documented resolution order (explicit flag > `BATMAP_*`
    /// environment > auto). Core-sweep binaries treat a pinned thread
    /// count as "run only this core count".
    pub options: EngineOptions,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 0.01,
            quick: false,
            full: false,
            apriori_budget: 1 << 30,
            seed: 0x1DB5,
            options: EngineOptions::auto(),
        }
    }
}

impl HarnessConfig {
    /// Parse from `std::env::args`: `--scale X`, `--quick`, `--full`,
    /// `--budget BYTES`, `--seed N`. Unknown arguments abort with usage.
    pub fn from_args() -> Self {
        let mut cfg = HarnessConfig::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        // A value-taking flag at the end of the line gets the usage
        // message, not an index panic.
        fn value<'a>(args: &'a [String], i: &mut usize, what: &str) -> &'a str {
            *i += 1;
            args.get(*i).map(String::as_str).unwrap_or_else(|| {
                eprintln!("{what}");
                std::process::exit(2);
            })
        }
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    cfg.scale = value(&args, &mut i, "--scale takes a float")
                        .parse()
                        .expect("--scale takes a float");
                }
                "--budget" => {
                    cfg.apriori_budget = value(&args, &mut i, "--budget takes bytes")
                        .parse()
                        .expect("--budget takes bytes");
                }
                "--seed" => {
                    cfg.seed = value(&args, &mut i, "--seed takes an integer")
                        .parse()
                        .expect("--seed takes an integer");
                }
                "--quick" => cfg.quick = true,
                "--full" => cfg.full = true,
                flag @ ("--kernel" | "--threads" | "--repr") => {
                    let v = value(&args, &mut i, batmap::options::FLAGS_USAGE);
                    if let Err(message) = cfg.options.set_flag(flag, v) {
                        eprintln!("{message}\n{}", batmap::options::FLAGS_USAGE);
                        std::process::exit(2);
                    }
                }
                other => {
                    eprintln!(
                        "unknown argument {other}\nusage: [--scale F] [--quick] [--full] [--budget BYTES] [--seed N] plus the engine flags:\n{}",
                        batmap::options::FLAGS_USAGE
                    );
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        cfg
    }

    /// Total instance size at this scale (paper: 10⁷).
    pub fn total_items(&self) -> usize {
        ((10_000_000f64 * self.scale) as usize).max(1_000)
    }

    /// The distinct-item sweep for the Figs. 5–7 experiments, scaled
    /// from the paper's 4k..128k.
    pub fn n_sweep(&self) -> Vec<u32> {
        if self.full {
            vec![4_000, 8_000, 16_000, 32_000, 64_000, 128_000]
        } else if self.quick {
            vec![250, 500, 1_000]
        } else {
            vec![500, 1_000, 2_000, 4_000, 8_000]
        }
    }

    /// The density sweep of Fig. 8 (paper: 0.001..0.1, log-spaced).
    pub fn density_sweep(&self) -> Vec<f64> {
        if self.quick {
            vec![0.003, 0.03]
        } else {
            vec![0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1]
        }
    }

    /// Fixed item count for the Fig. 8 density experiment (paper: 8000).
    pub fn density_n(&self) -> u32 {
        if self.full {
            8_000
        } else if self.quick {
            250
        } else {
            800
        }
    }
}

/// Generate the paper's §IV-A instance: `n` distinct items, each
/// included per transaction with probability `density`, until
/// `cfg.total_items()` occurrences.
pub fn paper_instance(cfg: &HarnessConfig, n_items: u32, density: f64) -> TransactionDb {
    generate(&UniformSpec {
        n_items,
        density,
        total_items: cfg.total_items(),
        seed: cfg.seed,
    })
}

/// Build the one-vs-many workload shared by the `one_vs_many` criterion
/// bench and the `perf_suite` `intersect_one_vs_many` scenario: one
/// probe batmap of `ONE_VS_MANY_SET` elements in a 100k universe plus
/// `candidates` same-support candidates (same support → same width →
/// the batched driver's blocked equal-width path, the mining pipeline's
/// common case — preprocessing sorts batmaps by width). One definition
/// so the criterion trajectory and the regression-gated scenario stay
/// comparable.
pub fn one_vs_many_fixture(
    candidates: usize,
    seed: u64,
    kernel: KernelBackend,
) -> (batmap::Batmap, Vec<batmap::Batmap>) {
    use batmap::{Batmap, BatmapParams};
    const M: u32 = 100_000;
    let set = ONE_VS_MANY_SET as u32;
    let params = std::sync::Arc::new(
        BatmapParams::new(M as u64, seed).with_engine_options(EngineOptions::auto().kernel(kernel)),
    );
    let probe: Vec<u32> = (0..set).map(|i| i * (M / set)).collect();
    let probe = Batmap::build(params.clone(), &probe).batmap;
    let many: Vec<Batmap> = (0..candidates)
        .map(|c| {
            let elements: Vec<u32> = (0..set)
                .map(|i| (i * (M / set) + c as u32 * 7) % M)
                .collect();
            Batmap::build(params.clone(), &elements).batmap
        })
        .collect();
    (probe, many)
}

/// Elements per set in [`one_vs_many_fixture`].
pub const ONE_VS_MANY_SET: usize = 4_000;

/// A representative mining threshold for an instance: slightly above
/// the mean pair support `m·p²`, so the output is the interesting tail
/// rather than the full dense pair matrix. All miners in a figure get
/// the same threshold; their *counting* work is unaffected (every
/// method computes all supports before thresholding), only the output
/// materialization is equalized.
pub fn recommended_minsup(db: &TransactionDb) -> u64 {
    let p = db.density();
    let mean_pair = db.len() as f64 * p * p;
    (mean_pair * 1.2).ceil().max(2.0) as u64
}

/// Format an optional seconds value; `None` prints as the paper's
/// ">limit" / "OOM" markers.
pub fn fmt_opt_secs(v: Option<f64>, marker: &str) -> String {
    match v {
        Some(s) => hpcutil::table::fmt_secs(s),
        None => marker.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_one_percent() {
        let cfg = HarnessConfig::default();
        assert_eq!(cfg.total_items(), 100_000);
        assert!(!cfg.n_sweep().is_empty());
        assert!(cfg.density_sweep().len() >= 2);
    }

    #[test]
    fn full_sweep_matches_paper() {
        let cfg = HarnessConfig {
            full: true,
            scale: 1.0,
            ..Default::default()
        };
        assert_eq!(cfg.total_items(), 10_000_000);
        assert_eq!(cfg.n_sweep().last(), Some(&128_000));
        assert_eq!(cfg.density_n(), 8_000);
    }

    #[test]
    fn instance_has_requested_shape() {
        let cfg = HarnessConfig {
            scale: 0.001,
            ..Default::default()
        };
        let db = paper_instance(&cfg, 100, 0.05);
        assert!(db.total_items() >= 10_000);
        assert!((db.density() - 0.05).abs() < 0.01);
    }

    #[test]
    fn fmt_opt() {
        assert_eq!(fmt_opt_secs(None, ">1800"), ">1800");
        assert_eq!(fmt_opt_secs(Some(1.0), "x"), "1.00");
    }
}
