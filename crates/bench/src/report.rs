//! Machine-readable performance reports — the `BENCH_*.json`
//! trajectory files.
//!
//! The `perf_suite` binary runs a fixed set of intersect/mine scenarios
//! and emits one JSON file per scenario with a **stable schema**
//! ([`SCHEMA_VERSION`]), so successive commits leave a comparable perf
//! trail and CI can fail on large regressions against the baselines
//! checked into `crates/bench/baselines/`.
//!
//! Schema (`BENCH_<scenario>.json`):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "scenario": "mine_cpu_parallel",
//!   "backend": "swar64",
//!   "engine": "cpu-parallel",
//!   "threads": 8,
//!   "wall_s": 0.0421,
//!   "work_units": 1234567,
//!   "pairs_per_s": 2.93e7,
//!   "dataset": {"n_items": 800, "total_items": 100000,
//!               "density": 0.05, "seed": 7605, "k": 64}
//! }
//! ```
//!
//! `work_units` is the scenario's own unit of useful work (reported
//! pair comparisons for mining scenarios, word comparisons for the
//! intersect micro-scenarios); `pairs_per_s = work_units / wall_s` is
//! the regression-checked throughput metric. `wall_s` is host wall
//! time, except for the `mine_gpu_sim` scenario where it is *simulated*
//! device time (deterministic for a fixed dataset, which makes that
//! baseline exact).

use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Version of the JSON schema emitted by [`PerfReport`]. Bump on any
/// field change; the regression checker refuses to compare across
/// versions.
pub const SCHEMA_VERSION: u32 = 1;

/// Generation parameters of a scenario's dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetParams {
    /// Distinct items (0 for synthetic-array scenarios).
    pub n_items: u32,
    /// Total item occurrences (or array words for intersect
    /// scenarios).
    pub total_items: usize,
    /// Per-transaction inclusion probability (0 when not applicable).
    pub density: f64,
    /// Generator / hashing seed.
    pub seed: u64,
    /// Tile side `k` (0 when not applicable).
    pub k: usize,
}

/// One scenario's performance record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Stable scenario name; the file is `BENCH_<scenario>.json`.
    pub scenario: String,
    /// Match-count backend the scenario dispatched through.
    pub backend: String,
    /// Executing engine (`cpu-serial`, `cpu-parallel`, `gpu-sim`,
    /// `swar-sweep`).
    pub engine: String,
    /// Worker threads used.
    pub threads: usize,
    /// Measured seconds (host wall time; simulated device time for
    /// `mine_gpu_sim`).
    pub wall_s: f64,
    /// Useful work units processed (scenario-specific; see module
    /// docs).
    pub work_units: u64,
    /// `work_units / wall_s` — the regression-checked metric.
    pub pairs_per_s: f64,
    /// Dataset parameters, for reproducibility.
    pub dataset: DatasetParams,
}

impl PerfReport {
    /// Assemble a report, deriving `pairs_per_s` and stamping the
    /// schema version.
    pub fn new(
        scenario: impl Into<String>,
        backend: impl Into<String>,
        engine: impl Into<String>,
        threads: usize,
        wall_s: f64,
        work_units: u64,
        dataset: DatasetParams,
    ) -> Self {
        PerfReport {
            schema_version: SCHEMA_VERSION,
            scenario: scenario.into(),
            backend: backend.into(),
            engine: engine.into(),
            threads,
            wall_s,
            work_units,
            pairs_per_s: work_units as f64 / wall_s.max(1e-12),
            dataset,
        }
    }

    /// File name this report is stored under.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.scenario)
    }

    /// Write the report into `dir` as `BENCH_<scenario>.json`.
    pub fn write_into(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        let text = serde_json::to_string(self).map_err(io::Error::other)?;
        std::fs::write(&path, text + "\n")?;
        Ok(path)
    }

    /// Load one report from a JSON file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(io::Error::other)
    }
}

/// Load every `BENCH_*.json` in `dir` (missing directory → empty).
pub fn load_dir(dir: &Path) -> io::Result<Vec<PerfReport>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            out.push(PerfReport::load(&path)?);
        }
    }
    out.sort_by(|a, b| a.scenario.cmp(&b.scenario));
    Ok(out)
}

/// Compare `current` against `baselines` scenario by scenario. A
/// scenario fails when its throughput dropped by more than `factor`
/// (e.g. `factor = 2.0` fails anything slower than half the baseline).
/// Returns the failure descriptions (empty = pass). A baseline
/// scenario the run did not produce is itself a failure (a silently
/// vanished scenario must not pass the gate — delete its baseline file
/// when retiring it deliberately); current scenarios without a
/// baseline are skipped, so new scenarios can land before their floor.
pub fn regression_failures(
    current: &[PerfReport],
    baselines: &[PerfReport],
    factor: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for base in baselines {
        let Some(cur) = current.iter().find(|c| c.scenario == base.scenario) else {
            failures.push(format!(
                "scenario `{}` present in baselines but not produced by this run",
                base.scenario
            ));
            continue;
        };
        if cur.schema_version != base.schema_version {
            failures.push(format!(
                "scenario `{}`: schema version {} vs baseline {} — refresh the baseline",
                cur.scenario, cur.schema_version, base.schema_version
            ));
            continue;
        }
        if cur.pairs_per_s * factor < base.pairs_per_s {
            failures.push(format!(
                "scenario `{}` regressed >{factor}x: {:.3e} pairs/s vs baseline floor {:.3e}",
                cur.scenario, cur.pairs_per_s, base.pairs_per_s
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(scenario: &str, rate: f64) -> PerfReport {
        let mut r = PerfReport::new(
            scenario,
            "swar64",
            "cpu-parallel",
            4,
            1.0,
            rate as u64,
            DatasetParams {
                n_items: 100,
                total_items: 10_000,
                density: 0.05,
                seed: 7,
                k: 64,
            },
        );
        r.pairs_per_s = rate;
        r
    }

    #[test]
    fn roundtrips_through_json() {
        let report = sample("mine_cpu_parallel", 1.5e7);
        let text = serde_json::to_string(&report).unwrap();
        let back: PerfReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(report.file_name(), "BENCH_mine_cpu_parallel.json");
    }

    #[test]
    fn write_and_load_dir() {
        let dir = std::env::temp_dir().join(format!("batmap-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        sample("a", 1.0).write_into(&dir).unwrap();
        sample("b", 2.0).write_into(&dir).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].scenario, "a");
        assert!(load_dir(&dir.join("missing")).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn regression_gate() {
        let base = vec![sample("x", 100.0), sample("y", 100.0)];
        // Within 2x: pass.
        let ok = vec![sample("x", 51.0), sample("y", 99.0)];
        assert!(regression_failures(&ok, &base, 2.0).is_empty());
        // Beyond 2x on one scenario: one failure.
        let bad = vec![sample("x", 49.0), sample("y", 200.0)];
        let failures = regression_failures(&bad, &base, 2.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("`x`"));
        // Missing scenario: flagged.
        let missing = vec![sample("y", 100.0)];
        assert_eq!(regression_failures(&missing, &base, 2.0).len(), 1);
        // Extra scenarios without a baseline are fine.
        let extra = vec![sample("x", 100.0), sample("y", 100.0), sample("z", 1.0)];
        assert!(regression_failures(&extra, &base, 2.0).is_empty());
    }
}
