//! E1: the PBI-GPU full-bitmap baseline (Fang et al. \[11\]) vs batmaps,
//! across densities.
//!
//! §I-B estimates PBI's underlying intersection speed at ~40 Gbit/s on
//! T40I10D100K (density 4%), with cost per *item* growing as density
//! falls (all-zero bitmap words still move). Batmap traffic scales with
//! set size instead, so batmaps win increasingly as data gets sparser —
//! until the compression floor bites at the very bottom.

use bench::pbi::{run_pbi, PbiDeviceData};
use bench::{paper_instance, HarnessConfig};
use fim::{BitmapIndex, VerticalDb};
use gpu_sim::{DeviceSpec, KernelStats};
use hpcutil::stats::human_rate;
use hpcutil::Table;
use pairminer::gpu::{run_tile, DeviceData};
use pairminer::{preprocess, schedule};

fn main() {
    let cfg = HarnessConfig::from_args();
    let n: u32 = if cfg.quick { 64 } else { 160 };
    println!("E1 reproduction: PBI full-bitmap vs batmap, n={n}, varying density");
    let device = DeviceSpec::gtx285();
    let mut table = Table::new(&[
        "density",
        "pbi_sim_s",
        "batmap_sim_s",
        "pbi_bytes",
        "batmap_bytes",
        "pbi_rate",
    ]);
    // Extend the shared sweep further down: the batmap-vs-PBI traffic
    // crossover (≈ density 1/24 in bytes for this geometry) and the
    // per-item blow-up both live at the sparse end.
    let mut sweep = vec![0.0002, 0.0005];
    sweep.extend(cfg.density_sweep());
    for density in sweep {
        let db = paper_instance(&cfg, n, density);
        let v = VerticalDb::from_horizontal(&db);
        // PBI.
        let idx = BitmapIndex::from_vertical(&v);
        let data = PbiDeviceData::upload(&idx);
        let (_, report) = run_pbi(&device, &data);
        let pbi_s = report.seconds();
        let pbi_bytes = data.buffer.bytes();
        let timing = gpu_sim::timing::evaluate(&report.stats, &device);
        let rate = gpu_sim::effective_rate(&report.stats, &timing);
        // Batmaps on the same instance.
        let pre = preprocess(&v, cfg.seed, 128);
        let bdata = DeviceData::upload(&pre);
        let mut bm_s = 0.0;
        let mut stats = KernelStats::default();
        for tile in schedule(pre.padded_items(), 2048) {
            let r = run_tile(&device, &bdata, tile);
            bm_s += r.report.seconds();
            stats += r.report.stats;
        }
        // PBI computes the full square; batmaps the triangle. Double
        // the batmap time for a like-for-like rate comparison.
        table.row_owned(vec![
            format!("{density}"),
            format!("{pbi_s:.4}"),
            format!("{:.4}", 2.0 * bm_s),
            pbi_bytes.to_string(),
            bdata.buffer.bytes().to_string(),
            human_rate(rate),
        ]);
    }
    table.print();
    println!("\nshape check: pbi traffic/time is density-independent (n·m bits always);");
    println!("batmap size tracks set size, winning as density falls — until the");
    println!("compression floor (lowest densities) narrows the gap again.");
    println!("paper context: PBI ~40 Gbit/s on 4%-dense data, no speedup at 0.6%.");
}
