//! §IV-B (T2): batmaps on GPU vs sorted-list merging on CPU.
//!
//! Paper protocol: count identical elements in two sorted arrays of 2²⁴
//! 32-bit integers, 100 repetitions. One core: 14.89 s → 2.25·10⁸
//! elements/s, i.e. 13–26× slower than the GPU batmap rate; 8 cores:
//! 1.71·10⁹ elements/s (29–57% of the GPU).

use bench::HarnessConfig;
use fim::merge;
use hpcutil::{scoped_pool, Table};
use rayon::prelude::*;

fn sorted_array(len: usize, seed: u64, stride: u64) -> Vec<u32> {
    // Strictly increasing pseudo-random-gap array.
    let mut out = Vec::with_capacity(len);
    let mut v = seed % 7;
    let mut state = seed | 1;
    for _ in 0..len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        v += 1 + state % stride;
        out.push(v as u32);
    }
    out
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let len: usize = if cfg.full { 1 << 24 } else { 1 << 21 };
    let reps: usize = if cfg.full {
        100
    } else if cfg.quick {
        3
    } else {
        20
    };
    println!("T2 reproduction: merge intersection of two sorted arrays of {len} u32s, {reps} reps");
    let a = sorted_array(len, 0xAAAA, 4);
    let b = sorted_array(len, 0xBBBB, 4);

    // Single core, the three merge variants.
    let mut table = Table::new(&["variant", "cores", "seconds", "elements_per_s"]);
    let mut single_core_eps = 0.0;
    for (name, f) in [
        ("branchy", merge::count_branchy as fn(&[u32], &[u32]) -> u64),
        ("branchless", merge::count_branchless),
        ("galloping", merge::count_galloping),
    ] {
        let t0 = std::time::Instant::now();
        let mut acc = 0u64;
        for _ in 0..reps {
            acc += f(&a, &b);
        }
        std::hint::black_box(acc);
        let secs = t0.elapsed().as_secs_f64();
        let eps = (2 * len * reps) as f64 / secs;
        if name == "branchy" {
            single_core_eps = eps;
        }
        table.row_owned(vec![
            name.to_string(),
            "1".to_string(),
            format!("{secs:.3}"),
            format!("{eps:.3e}"),
        ]);
    }

    // 8 simultaneous runs on 8 cores (the paper's parallel experiment:
    // independent merges, testing for a memory bottleneck).
    for cores in [2usize, 4, 8] {
        let secs = scoped_pool(cores, || {
            let t0 = std::time::Instant::now();
            (0..cores).into_par_iter().for_each(|_| {
                let mut acc = 0u64;
                for _ in 0..reps {
                    acc += merge::count_branchy(&a, &b);
                }
                std::hint::black_box(acc);
            });
            t0.elapsed().as_secs_f64()
        });
        let eps = (2 * len * reps * cores) as f64 / secs;
        table.row_owned(vec![
            "branchy".to_string(),
            cores.to_string(),
            format!("{secs:.3}"),
            format!("{eps:.3e}"),
        ]);
    }
    table.print();
    println!("\npaper: 2.25e8 elements/s on one core, 1.71e9 on 8 cores;");
    println!("GPU batmaps: 3.68e9 elements/s (run `tput_gpu`), i.e. 13-26x a single core.");
    println!(
        "this build, single-core branchy: {single_core_eps:.3e} elements/s — compare the ratio, not the absolute."
    );
}
