//! Figure 11: memory throughput of CPU batmap comparison vs core count.
//!
//! The paper's protocol: two arrays of 5,000,000 32-bit integers
//! (20 MB total, non-cache-resident), element-wise SWAR comparison
//! repeated 300 times, on 1/2/4/8 cores. Their finding: throughput
//! saturates at 4 cores (memory bottleneck) and never exceeds
//! 7.6 GB/s — almost 5× below the GPU's 36.2 GB/s.

use bench::HarnessConfig;
use hpcutil::{scoped_pool, stats::human_rate, Table};
use pairminer::cpu::swar_throughput_with;

fn main() {
    let cfg = HarnessConfig::from_args();
    // The paper's Fig. 11 measured the u32 SWAR formulation, so that
    // stays the default here; `--kernel` swaps the backend explicitly.
    let kernel = match cfg.options.kernel {
        batmap::KernelBackend::Auto => batmap::KernelBackend::SwarU32,
        pinned => pinned,
    };
    let words = 5_000_000usize;
    let reps = if cfg.full {
        300
    } else if cfg.quick {
        5
    } else {
        40
    };
    // `--threads N` (or BATMAP_THREADS) pins the sweep to one core
    // count; the default sweeps the paper's 1/2/4/8.
    let core_sweep: Vec<usize> = match cfg.options.threads.pinned() {
        Some(cores) => vec![cores],
        None => vec![1, 2, 4, 8],
    };
    println!(
        "Figure 11 reproduction: CPU batmap-comparison throughput \
         ({} MB working set, {reps} reps, kernel {}, cores {core_sweep:?})",
        words * 8 / 1_000_000,
        kernel.resolve()
    );
    let mut table = Table::new(&["cores", "throughput", "bytes_per_s"]);
    let mut rates = Vec::new();
    for cores in core_sweep {
        let rate = scoped_pool(cores, || swar_throughput_with(kernel, words, reps));
        rates.push(rate);
        table.row_owned(vec![
            cores.to_string(),
            human_rate(rate),
            format!("{rate:.3e}"),
        ]);
    }
    table.print();
    let peak = rates.iter().cloned().fold(0.0f64, f64::max);
    println!("\npeak CPU throughput: {}", human_rate(peak));
    println!("paper: saturation at 4 cores, peak 7.6 GB/s, ~5x below the GPU's 36.2 GB/s.");
    println!("compare against `tput_gpu` for this build's simulated GPU rate.");
}
