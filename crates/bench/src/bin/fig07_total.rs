//! Figure 7: total execution time (including pre- and postprocessing)
//! vs number of distinct items.
//!
//! The paper's GPU implementation suffered high preprocessing times
//! (Python host code); they argue a C implementation would gain ≥ 10×.
//! Our host code *is* the optimized implementation, so the
//! preprocessing share is smaller — EXPERIMENTS.md discusses the
//! mapping. Shape preserved: all components scale ~linearly in n and
//! the GPU total stays below both baselines for large n.

use bench::{fmt_opt_secs, paper_instance, recommended_minsup, HarnessConfig};
use fim::{apriori, fpgrowth};
use hpcutil::{timer, Table};
use pairminer::{mine, MinerConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    println!(
        "Figure 7 reproduction: total time incl. pre/post vs n (total={} items, density=5%)",
        cfg.total_items()
    );
    let mut table = Table::new(&[
        "n",
        "gpu_total_s",
        "gpu_pre_s",
        "gpu_kernel_s",
        "gpu_post_s",
        "apriori_s",
        "fpgrowth_s",
    ]);
    for n in cfg.n_sweep() {
        let db = paper_instance(&cfg, n, 0.05);
        let minsup = recommended_minsup(&db);
        let report = mine(
            &db,
            &MinerConfig {
                minsup,
                options: cfg.options,
                ..Default::default()
            },
        );
        let t = report.timings;
        let ap = match apriori::mine_pairs_capped(&db, minsup, cfg.apriori_budget) {
            Ok(_) => Some(timer::time(|| apriori::mine_pairs(&db, minsup)).1),
            Err(_) => None,
        };
        let (_, fp) = timer::time(|| fpgrowth::mine_pairs(&db, minsup));
        table.row_owned(vec![
            n.to_string(),
            format!("{:.4}", t.total_s()),
            format!("{:.4}", t.preprocess_s),
            format!("{:.4}", t.kernel_s),
            format!("{:.4}", t.postprocess_s + t.transfer_s),
            fmt_opt_secs(ap, "OOM/trash"),
            format!("{fp:.3}"),
        ]);
    }
    table.print();
    println!("\nshape check: every gpu component linear in n; gpu_total wins for large n.");
}
