//! Space model (§I-A / §III-A): batmap bits vs the information-theoretic
//! minimum and the uncompressed layout, across densities.
//!
//! Prints the table behind two textual claims of the paper:
//! "within a small factor of the information theoretical minimum" and
//! "we only obtain an actual compression when |Sᵢ| ≥ (m+1)/256".

use batmap::space::{sweep, SpaceReport};
use batmap::BatmapParams;
use bench::HarnessConfig;
use hpcutil::Table;

fn main() {
    let cfg = HarnessConfig::from_args();
    let m: u64 = if cfg.full { 1 << 24 } else { 1 << 20 };
    let params = BatmapParams::new(m, cfg.seed);
    println!(
        "Space model: m = {m}, shift s = {} (compression floor r₀ = {})",
        params.shift(),
        params.r0()
    );
    println!("break-even density (m+1)/256/m ≈ {:.5}\n", 1.0 / 256.0);
    let densities = [
        0.0001, 0.0005, 0.001, 0.002, 0.0039, 0.008, 0.02, 0.05, 0.1, 0.25,
    ];
    let reports: Vec<SpaceReport> = sweep(&params, &densities);
    let mut table = Table::new(&[
        "density",
        "n",
        "entropy_bits",
        "batmap_bits",
        "uncompressed",
        "overhead",
        "compression_wins",
    ]);
    for r in &reports {
        table.row_owned(vec![
            format!("{}", r.density),
            r.n.to_string(),
            format!("{:.3e}", r.entropy_bits),
            r.batmap_bits.to_string(),
            r.uncompressed_bits.to_string(),
            format!("{:.2}", r.overhead()),
            if r.batmap_bits < r.uncompressed_bits {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    table.print();
    println!("\nshape check: overhead is a modest constant above the break-even");
    println!("density (~2^-8) and blows up below it (the r ≥ 2^s floor);");
    println!("'compression_wins' flips to yes right around density 1/256.");
}
