//! Why not just merge on the GPU? (§II's opening argument, measured.)
//!
//! The paper dismisses sorted-list merging on GPUs because its control
//! flow is data-dependent (warp divergence) and its memory access
//! irregular (uncoalesced gathers). This binary runs a faithful
//! merge-per-thread kernel on the simulator — every pointer advance is
//! a divergent branch, every load a one-lane gather — and compares its
//! effective throughput and bus efficiency against the batmap kernel on
//! the *same* sets.

use bench::{paper_instance, HarnessConfig};
use fim::VerticalDb;
use gpu_sim::{dispatch, DeviceSpec, GlobalBuffer, GroupCtx, Kernel, NdRange};
use hpcutil::stats::human_rate;
use pairminer::gpu::{run_tile, DeviceData};
use pairminer::{preprocess, schedule};

/// Tidlists on the device, one merge per thread.
struct MergeKernel<'a> {
    tids: &'a GlobalBuffer,
    offsets: &'a [u32],
    lengths: &'a [u32],
    items: usize,
}

impl Kernel for MergeKernel<'_> {
    fn run_group(&self, ctx: &mut GroupCtx<'_>) {
        // 16 threads per group = one half warp; thread l merges pair
        // (row, col+l) where the group grid spans items × items/16.
        let g = ctx.group_id();
        let row = g[1];
        let col0 = g[0] * 16;
        let hw = 16usize;
        let mut counts = [0u64; 16];
        // Lockstep simulation of the half warp: each step, every
        // *active* lane gathers one element from each list and branches
        // three ways; inactive lanes idle (divergence cost).
        let mut ai = [0usize; 16];
        let mut bi = [0usize; 16];
        let mut active = hw;
        let mut steps = 0u64;
        let mut gathers = 0u64;
        while active > 0 {
            active = 0;
            let mut lane_indices: Vec<usize> = Vec::with_capacity(2 * hw);
            let mut lanes: Vec<usize> = Vec::with_capacity(hw);
            for l in 0..hw {
                let (a_item, b_item) = (row, col0 + l);
                let (alen, blen) = (self.lengths[a_item] as usize, self.lengths[b_item] as usize);
                if ai[l] >= alen || bi[l] >= blen {
                    continue;
                }
                active += 1;
                lanes.push(l);
                lane_indices.push(self.offsets[a_item] as usize + ai[l]);
                lane_indices.push(self.offsets[b_item] as usize + bi[l]);
            }
            if active == 0 {
                break;
            }
            // The step's loads: scattered gathers — each lane's two
            // reads land in unrelated lists (charged as such).
            let values = ctx.load_gather(self.tids, &lane_indices);
            gathers += lane_indices.len() as u64;
            for (slot, &l) in lanes.iter().enumerate() {
                let (x, y) = (values[2 * slot], values[2 * slot + 1]);
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => ai[l] += 1,
                    std::cmp::Ordering::Greater => bi[l] += 1,
                    std::cmp::Ordering::Equal => {
                        counts[l] += 1;
                        ai[l] += 1;
                        bi[l] += 1;
                    }
                }
            }
            // One divergent 3-way branch per step, full-width lockstep
            // issue (idle lanes still burn slots).
            ctx.divergent(3);
            ctx.ops(hw as u64 * 6);
            steps += 1;
        }
        std::hint::black_box((steps, gathers));
        for (l, &c) in counts.iter().enumerate() {
            if col0 + l < self.items {
                ctx.store_seq(row * self.items + col0 + l, &[c]);
            }
        }
    }
}

fn main() {
    let cfg = HarnessConfig::from_args();
    let n: u32 = if cfg.quick { 48 } else { 96 };
    let db = paper_instance(&cfg, n, 0.05);
    let v = VerticalDb::from_horizontal(&db);
    let device = DeviceSpec::gtx285();

    // --- merge kernel -------------------------------------------------
    let mut words = Vec::new();
    let mut offsets = Vec::with_capacity(v.n_items() as usize);
    let mut lengths = Vec::with_capacity(v.n_items() as usize);
    let padded = (v.n_items() as usize).next_multiple_of(16);
    for item in 0..v.n_items() {
        offsets.push(words.len() as u32);
        lengths.push(v.tidlist(item).len() as u32);
        words.extend_from_slice(v.tidlist(item));
    }
    for _ in v.n_items() as usize..padded {
        offsets.push(words.len() as u32);
        lengths.push(0);
    }
    let tids = GlobalBuffer::new(words);
    let kernel = MergeKernel {
        tids: &tids,
        offsets: &offsets,
        lengths: &lengths,
        items: padded,
    };
    let range = NdRange::d2([padded, padded], [16, 1]);
    let merge_report = dispatch(&device, &kernel, range);
    let merge_time = gpu_sim::timing::evaluate(&merge_report.stats, &device);
    let merge_rate = gpu_sim::effective_rate(&merge_report.stats, &merge_time);

    // --- batmap kernel on the same sets -------------------------------
    let pre = preprocess(&v, cfg.seed, 128);
    let data = DeviceData::upload(&pre);
    let mut bm_stats = gpu_sim::KernelStats::default();
    for tile in schedule(pre.padded_items(), 2048) {
        bm_stats += run_tile(&device, &data, tile).report.stats;
    }
    let bm_time = gpu_sim::timing::evaluate(&bm_stats, &device);
    let bm_rate = gpu_sim::effective_rate(&bm_stats, &bm_time);

    println!("Merge-per-thread kernel vs batmap kernel on the simulated GTX 285");
    println!("(n = {n}, density 5%, {} total tids)\n", v.total_items());
    println!("                      merge kernel    batmap kernel");
    println!(
        "bus efficiency        {:>12.3}    {:>13.3}",
        merge_report.stats.efficiency(),
        bm_stats.efficiency()
    );
    println!(
        "divergent branches    {:>12}    {:>13}",
        merge_report.stats.divergent_branches, bm_stats.divergent_branches
    );
    println!(
        "effective rate        {:>12}    {:>13}",
        human_rate(merge_rate),
        human_rate(bm_rate)
    );
    // Per-pair cost is the decision-relevant number. Both denominators
    // count *executed* comparisons so the two columns are comparable:
    // the merge kernel ran the full n×n square, and the batmap tile
    // kernel runs diagonal tiles' full squares in lockstep too
    // (`executed_comparisons`; `comparisons()` counts only the reported
    // strict-upper-triangle cells and would inflate the batmap's
    // per-pair time by ~1.5x).
    let merge_pairs = (padded * padded) as f64;
    let bm_pairs = schedule(pre.padded_items(), 2048)
        .iter()
        .map(|t| t.executed_comparisons())
        .sum::<usize>() as f64;
    let merge_per_pair = merge_time.total_s / merge_pairs;
    let bm_per_pair = bm_time.total_s / bm_pairs;
    println!(
        "time per pair         {:>9.1} ns    {:>10.1} ns",
        merge_per_pair * 1e9,
        bm_per_pair * 1e9
    );
    println!(
        "\nbatmap advantage: {:.1}x per intersection — the §II argument, quantified:",
        merge_per_pair / bm_per_pair
    );
    println!(
        "merging wastes {:.0}% of every bus transaction and serializes on",
        (1.0 - merge_report.stats.efficiency()) * 100.0
    );
    println!("divergent control flow; the batmap sweep does neither.");
}
