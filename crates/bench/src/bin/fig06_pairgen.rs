//! Figure 6: pure pair-generation time vs number of distinct items.
//!
//! The super-linear phase of all three methods, isolated: batmap
//! comparisons on the (simulated) GPU vs Apriori's counting loop vs
//! FP-growth's tree walk, excluding pre/postprocessing.
//!
//! Paper's shape: Apriori blows past the time limit by n = 64,000
//! (memory trashing); FP-growth grows linearly; the GPU series is more
//! than an order of magnitude below FP-growth and also linear.

use bench::{fmt_opt_secs, paper_instance, recommended_minsup, HarnessConfig};
use fim::{apriori, fpgrowth};
use hpcutil::{timer, Table};
use pairminer::{mine, MinerConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    println!(
        "Figure 6 reproduction: pair-generation time vs n (total={} items, density=5%)",
        cfg.total_items()
    );
    println!("gpu_sim_s is simulated device time; CPU columns are measured wall time.\n");
    let mut table = Table::new(&["n", "gpu_sim_s", "apriori_s", "fpgrowth_s"]);
    for n in cfg.n_sweep() {
        let db = paper_instance(&cfg, n, 0.05);
        let minsup = recommended_minsup(&db);
        let report = mine(
            &db,
            &MinerConfig {
                minsup,
                options: cfg.options,
                ..Default::default()
            },
        );
        let gpu = report.timings.kernel_s;
        let ap = match apriori::mine_pairs_capped(&db, minsup, cfg.apriori_budget) {
            Ok(_) => {
                let (_, secs) = timer::time(|| apriori::mine_pairs(&db, minsup));
                Some(secs)
            }
            Err(_) => None, // the paper's ">1800 (trashing)" case
        };
        let (_, fp) = timer::time(|| fpgrowth::mine_pairs(&db, minsup));
        table.row_owned(vec![
            n.to_string(),
            format!("{gpu:.4}"),
            fmt_opt_secs(ap, "OOM/trash"),
            format!("{fp:.3}"),
        ]);
    }
    table.print();
    println!("\nshape check: gpu scales ~linearly in n and sits well below fp-growth.");
}
