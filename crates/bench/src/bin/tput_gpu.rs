//! §IV-A "Throughput computation" (T1): the simulated GPU's effective
//! batmap-comparison rate.
//!
//! Paper arithmetic: n = 4000 items, 10⁷ total, density 5% → m = 50,000
//! transactions, average set 2500 elements, batmap width 3·2¹³ bytes;
//! combined input 4000²·3·2¹³ bytes in 10.87 s = **36.2 GB/s**, a factor
//! ~4.4 below the 159 GB/s theoretical bandwidth.
//!
//! The effective rate is an intensive quantity (per byte), so we measure
//! it exactly on a smaller item count with the *same* per-set shape
//! (m = 50,000, |S| ≈ 2500) and extrapolate the n = 4000 wall time.

use bench::HarnessConfig;
use datagen::uniform::{generate, UniformSpec};
use fim::VerticalDb;
use gpu_sim::{effective_rate, DeviceSpec, KernelStats};
use hpcutil::stats::human_rate;
use pairminer::gpu::{run_tile, DeviceData};
use pairminer::{preprocess, schedule};

fn main() {
    let cfg = HarnessConfig::from_args();
    let n: u32 = if cfg.full {
        1024
    } else if cfg.quick {
        128
    } else {
        256
    };
    // Same per-set shape as the paper's experiment: density 5% over
    // m ≈ 50,000 transactions → |S| ≈ 2500 per item.
    let total = (n as usize) * 2_500;
    let db = generate(&UniformSpec {
        n_items: n,
        density: 0.05,
        total_items: total,
        seed: cfg.seed,
    });
    let v = VerticalDb::from_horizontal(&db);
    let pre = preprocess(&v, cfg.seed, 128);
    let avg_width: f64 = pre.batmap_bytes() as f64 / pre.padded_items() as f64;
    println!(
        "T1 reproduction: GPU effective throughput (n={n}, m={}, avg |S|={:.0}, avg width={avg_width:.0} B)",
        v.m(),
        v.total_items() as f64 / n as f64,
    );
    let device = DeviceSpec::gtx285();
    let data = DeviceData::upload(&pre);
    let tiles = schedule(pre.padded_items(), 2048);
    let mut stats = KernelStats::default();
    let mut sim_s = 0.0;
    for tile in tiles {
        let r = run_tile(&device, &data, tile);
        stats += r.report.stats;
        sim_s += r.report.seconds();
    }
    let timing = gpu_sim::timing::evaluate(&stats, &device);
    let rate = effective_rate(&stats, &timing);
    println!("\nsimulated kernel time (triangular schedule): {sim_s:.4} s");
    println!("useful bytes moved: {:.3e}", stats.useful_bytes as f64);
    println!(
        "effective rate: {} (paper measured 36.2 GB/s)",
        human_rate(rate)
    );
    println!(
        "fraction of peak bandwidth: {:.2} (paper: ~1/4.4 of 159 GB/s)",
        rate / device.mem_bandwidth
    );
    println!("bus efficiency (useful/moved): {:.3}", stats.efficiency());

    // Extrapolate the paper's full n = 4000 run: the full square n² of
    // the paper's arithmetic at this rate.
    let full_bytes = 4000f64 * 4000f64 * 3.0 * (1 << 13) as f64;
    println!(
        "\nextrapolated n=4000 full-square time at this rate: {:.2} s (paper: 10.87 s)",
        full_bytes / rate
    );
    // Element throughput for the §IV-B merge comparison.
    let elems = 4000f64 * 4000f64 * 2500.0;
    println!(
        "element throughput: {:.3e} elements/s (paper: 3.68e9)",
        elems / (full_bytes / rate)
    );
}
