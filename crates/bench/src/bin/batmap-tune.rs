//! `batmap-tune` — measure this machine's [`TuningProfile`] and persist
//! it as JSON for `BATMAP_TUNING`.
//!
//! ```text
//! batmap-tune [--out PATH] [--quick] [--seed N] [--kernel NAME]
//!             [--threads N] [--repr NAME]
//! ```
//!
//! Three passes, each the body of an existing bench so the tuner and
//! the ablation trajectory measure the same thing:
//!
//! 1. **tile side** — the `ablation_tilesize` sweep: the CPU mining
//!    pipeline over one preprocessed corpus across candidate `k`s.
//! 2. **sweep block** — the `one_vs_many` fixture through the batched
//!    driver across candidate block sizes (prefetch pinned).
//! 3. **prefetch distance** — the same fixture across candidate
//!    lookahead distances (block pinned to the pass-2 winner).
//!
//! Every candidate is timed as the minimum of several repetitions (the
//! usual noise floor for short kernels), the winner per pass goes into
//! the profile, and the profile is written with [`TuningProfile::save`]
//! — point `BATMAP_TUNING` at it and every binary in the workspace
//! picks it up. None of these knobs changes any count, so a stale or
//! mis-measured profile can only cost speed, never correctness.

use batmap::{intersect, EngineOptions, TuningProfile};
use datagen::uniform::{generate, UniformSpec};
use fim::VerticalDb;
use hpcutil::Table;
use pairminer::{mine_preprocessed, preprocess_with, Engine, MinerConfig};
use std::path::PathBuf;

struct Args {
    out: PathBuf,
    quick: bool,
    seed: u64,
    options: EngineOptions,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: PathBuf::from("batmap-tuning.json"),
        quick: false,
        seed: 0x7E7E,
        options: EngineOptions::auto(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: batmap-tune [--out PATH] [--quick] [--seed N] plus the engine flags:\n";
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!(
                "{what} takes a value\n{usage}{}",
                batmap::options::FLAGS_USAGE
            );
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => args.out = PathBuf::from(value(&argv, &mut i, "--out")),
            "--seed" => {
                args.seed = value(&argv, &mut i, "--seed")
                    .parse()
                    .expect("--seed takes an integer")
            }
            "--quick" => args.quick = true,
            flag @ ("--kernel" | "--threads" | "--repr" | "--load") => {
                let v = value(&argv, &mut i, flag);
                if let Err(message) = args.options.set_flag(flag, &v) {
                    eprintln!("{message}\n{usage}{}", batmap::options::FLAGS_USAGE);
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!(
                    "unknown argument {other}\n{usage}{}",
                    batmap::options::FLAGS_USAGE
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// Minimum wall time of `reps` runs of `body` — the standard noise
/// floor for short measured regions.
fn min_wall(reps: usize, mut body: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        body();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = parse_args();
    let reps = if args.quick { 2 } else { 4 };
    let mut table = Table::new(&["pass", "candidate", "best_wall_s", "winner"]);

    // Pass 1: tile side, via the ablation_tilesize workload (CPU
    // pipeline over one preprocessed corpus; only `k` varies).
    let db = generate(&UniformSpec {
        n_items: 128,
        density: 0.05,
        total_items: if args.quick { 20_000 } else { 60_000 },
        seed: args.seed,
    });
    let v = VerticalDb::from_horizontal(&db);
    let base = MinerConfig {
        engine: Engine::Cpu,
        options: args.options,
        ..MinerConfig::default()
    };
    let pre = preprocess_with(&v, base.seed, base.max_loop, base.options);
    let tile_candidates: &[usize] = if args.quick {
        &[512, 2048]
    } else {
        &[256, 512, 1024, 2048, 4096]
    };
    let mut tile_side = (0usize, f64::INFINITY);
    for &k in tile_candidates {
        let config = MinerConfig { k, ..base.clone() };
        let wall = min_wall(reps, || {
            std::hint::black_box(mine_preprocessed(&db, &pre, &config).pairs.len());
        });
        if wall < tile_side.1 {
            tile_side = (k, wall);
        }
        table.row_owned(vec![
            "tile_side".into(),
            k.to_string(),
            format!("{wall:.4}"),
            String::new(),
        ]);
    }

    // Passes 2–3: the batched one-vs-many driver (the perf_suite
    // fixture), sweeping block size then prefetch distance.
    let (probe, many) = bench::one_vs_many_fixture(512, args.seed, args.options.kernel);
    let backend = args.options.kernel;
    let sweep_reps = if args.quick { 3 } else { 8 };
    let time_profile = |profile: TuningProfile| -> f64 {
        let mut out = vec![0u64; many.len()];
        min_wall(sweep_reps, || {
            intersect::count_one_vs_many_tuned(backend, &probe, &many, &mut out, profile);
            std::hint::black_box(&out);
        })
    };
    let mut sweep_block = (0usize, f64::INFINITY);
    for block in [1usize, 2, 4, 8] {
        let wall = time_profile(TuningProfile {
            sweep_block: block,
            ..TuningProfile::default()
        });
        if wall < sweep_block.1 {
            sweep_block = (block, wall);
        }
        table.row_owned(vec![
            "sweep_block".into(),
            block.to_string(),
            format!("{wall:.5}"),
            String::new(),
        ]);
    }
    let mut prefetch_dist = (0usize, f64::INFINITY);
    for dist in [0usize, 1, 2, 4, 8, 16] {
        let wall = time_profile(TuningProfile {
            sweep_block: sweep_block.0,
            prefetch_dist: dist,
            ..TuningProfile::default()
        });
        if wall < prefetch_dist.1 {
            prefetch_dist = (dist, wall);
        }
        table.row_owned(vec![
            "prefetch_dist".into(),
            dist.to_string(),
            format!("{wall:.5}"),
            String::new(),
        ]);
    }

    let profile = TuningProfile {
        tile_side: tile_side.0,
        sweep_block: sweep_block.0,
        prefetch_dist: prefetch_dist.0,
    }
    .sanitized();
    table.row_owned(vec![
        "profile".into(),
        profile.to_json(),
        String::new(),
        "*".into(),
    ]);
    table.print();

    profile.save(&args.out).expect("write tuning profile");
    println!(
        "wrote {} — export BATMAP_TUNING={} to use it",
        args.out.display(),
        args.out.display()
    );
}
