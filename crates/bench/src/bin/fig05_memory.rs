//! Figure 5: memory usage vs number of distinct items.
//!
//! Instance: total size fixed (10⁷ at scale 1), density 5%, n swept.
//! Series: GPU batmap pipeline (accounted peak), Apriori (triangular
//! counter array — quadratic in n), FP-growth (FP-tree — linear).
//!
//! Paper's shape: Apriori explodes quadratically and exceeds 6 GB RAM
//! before n = 64,000; GPU and FP-growth scale (near-)linearly.

use bench::{paper_instance, HarnessConfig};
use fim::{apriori, fpgrowth::FpTree};
use hpcutil::{mem::human_bytes, MemoryFootprint, Table};
use pairminer::{mine, MinerConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    println!(
        "Figure 5 reproduction: memory vs n (total={} items, density=5%)",
        cfg.total_items()
    );
    let mut table = Table::new(&["n", "gpu_peak", "apriori", "fpgrowth", "apriori_fits"]);
    for n in cfg.n_sweep() {
        let db = paper_instance(&cfg, n, 0.05);
        // GPU pipeline: run it and take the accounted peak (memory
        // numbers are knob-independent; kernel/threads wired anyway so
        // the flags are never silently ignored).
        let report = mine(
            &db,
            &MinerConfig {
                options: cfg.options,
                ..Default::default()
            },
        );
        let gpu = report.memory.peak_bytes();
        // Apriori: the counter array is predictable without allocating.
        let ap = apriori::pair_bytes_required(n) + db.heap_bytes();
        let fits = ap <= cfg.apriori_budget;
        // FP-growth: build the tree, measure it.
        let tree = FpTree::build(&db, 1);
        let fp = tree.heap_bytes() + db.heap_bytes();
        table.row_owned(vec![
            n.to_string(),
            human_bytes(gpu),
            human_bytes(ap),
            human_bytes(fp),
            if fits { "yes" } else { "NO (trashing)" }.to_string(),
        ]);
    }
    table.print();
    println!("\nshape check: apriori ~ n^2 (rightmost rows dominate); gpu & fp-growth ~ n.");
}
