//! Figure 8: pair-generation time vs item density.
//!
//! Instance size and n fixed; density swept over 0.001..0.1. Paper's
//! shape: Apriori and FP-growth degrade as instances get denser, while
//! the GPU series is almost density-independent — except a *rise at
//! very low density*, caused by the compression floor (`r ≥ 2^s`,
//! §III-A): sparse sets cannot shrink below the minimum table size.

use bench::{fmt_opt_secs, paper_instance, recommended_minsup, HarnessConfig};
use fim::{apriori, fpgrowth};
use hpcutil::{timer, Table};
use pairminer::{mine, MinerConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    let n = cfg.density_n();
    println!(
        "Figure 8 reproduction: time vs density (total={} items, n={n})",
        cfg.total_items()
    );
    let mut table = Table::new(&[
        "density",
        "gpu_sim_s",
        "apriori_s",
        "fpgrowth_s",
        "batmap_w_bytes",
    ]);
    for density in cfg.density_sweep() {
        let db = paper_instance(&cfg, n, density);
        let minsup = recommended_minsup(&db);
        let report = mine(
            &db,
            &MinerConfig {
                minsup,
                options: cfg.options,
                ..Default::default()
            },
        );
        let ap = match apriori::mine_pairs_capped(&db, minsup, cfg.apriori_budget) {
            Ok(_) => Some(timer::time(|| apriori::mine_pairs(&db, minsup)).1),
            Err(_) => None,
        };
        let (_, fp) = timer::time(|| fpgrowth::mine_pairs(&db, minsup));
        // Representative batmap width: device bytes per item row.
        // `comparisons` is exactly (n_padded choose 2), so n_padded
        // recovers as isqrt(2c) + 1 (n(n-1) lies in ((n-1)^2, n^2)).
        let n_padded = (2 * report.comparisons).isqrt() + 1;
        let width = report.memory.device_bytes / n_padded.max(1);
        table.row_owned(vec![
            format!("{density}"),
            format!("{:.4}", report.timings.kernel_s),
            fmt_opt_secs(ap, "OOM/trash"),
            format!("{fp:.3}"),
            width.to_string(),
        ]);
    }
    table.print();
    println!("\nshape check: gpu flat vs density except an uptick at the lowest densities");
    println!("(compression floor, §III-A); CPU baselines degrade with density.");
}
