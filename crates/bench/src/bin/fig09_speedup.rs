//! Figure 9: relative speedup of the CPU miners vs number of cores.
//!
//! The paper's protocol: split the instance (10⁷ items, n = 4000,
//! density 5%) into `i` equal parts, run the miner on each part on its
//! own core, and take the parallel makespan. Their finding: neither
//! Apriori nor FP-growth benefits noticeably from more than 4 cores
//! (memory-bandwidth ceiling).

use bench::{paper_instance, HarnessConfig};
use fim::{apriori, fpgrowth, split};
use hpcutil::{scoped_pool, Table};
use rayon::prelude::*;

fn main() {
    let cfg = HarnessConfig::from_args();
    let n = if cfg.full { 4_000 } else { cfg.density_n() };
    println!(
        "Figure 9 reproduction: speedup vs cores (total={} items, n={n}, density=5%)",
        cfg.total_items()
    );
    let db = paper_instance(&cfg, n, 0.05);
    let cores = [1usize, 2, 4, 8];
    let mut base_ap = 0.0f64;
    let mut base_fp = 0.0f64;
    let mut table = Table::new(&[
        "cores",
        "apriori_s",
        "fp_s",
        "speedup_ap",
        "speedup_fp",
        "ideal",
    ]);
    for &c in &cores {
        let parts = split::split(&db, c);
        // Run the i parts concurrently on i threads; makespan = wall
        // time of the whole batch.
        let run = |f: &(dyn Fn(&fim::TransactionDb) + Sync)| -> f64 {
            scoped_pool(c, || {
                let t0 = std::time::Instant::now();
                parts.par_iter().for_each(f);
                t0.elapsed().as_secs_f64()
            })
        };
        let ap = run(&|p| {
            std::hint::black_box(apriori::mine_pairs(p, 1));
        });
        let fp = run(&|p| {
            std::hint::black_box(fpgrowth::mine_pairs(p, 1));
        });
        if c == 1 {
            base_ap = ap;
            base_fp = fp;
        }
        table.row_owned(vec![
            c.to_string(),
            format!("{ap:.3}"),
            format!("{fp:.3}"),
            format!("{:.2}", base_ap / ap),
            format!("{:.2}", base_fp / fp),
            format!("{c}.00"),
        ]);
    }
    table.print();
    println!("\nshape check: speedups flatten below the ideal line as cores increase");
    println!("(paper: no noticeable benefit beyond 4 cores).");
}
