//! The perf harness: runs a fixed set of intersect/mine scenarios
//! across kernel backends and thread counts and emits one
//! machine-readable `BENCH_<scenario>.json` per scenario (schema in
//! `bench::report`), so the repository accumulates a comparable perf
//! trajectory and CI can gate on large regressions.
//!
//! ```text
//! perf_suite [--out DIR] [--check BASELINE_DIR] [--factor F]
//!            [--quick] [--seed N] [--kernel NAME] [--threads N]
//! ```
//!
//! `--check` compares the fresh reports against the baseline JSONs in
//! the given directory (the repo checks conservative floors into
//! `crates/bench/baselines/`) and exits non-zero if any scenario's
//! `pairs_per_s` dropped by more than `--factor` (default 2).

use batmap::{KernelBackend, Parallelism, ALL_BACKENDS};
use bench::report::{load_dir, regression_failures, DatasetParams, PerfReport};
use datagen::uniform::{generate, UniformSpec};
use hpcutil::{scoped_pool, Table};
use pairminer::cpu::swar_throughput_with;
use pairminer::{mine, Engine, MinerConfig};
use std::path::PathBuf;

struct Args {
    out: PathBuf,
    check: Option<PathBuf>,
    factor: f64,
    quick: bool,
    seed: u64,
    kernel: KernelBackend,
    threads: Parallelism,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: PathBuf::from("."),
        check: None,
        factor: 2.0,
        quick: false,
        seed: 0x1DB5,
        kernel: KernelBackend::Auto,
        threads: Parallelism::Auto,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: perf_suite [--out DIR] [--check BASELINE_DIR] [--factor F] \
                 [--quick] [--seed N] [--kernel NAME] [--threads N]";
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{what} takes a value\n{usage}");
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => args.out = PathBuf::from(value(&argv, &mut i, "--out")),
            "--check" => args.check = Some(PathBuf::from(value(&argv, &mut i, "--check"))),
            "--factor" => {
                args.factor = value(&argv, &mut i, "--factor")
                    .parse()
                    .expect("--factor takes a float")
            }
            "--seed" => {
                args.seed = value(&argv, &mut i, "--seed")
                    .parse()
                    .expect("--seed takes an integer")
            }
            "--kernel" => {
                args.kernel = KernelBackend::from_name(&value(&argv, &mut i, "--kernel"))
                    .unwrap_or_else(|| {
                        eprintln!("--kernel takes auto|scalar|swar32|swar64");
                        std::process::exit(2);
                    })
            }
            "--threads" => {
                args.threads = Parallelism::from_name(&value(&argv, &mut i, "--threads"))
                    .unwrap_or_else(|| {
                        eprintln!("--threads takes auto|serial|<count>");
                        std::process::exit(2);
                    })
            }
            "--quick" => args.quick = true,
            other => {
                eprintln!("unknown argument {other}\n{usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// The intersect micro-scenarios: the Fig. 11 positional comparison at
/// one pinned core, once per concrete backend — the backend axis of the
/// suite.
fn intersect_scenarios(args: &Args) -> Vec<PerfReport> {
    let words: usize = if args.quick { 1 << 16 } else { 1 << 18 };
    let reps = if args.quick { 8 } else { 16 };
    ALL_BACKENDS
        .iter()
        .map(|&backend| {
            // `swar_throughput_with` times only its comparison loop
            // (input setup and pool construction excluded), returning
            // bytes/s over both arrays; derive the wall from it rather
            // than re-timing around the pool, which would fold rayon
            // setup noise into the regression-checked metric.
            let bytes_per_s = scoped_pool(1, || swar_throughput_with(backend, words, reps));
            let wall = (words * 4 * 2 * reps) as f64 / bytes_per_s;
            PerfReport::new(
                format!("intersect_{backend}"),
                backend.name(),
                "swar-sweep",
                1,
                wall,
                (words * reps) as u64,
                DatasetParams {
                    n_items: 0,
                    total_items: words,
                    density: 0.0,
                    seed: args.seed,
                    k: 0,
                },
            )
        })
        .collect()
}

/// The mining scenarios: one fig11-style workload through the serial
/// CPU engine, the parallel CPU engine, and the simulated GPU — the
/// thread/engine axis of the suite.
fn mine_scenarios(args: &Args) -> Vec<PerfReport> {
    let (n_items, total_items) = if args.quick {
        (256, 12_000)
    } else {
        (512, 60_000)
    };
    let density = 0.05;
    let k = 64;
    let db = generate(&UniformSpec {
        n_items,
        density,
        total_items,
        seed: args.seed,
    });
    let dataset = DatasetParams {
        n_items,
        total_items,
        density,
        seed: args.seed,
        k,
    };
    let config = |engine: Engine, threads: Parallelism| MinerConfig {
        k,
        engine,
        threads,
        kernel: args.kernel,
        ..Default::default()
    };
    let mut out = Vec::new();
    for (scenario, engine, threads) in [
        ("mine_cpu_serial", Engine::Cpu, Parallelism::Serial),
        ("mine_cpu_parallel", Engine::Cpu, args.threads),
        (
            "mine_gpu_sim",
            Engine::Gpu(gpu_sim::DeviceSpec::gtx285()),
            Parallelism::Serial,
        ),
    ] {
        let report = mine(&db, &config(engine.clone(), threads));
        // CPU engines: host wall of the tile phase + postprocessing
        // (the parallel engine folds in-worker harvesting into the tile
        // phase, so the sum is the comparable quantity). GPU engine:
        // simulated device seconds — deterministic for a fixed dataset.
        let wall = if matches!(engine, Engine::Gpu(_)) {
            report.timings.kernel_s
        } else {
            report.timings.kernel_s + report.timings.postprocess_s
        };
        let backend = args.kernel.resolve().name();
        let engine_name = match &engine {
            Engine::Gpu(_) => "gpu-sim",
            Engine::Cpu => {
                if threads == Parallelism::Serial {
                    "cpu-serial"
                } else {
                    "cpu-parallel"
                }
            }
        };
        out.push(PerfReport::new(
            scenario,
            backend,
            engine_name,
            report.threads,
            wall,
            report.comparisons as u64,
            dataset.clone(),
        ));
    }
    out
}

fn main() {
    let args = parse_args();
    let mut reports = intersect_scenarios(&args);
    reports.extend(mine_scenarios(&args));

    let mut table = Table::new(&[
        "scenario",
        "backend",
        "engine",
        "threads",
        "wall_s",
        "pairs_per_s",
    ]);
    for r in &reports {
        table.row_owned(vec![
            r.scenario.clone(),
            r.backend.clone(),
            r.engine.clone(),
            r.threads.to_string(),
            format!("{:.4}", r.wall_s),
            format!("{:.3e}", r.pairs_per_s),
        ]);
    }
    table.print();

    let serial = reports.iter().find(|r| r.scenario == "mine_cpu_serial");
    let parallel = reports.iter().find(|r| r.scenario == "mine_cpu_parallel");
    if let (Some(s), Some(p)) = (serial, parallel) {
        println!(
            "\nparallel CPU engine: {:.2}x pairs/s over serial ({} threads)",
            p.pairs_per_s / s.pairs_per_s,
            p.threads
        );
    }

    for r in &reports {
        let path = r.write_into(&args.out).expect("failed to write report");
        println!("wrote {}", path.display());
    }

    if let Some(baseline_dir) = &args.check {
        let baselines = load_dir(baseline_dir).expect("failed to load baselines");
        if baselines.is_empty() {
            eprintln!(
                "warning: no BENCH_*.json baselines found in {}",
                baseline_dir.display()
            );
        }
        let failures = regression_failures(&reports, &baselines, args.factor);
        if failures.is_empty() {
            println!(
                "\nregression check vs {} ({} scenarios, factor {}): OK",
                baseline_dir.display(),
                baselines.len(),
                args.factor
            );
        } else {
            eprintln!("\nregression check FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
