//! The perf harness: runs a fixed set of intersect/mine scenarios
//! across kernel backends and thread counts and emits one
//! machine-readable `BENCH_<scenario>.json` per scenario (schema in
//! `bench::report`), so the repository accumulates a comparable perf
//! trajectory and CI can gate on large regressions.
//!
//! ```text
//! perf_suite [--out DIR] [--check BASELINE_DIR] [--factor F]
//!            [--quick] [--seed N] [--kernel NAME] [--threads N]
//!            [--repr NAME] [--load NAME]
//! ```
//!
//! `--check` compares the fresh reports against the baseline JSONs in
//! the given directory (the repo checks conservative floors into
//! `crates/bench/baselines/`) and exits non-zero if any scenario's
//! `pairs_per_s` dropped by more than `--factor` (default 2).
//! Backend scenarios the current CPU cannot run (e.g. `intersect_avx2`
//! on a runner without AVX2) are skipped, and their baselines are
//! excluded from the check rather than reported as vanished.

use batmap::{
    intersect, ArenaBuilder, AsSlots, Batmap, BatmapArena, BatmapParams, EngineOptions,
    KernelBackend, Parallelism, ReprPolicy, SetRepr, SnapshotLoad, TuningProfile, ALL_BACKENDS,
};
use bench::report::{load_dir, regression_failures, DatasetParams, PerfReport};
use datagen::uniform::{generate, UniformSpec};
use datagen::webdocs::{self, WebDocsSpec};
use fim::VerticalDb;
use hpcutil::{scoped_pool, Table};
use pairminer::cpu::swar_throughput_with;
use pairminer::{mine, preprocess_with, Engine, LevelwiseConfig, LevelwiseMiner, MinerConfig};
use rayon::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counting wrapper around the system allocator: the `preprocess_arena`
/// scenario reports heap-allocation counts alongside throughput, so the
/// bench report shows the arena build doing measurably fewer
/// allocations than the per-box baseline (one `Box<[u8]>` per set plus
/// per-set scratch), not just equal-or-better speed.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter
// update has no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations observed so far (monotone counter).
fn allocs() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

struct Args {
    out: PathBuf,
    check: Option<PathBuf>,
    factor: f64,
    quick: bool,
    seed: u64,
    options: EngineOptions,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: PathBuf::from("."),
        check: None,
        factor: 2.0,
        quick: false,
        seed: 0x1DB5,
        options: EngineOptions::auto(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: perf_suite [--out DIR] [--check BASELINE_DIR] [--factor F] \
                 [--quick] [--seed N] plus the engine flags:\n";
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!(
                "{what} takes a value\n{usage}{}",
                batmap::options::FLAGS_USAGE
            );
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => args.out = PathBuf::from(value(&argv, &mut i, "--out")),
            "--check" => args.check = Some(PathBuf::from(value(&argv, &mut i, "--check"))),
            "--factor" => {
                args.factor = value(&argv, &mut i, "--factor")
                    .parse()
                    .expect("--factor takes a float")
            }
            "--seed" => {
                args.seed = value(&argv, &mut i, "--seed")
                    .parse()
                    .expect("--seed takes an integer")
            }
            flag @ ("--kernel" | "--threads" | "--repr" | "--load") => {
                let v = value(&argv, &mut i, flag);
                if let Err(message) = args.options.set_flag(flag, &v) {
                    eprintln!("{message}\n{usage}{}", batmap::options::FLAGS_USAGE);
                    std::process::exit(2);
                }
            }
            "--quick" => args.quick = true,
            other => {
                eprintln!(
                    "unknown argument {other}\n{usage}{}",
                    batmap::options::FLAGS_USAGE
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// The intersect micro-scenarios: the Fig. 11 positional comparison at
/// one pinned core, once per concrete backend available on this CPU —
/// the backend axis of the suite. Returns the reports plus the
/// `(scenario, reason)` pairs for scenarios skipped for lack of
/// hardware support (their baselines are excluded from the regression
/// check, and `--check` logs each exclusion with its reason).
fn intersect_scenarios(args: &Args) -> (Vec<PerfReport>, Vec<(String, String)>) {
    let words: usize = if args.quick { 1 << 16 } else { 1 << 18 };
    let reps = if args.quick { 8 } else { 16 };
    let mut reports = Vec::new();
    let mut skipped: Vec<(String, String)> = Vec::new();
    for backend in ALL_BACKENDS {
        let scenario = format!("intersect_{backend}");
        if !backend.is_available() {
            eprintln!("skipping {scenario}: backend {backend} not available on this CPU");
            skipped.push((
                scenario,
                format!("backend {backend} not available on this CPU"),
            ));
            continue;
        }
        // `swar_throughput_with` times only its comparison loop
        // (input setup and pool construction excluded), returning
        // bytes/s over both arrays; derive the wall from it rather
        // than re-timing around the pool, which would fold rayon
        // setup noise into the regression-checked metric.
        let bytes_per_s = scoped_pool(1, || swar_throughput_with(backend, words, reps));
        let wall = (words * 4 * 2 * reps) as f64 / bytes_per_s;
        reports.push(PerfReport::new(
            scenario,
            backend.name(),
            "swar-sweep",
            1,
            wall,
            (words * reps) as u64,
            DatasetParams {
                n_items: 0,
                total_items: words,
                density: 0.0,
                seed: args.seed,
                k: 0,
            },
        ));
    }
    reports.push(one_vs_many_scenario(args));
    (reports, skipped)
}

/// The batched one-vs-many driver on a block of equal-width batmaps —
/// the batching axis of the suite (the tile executors' row loop in
/// miniature). Uses the `--kernel` choice (default `Auto` = widest
/// available), so the recorded backend tracks the hardware.
fn one_vs_many_scenario(args: &Args) -> PerfReport {
    const CANDIDATES: usize = 64;
    let reps = if args.quick { 40 } else { 200 };
    let (probe, many) = bench::one_vs_many_fixture(CANDIDATES, args.seed, args.options.kernel);
    let mut out = vec![0u64; many.len()];
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        intersect::count_one_vs_many_into(&probe, &many, &mut out);
    }
    let wall = t0.elapsed().as_secs_f64();
    std::hint::black_box(&out);
    PerfReport::new(
        "intersect_one_vs_many",
        args.options.kernel.resolve().name(),
        "batched-1vN",
        1,
        wall,
        (CANDIDATES * reps) as u64,
        DatasetParams {
            n_items: CANDIDATES as u32,
            total_items: bench::ONE_VS_MANY_SET,
            density: 0.0,
            seed: args.seed,
            k: 0,
        },
    )
}

/// The batched one-vs-many driver over **arena-backed views** — the
/// exact shape of the mining tile executors' row loop since the storage
/// refactor (zero-copy `BatmapRef` operands out of one contiguous
/// buffer). Gated separately from `intersect_one_vs_many` so a
/// regression in the view path cannot hide behind the owned path.
fn intersect_arena_scenario(args: &Args) -> PerfReport {
    const CANDIDATES: usize = 64;
    let reps = if args.quick { 40 } else { 200 };
    let (probe, many) = bench::one_vs_many_fixture(CANDIDATES, args.seed, args.options.kernel);
    let mut builder = ArenaBuilder::new(probe.params().clone());
    builder.push(&probe);
    for b in &many {
        builder.push(b);
    }
    let arena = builder.finish();
    let probe_view = arena.get(0);
    let views = arena.views(1..arena.len());
    let mut out = vec![0u64; views.len()];
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        intersect::count_one_vs_many_into(&probe_view, &views, &mut out);
    }
    let wall = t0.elapsed().as_secs_f64();
    std::hint::black_box(&out);
    PerfReport::new(
        "intersect_arena",
        args.options.kernel.resolve().name(),
        "batched-1vN-arena",
        1,
        wall,
        (CANDIDATES * reps) as u64,
        DatasetParams {
            n_items: CANDIDATES as u32,
            total_items: bench::ONE_VS_MANY_SET,
            density: 0.0,
            seed: args.seed,
            k: 0,
        },
    )
}

/// Preprocessing throughput: sets/s built **into the arena** (the
/// shipped two-pass in-place path) vs the pre-refactor per-box baseline
/// (one owned `Batmap` per item, then a width sort). Reports the arena
/// number as the gated scenario and prints the comparison — including
/// heap-allocation counts per run, where the arena path must be
/// strictly leaner — so the bench report documents both halves of the
/// storage claim (fewer allocations, no lost throughput).
fn preprocess_arena_scenario(args: &Args) -> PerfReport {
    let (n_items, total_items) = if args.quick {
        (256u32, 12_000usize)
    } else {
        (512, 60_000)
    };
    let density = 0.05;
    let reps = if args.quick { 5 } else { 8 };
    let db = generate(&UniformSpec {
        n_items,
        density,
        total_items,
        seed: args.seed,
    });
    let v = VerticalDb::from_horizontal(&db);

    let run_arena = || {
        // Pin the legacy pure-batmap corpus: this scenario measures the
        // arena build itself, not the repr policy.
        let pre = preprocess_with(&v, args.seed, 128, args.options.repr(ReprPolicy::Batmap));
        std::hint::black_box(&pre);
        pre.padded_items()
    };

    // Per-box baseline: the pre-arena preprocess, faithfully — one
    // heap-boxed batmap per item built in parallel, positions sorted by
    // width, stats and failures aggregated, batmaps reordered into
    // sorted order (no clones, via Option-take), padding pushed. Same
    // parallelism shape, so the only difference is the storage layer.
    let params = std::sync::Arc::new(
        batmap::BatmapParams::with_options(
            v.m().max(1) as u64,
            args.seed,
            128,
            pairminer::GPU_MIN_SHIFT,
        )
        .with_engine_options(args.options),
    );
    let run_boxed = || {
        let n = v.n_items();
        let outcomes: Vec<batmap::BuildOutcome> = (0..n)
            .into_par_iter()
            .map(|item| batmap::Batmap::build_sorted(params.clone(), v.tidlist(item)))
            .collect();
        let mut positions: Vec<u32> = (0..n).collect();
        positions.sort_by_key(|&i| (outcomes[i as usize].batmap.width_bytes(), i));
        let mut item_to_sorted = vec![0u32; n as usize];
        for (s, &item) in positions.iter().enumerate() {
            item_to_sorted[item as usize] = s as u32;
        }
        let mut stats = batmap::InsertStats::default();
        let mut failed = Vec::new();
        let mut batmaps = Vec::with_capacity(positions.len().next_multiple_of(pairminer::BLOCK));
        let mut slots: Vec<Option<batmap::BuildOutcome>> = outcomes.into_iter().map(Some).collect();
        for (s, &item) in positions.iter().enumerate() {
            let out = slots[item as usize].take().expect("each item used once");
            stats.elements += out.stats.elements;
            stats.moves += out.stats.moves;
            stats.failures += out.stats.failures;
            for &tid in &out.failed {
                failed.push((s as u32, tid));
            }
            batmaps.push(out.batmap);
        }
        while batmaps.len() % pairminer::BLOCK != 0 {
            batmaps.push(batmap::Batmap::build_sorted(params.clone(), &[]).batmap);
        }
        (batmaps, item_to_sorted, failed, stats)
    };
    // Allocation counts first (deterministic), then interleaved timed
    // reps with best-of-reps on both sides — robust against the noise
    // of shared CI runners, where a back-to-back block measurement can
    // swing either comparison by several percent.
    let a0 = allocs();
    let sets = run_arena();
    let arena_allocs = allocs() - a0;
    let b0 = allocs();
    std::hint::black_box(run_boxed());
    let boxed_allocs = allocs() - b0;
    let mut arena_best = f64::INFINITY;
    let mut boxed_best = f64::INFINITY;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        std::hint::black_box(run_arena());
        arena_best = arena_best.min(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        std::hint::black_box(run_boxed());
        boxed_best = boxed_best.min(t.elapsed().as_secs_f64());
    }

    println!(
        "preprocess_arena: {:.3e} sets/s into the arena vs {:.3e} sets/s per-box \
         ({:.2}x); {} vs {} heap allocations per build",
        sets as f64 / arena_best,
        sets as f64 / boxed_best,
        boxed_best / arena_best,
        arena_allocs,
        boxed_allocs,
    );
    assert!(
        arena_allocs < boxed_allocs,
        "arena build must allocate less than the per-box baseline \
         ({arena_allocs} vs {boxed_allocs})"
    );

    PerfReport::new(
        "preprocess_arena",
        args.options.kernel.resolve().name(),
        "arena-build",
        args.options
            .threads
            .resolve_with(rayon::current_num_threads()),
        arena_best,
        sets as u64,
        DatasetParams {
            n_items,
            total_items,
            density,
            seed: args.seed,
            k: 0,
        },
    )
}

/// The mining scenarios: one fig11-style workload through the serial
/// CPU engine, the parallel CPU engine, and the simulated GPU — the
/// thread/engine axis of the suite.
fn mine_scenarios(args: &Args) -> Vec<PerfReport> {
    let (n_items, total_items) = if args.quick {
        (256, 12_000)
    } else {
        (512, 60_000)
    };
    let density = 0.05;
    let k = 64;
    let db = generate(&UniformSpec {
        n_items,
        density,
        total_items,
        seed: args.seed,
    });
    let dataset = DatasetParams {
        n_items,
        total_items,
        density,
        seed: args.seed,
        k,
    };
    let config = |engine: Engine, threads: Parallelism, kernel: KernelBackend| MinerConfig {
        k,
        engine,
        options: args.options.kernel(kernel).threads(threads),
        ..Default::default()
    };
    let mut out = Vec::new();
    for (scenario, engine, threads) in [
        ("mine_cpu_serial", Engine::Cpu, Parallelism::Serial),
        ("mine_cpu_parallel", Engine::Cpu, args.options.threads),
        (
            "mine_gpu_sim",
            Engine::Gpu(gpu_sim::DeviceSpec::gtx285()),
            Parallelism::Serial,
        ),
    ] {
        // The gpu-sim scenario must stay machine-independent: the
        // simulator charges each backend its own amortized op cost, so
        // letting `Auto` resolve per host (avx2 here, swar64 there)
        // would make the same command emit different *simulated*
        // seconds on different CPUs and break the exact baseline. Pin
        // it to the portable swar64 unless the user pinned explicitly
        // (pinned runs are excluded from the gate anyway).
        let kernel =
            if matches!(engine, Engine::Gpu(_)) && args.options.kernel == KernelBackend::Auto {
                KernelBackend::SwarU64
            } else {
                args.options.kernel
            };
        let report = mine(&db, &config(engine.clone(), threads, kernel));
        // CPU engines: host wall of the tile phase + postprocessing
        // (the parallel engine folds in-worker harvesting into the tile
        // phase, so the sum is the comparable quantity). GPU engine:
        // simulated device seconds — deterministic for a fixed dataset
        // and backend (pinned above).
        let wall = if matches!(engine, Engine::Gpu(_)) {
            report.timings.kernel_s
        } else {
            report.timings.kernel_s + report.timings.postprocess_s
        };
        let backend = kernel.resolve().name();
        let engine_name = match &engine {
            Engine::Gpu(_) => "gpu-sim",
            Engine::Cpu => {
                if threads == Parallelism::Serial {
                    "cpu-serial"
                } else {
                    "cpu-parallel"
                }
            }
        };
        out.push(PerfReport::new(
            scenario,
            backend,
            engine_name,
            report.threads,
            wall,
            report.comparisons as u64,
            dataset.clone(),
        ));
    }
    out
}

/// The levelwise scenario: frequent itemsets to depth 4 on d-of-(d+1)
/// multiway batmaps — the §V workload the paper proposes but never
/// evaluates. The regression-checked metric is candidate supports
/// counted per second across levels 3..=4 (the positional-sweep work;
/// the pair stage is gated separately by the `mine_*` scenarios).
fn levelwise_scenario(args: &Args) -> PerfReport {
    const DEPTH: usize = 4;
    let (n_items, total_items, minsup) = if args.quick {
        (24, 12_000, 16u64)
    } else {
        (32, 48_000, 40)
    };
    let density = 0.3;
    let db = generate(&UniformSpec {
        n_items,
        density,
        total_items,
        seed: args.seed,
    });
    let config = LevelwiseConfig {
        depth: DEPTH,
        pair: MinerConfig {
            k: 64,
            minsup,
            engine: Engine::Cpu,
            options: args.options,
            ..Default::default()
        },
        ..Default::default()
    };
    let report = LevelwiseMiner::new(config).mine(&db);
    let work: u64 = report
        .levels
        .iter()
        .filter(|l| l.k > 2)
        .map(|l| l.candidates as u64)
        .sum();
    let wall: f64 = report
        .levels
        .iter()
        .filter(|l| l.k > 2)
        .map(|l| l.wall_s)
        .sum();
    assert!(work > 0, "levelwise scenario generated no candidates");
    let threads = report.pair_report.as_ref().map_or(1, |r| r.threads);
    PerfReport::new(
        "mine_levelwise",
        args.options.kernel.resolve().name(),
        "levelwise",
        threads,
        wall,
        work,
        DatasetParams {
            n_items,
            total_items,
            density,
            seed: args.seed,
            k: 64,
        },
    )
}

/// The hybrid-storage headline scenario: end-to-end pair mining on a
/// zipfian webdocs corpus, hybrid representation policy vs pure batmap.
/// Zipfian corpora are exactly where one layout fits nobody: a dense
/// head (every set ≥ m/32 of the universe), a long sparse tail (raw
/// tidlists beat the r₀-floored batmap width), and a middle band where
/// the batmap sweep wins. Logs the chosen-representation histogram and
/// the speedup, asserts the hybrid run reports identical pairs, and
/// gates on the hybrid wall. Both policies are pinned explicitly, so
/// the scenario is independent of `BATMAP_REPR`.
fn mine_hybrid_zipf_scenario(args: &Args) -> PerfReport {
    let (documents, mean_doc_len, reps) = if args.quick {
        (800usize, 60usize, 3)
    } else {
        (2_000, 80, 5)
    };
    let spec = WebDocsSpec {
        documents,
        mean_doc_len,
        seed: args.seed,
        ..Default::default()
    };
    let db = webdocs::generate(&spec);
    let config = |repr: ReprPolicy| MinerConfig {
        k: 64,
        engine: Engine::Cpu,
        options: args.options.repr(repr),
        ..Default::default()
    };

    // The chosen-representation histogram, from one preprocessing pass
    // with the same parameters the timed hybrid runs use.
    let cfg = config(ReprPolicy::Hybrid);
    let v = VerticalDb::from_horizontal(&db);
    let pre = preprocess_with(
        &v,
        cfg.seed,
        cfg.max_loop,
        args.options.repr(ReprPolicy::Hybrid),
    );
    let hist = pre.repr_histogram();
    println!(
        "mine_hybrid_zipf: {} items stored as {} batmap / {} bitmap / {} tidlist",
        pre.n_items,
        hist[SetRepr::Batmap.tag() as usize],
        hist[SetRepr::Bitmap.tag() as usize],
        hist[SetRepr::Tidlist.tag() as usize],
    );
    assert!(
        hist.iter().all(|&n| n > 0),
        "the zipf corpus must exercise all three representations, got {hist:?}"
    );
    drop(pre);

    // Interleaved best-of-reps on both sides, like `preprocess_arena`.
    let mut hybrid_best = f64::INFINITY;
    let mut batmap_best = f64::INFINITY;
    let mut hybrid_report = None;
    let mut batmap_pairs = None;
    for _ in 0..reps {
        let r = mine(&db, &config(ReprPolicy::Hybrid));
        hybrid_best = hybrid_best.min(r.timings.total_s());
        hybrid_report = Some(r);
        let r = mine(&db, &config(ReprPolicy::Batmap));
        batmap_best = batmap_best.min(r.timings.total_s());
        batmap_pairs = Some(r.pairs);
    }
    let hybrid_report = hybrid_report.expect("reps > 0");
    assert_eq!(
        hybrid_report.pairs,
        batmap_pairs.expect("reps > 0"),
        "hybrid and pure-batmap mining must report identical pairs"
    );
    let speedup = batmap_best / hybrid_best;
    println!(
        "mine_hybrid_zipf: hybrid {hybrid_best:.3}s vs batmap {batmap_best:.3}s \
         end-to-end ({speedup:.2}x)"
    );
    assert!(
        speedup >= 1.15,
        "hybrid storage must beat pure batmap by ≥1.15x on the zipf corpus, got {speedup:.2}x"
    );

    let total_items: usize = (0..v.n_items()).map(|i| v.tidlist(i).len()).sum();
    PerfReport::new(
        "mine_hybrid_zipf",
        args.options.kernel.resolve().name(),
        "cpu-hybrid",
        hybrid_report.threads,
        hybrid_best,
        hybrid_report.comparisons as u64,
        DatasetParams {
            n_items: db.n_items(),
            total_items,
            density: total_items as f64 / (db.n_items() as f64 * documents as f64),
            seed: args.seed,
            k: 64,
        },
    )
}

/// The mixed-representation kernel micro-scenario: every pairing of
/// {batmap, bitmap, tidlist} counted through `count_mixed_with` over
/// arena payload views — the seam the hybrid tile executors run on,
/// gated separately so a regression in one cross-representation path
/// cannot hide behind the (much faster) same-representation ones.
fn intersect_mixed_scenario(args: &Args) -> PerfReport {
    const M: u64 = 4096;
    let reps = if args.quick { 2_000 } else { 10_000 };
    let params = Arc::new(
        BatmapParams::with_options(M, args.seed, 128, pairminer::GPU_MIN_SHIFT)
            .with_engine_options(args.options),
    );
    let mut builder = ArenaBuilder::new(params);
    // One set per representation band: dense (every 2nd element), the
    // batmap middle band (every 16th), and a sparse tail (every 512th).
    for (stride, repr) in [
        (2u64, SetRepr::Bitmap),
        (16, SetRepr::Batmap),
        (512, SetRepr::Tidlist),
    ] {
        let elements: Vec<u32> = (0..M).step_by(stride as usize).map(|x| x as u32).collect();
        builder.push_elements(&elements, repr);
    }
    let arena = builder.finish();
    let views: Vec<batmap::SetView> = arena.payload_views(0..arena.len());
    let mut acc = 0u64;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        for a in &views {
            for b in &views {
                acc += intersect::count_mixed_with(args.options.kernel, a, b);
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    PerfReport::new(
        "intersect_mixed",
        args.options.kernel.resolve().name(),
        "mixed-pairings",
        1,
        wall,
        (views.len() * views.len() * reps) as u64,
        DatasetParams {
            n_items: views.len() as u32,
            total_items: M as usize,
            density: 0.0,
            seed: args.seed,
            k: 0,
        },
    )
}

/// The serving scenario: a snapshot-backed query server under
/// concurrent client load, gated on **batched** queries/s.
///
/// Three measurements over the same hybrid corpus and the same
/// deterministic query mix:
///
/// 1. *sequential* — one client, one request per round trip: every
///    shard queue drains at depth 1, so nothing coalesces (the
///    pre-server baseline: one query at a time);
/// 2. *batched* — `CLIENTS` concurrent clients, each pipelining bursts,
///    admission-queue batching on: workers drain whole bursts and fold
///    count probes sharing a probe set into one-vs-many sweeps;
/// 3. *unbatched* — the same concurrent load with batching disabled
///    (every count runs pairwise), printed for the mechanism
///    attribution.
///
/// Asserts the headline claim (batched concurrent throughput beats
/// one-at-a-time serving by ≥1.2×) and pins every batched response
/// byte-identical to a single-threaded replay on a one-shard engine —
/// coalescing must never change an answer.
fn serve_qps_scenario(args: &Args) -> PerfReport {
    use batmap_server::{proto, Client, EngineConfig, QueryEngine, Request, Response, Server};

    const CLIENTS: usize = 6;
    const HOT_PROBES: u32 = 8;
    let per_client: usize = if args.quick { 192 } else { 768 };
    let (documents, mean_doc_len) = if args.quick { (400, 40) } else { (1_000, 60) };

    // A hybrid snapshot (pinned — the scenario is independent of
    // BATMAP_REPR), so the sweeps exercise the mixed kernels.
    let spec = WebDocsSpec {
        documents,
        mean_doc_len,
        seed: args.seed,
        ..Default::default()
    };
    let db = webdocs::generate(&spec);
    let v = VerticalDb::from_horizontal(&db);
    let pre = preprocess_with(&v, args.seed, 128, args.options.repr(ReprPolicy::Hybrid));
    let n = pre.n_items;
    assert!(n > HOT_PROBES, "corpus too small for the query mix");

    // The deterministic query mix of client `c`: counts against a hot
    // probe set (what coalescing feeds on) plus a sprinkle of
    // membership probes. Every (c, j) pair maps to one fixed request.
    let queries = |c: usize| -> Vec<Request> {
        (0..per_client)
            .map(|j| {
                let x = (c * per_client + j) as u32;
                if j % 16 == 15 {
                    Request::Member {
                        set: (x * 31 + 7) % n,
                        element: (x * 131) % (pre.params.m() as u32),
                    }
                } else {
                    Request::Count {
                        a: (x * 7 + c as u32) % HOT_PROBES,
                        b: (x * 13 + 5) % n,
                    }
                }
            })
            .collect()
    };

    let serve = |batching: bool, concurrent: bool| -> (f64, Vec<Vec<(u64, Response)>>) {
        let engine = QueryEngine::new(
            vec![pre.clone()],
            EngineConfig {
                options: args.options,
                batching,
                ..EngineConfig::default()
            },
        );
        let handle = Server::bind_tcp("127.0.0.1:0")
            .expect("bind ephemeral port")
            .serve(engine);
        let addr = handle.tcp_addr().expect("tcp server has an address");
        let clients = if concurrent { CLIENTS } else { 1 };
        let t0 = std::time::Instant::now();
        let transcripts: Vec<Vec<(u64, Response)>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let queries = queries(c);
                    scope.spawn(move || {
                        let mut client = Client::connect_tcp(addr).expect("connect");
                        let mut transcript = Vec::with_capacity(queries.len());
                        if concurrent {
                            // Pipelined bursts: fill the admission
                            // queues deeply enough to coalesce.
                            for (burst_at, burst) in queries.chunks(64).enumerate() {
                                let responses = client.pipeline(0, burst).expect("pipelined burst");
                                for (j, response) in responses.into_iter().enumerate() {
                                    let id = 1 + (burst_at * 64 + j) as u64;
                                    transcript.push((id, response));
                                }
                            }
                        } else {
                            for (j, query) in queries.iter().enumerate() {
                                let response = client.call(0, query).expect("round trip");
                                transcript.push((1 + j as u64, response));
                            }
                        }
                        transcript
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        let wall = t0.elapsed().as_secs_f64();
        handle.join();
        (wall, transcripts)
    };

    let (seq_wall, _) = serve(true, false);
    let (unbatched_wall, _) = serve(false, true);
    let (batched_wall, transcripts) = serve(true, true);

    let seq_qps = per_client as f64 / seq_wall;
    let unbatched_qps = (CLIENTS * per_client) as f64 / unbatched_wall;
    let batched_qps = (CLIENTS * per_client) as f64 / batched_wall;
    println!(
        "serve_qps: {batched_qps:.0} qps batched vs {unbatched_qps:.0} qps unbatched \
         ({CLIENTS} clients) vs {seq_qps:.0} qps sequential ({:.2}x batched over sequential)",
        batched_qps / seq_qps
    );
    assert!(
        batched_qps >= 1.2 * seq_qps,
        "admission-queue batching must beat one-query-at-a-time serving by ≥1.2x \
         ({batched_qps:.0} vs {seq_qps:.0} qps)"
    );

    // Replay pinning: every response from the concurrent batched run
    // must be byte-identical to a fresh single-threaded, single-shard
    // replay of the same requests. Coalescing is an execution strategy,
    // not a semantics change.
    let replay = QueryEngine::new(
        vec![pre.clone()],
        EngineConfig {
            options: args.options,
            shards: 1,
            ..EngineConfig::default()
        },
    );
    for (c, transcript) in transcripts.iter().enumerate() {
        let queries = queries(c);
        assert_eq!(transcript.len(), queries.len());
        for (&(id, ref served), query) in transcript.iter().zip(&queries) {
            let replayed = replay.query(0, query.clone());
            assert_eq!(
                proto::encode_response(id, served),
                proto::encode_response(id, &replayed),
                "client {c} request {id} diverged from the single-threaded replay"
            );
        }
    }

    let total_items: usize = (0..v.n_items()).map(|i| v.tidlist(i).len()).sum();
    PerfReport::new(
        "serve_qps",
        args.options.kernel.resolve().name(),
        "server-batched",
        CLIENTS,
        batched_wall,
        (CLIENTS * per_client) as u64,
        DatasetParams {
            n_items: db.n_items(),
            total_items,
            density: total_items as f64 / (db.n_items() as f64 * documents as f64),
            seed: args.seed,
            k: 0,
        },
    )
}

/// The degraded-mode serving scenario: the same snapshot-backed server
/// under a deliberate overload — one shard, a small admission-queue cap,
/// and pipelining clients flooding it far faster than the worker drains.
/// The bounded queue must shed a meaningful slice of the load with
/// typed `Response::Overloaded` (never by queueing without limit, never
/// by dropping a connection), and every response that *is* delivered
/// must replay byte-identical on an unbounded single-shard engine.
/// Gated on delivered queries/s under overload.
fn serve_degraded_scenario(args: &Args) -> PerfReport {
    use batmap_server::{proto, Client, EngineConfig, QueryEngine, Request, Response, Server};

    const CLIENTS: usize = 4;
    const HOT_PROBES: u32 = 8;
    let per_client: usize = if args.quick { 512 } else { 2_048 };
    let (documents, mean_doc_len) = if args.quick { (400, 40) } else { (1_000, 60) };

    let spec = WebDocsSpec {
        documents,
        mean_doc_len,
        seed: args.seed,
        ..Default::default()
    };
    let db = webdocs::generate(&spec);
    let v = VerticalDb::from_horizontal(&db);
    let pre = preprocess_with(&v, args.seed, 128, args.options.repr(ReprPolicy::Hybrid));
    let n = pre.n_items;
    assert!(n > HOT_PROBES, "corpus too small for the query mix");

    let queries = |c: usize| -> Vec<Request> {
        (0..per_client)
            .map(|j| {
                let x = (c * per_client + j) as u32;
                Request::Count {
                    a: (x * 7 + c as u32) % HOT_PROBES,
                    b: (x * 13 + 5) % n,
                }
            })
            .collect()
    };

    // One shard with a deliberately tight queue: the drain-everything
    // batching sweep empties it instantly, then the queue refills and
    // overflows while the worker is busy computing. `0` would be the
    // old unbounded behavior; 32 forces the shedding path to carry a
    // large fraction of this load.
    let engine = QueryEngine::new(
        vec![pre.clone()],
        EngineConfig {
            options: args.options,
            shards: 1,
            max_queue_depth: 32,
            ..EngineConfig::default()
        },
    );
    let handle = Server::bind_tcp("127.0.0.1:0")
        .expect("bind ephemeral port")
        .serve(engine);
    let addr = handle.tcp_addr().expect("tcp server has an address");
    let t0 = std::time::Instant::now();
    let transcripts: Vec<Vec<(u64, Response)>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let queries = queries(c);
                scope.spawn(move || {
                    let mut client = Client::connect_tcp(addr).expect("connect");
                    // The whole slice in one pipelined burst — maximum
                    // queue pressure, which is the point.
                    let responses = client.pipeline(0, &queries).expect("pipelined flood");
                    responses
                        .into_iter()
                        .enumerate()
                        .map(|(j, r)| (1 + j as u64, r))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    handle.join();

    let total = (CLIENTS * per_client) as u64;
    let shed: u64 = transcripts
        .iter()
        .flatten()
        .filter(|(_, r)| matches!(r, Response::Overloaded))
        .count() as u64;
    let delivered = total - shed;
    let shed_fraction = shed as f64 / total as f64;
    println!(
        "serve_degraded: {delivered}/{total} delivered at {:.0} qps, \
         {shed} shed ({:.0}% of the flood)",
        delivered as f64 / wall,
        shed_fraction * 100.0
    );
    assert!(
        shed > 0,
        "a queue cap of 32 under a {total}-query flood must shed"
    );
    assert!(
        delivered > 0,
        "overload must degrade service, not deny it entirely"
    );

    // Replay pinning: shedding selects which queries run, it must not
    // change what any query answers. Every delivered response replays
    // byte-identical on an unbounded single-shard engine.
    let replay = QueryEngine::new(
        vec![pre.clone()],
        EngineConfig {
            options: args.options,
            shards: 1,
            ..EngineConfig::default()
        },
    );
    for (c, transcript) in transcripts.iter().enumerate() {
        let queries = queries(c);
        assert_eq!(transcript.len(), queries.len());
        for (&(id, ref served), query) in transcript.iter().zip(&queries) {
            if matches!(served, Response::Overloaded) {
                continue;
            }
            let replayed = replay.query(0, query.clone());
            assert_eq!(
                proto::encode_response(id, served),
                proto::encode_response(id, &replayed),
                "client {c} request {id} diverged under overload"
            );
        }
    }

    let total_items: usize = (0..v.n_items()).map(|i| v.tidlist(i).len()).sum();
    PerfReport::new(
        "serve_degraded",
        args.options.kernel.resolve().name(),
        "server-degraded",
        CLIENTS,
        wall,
        delivered,
        DatasetParams {
            n_items: db.n_items(),
            total_items,
            density: total_items as f64 / (db.n_items() as f64 * documents as f64),
            seed: args.seed,
            k: 0,
        },
    )
}

/// The hardening tax, measured: a disarmed fault point is one relaxed
/// atomic load, and the serving hot path crosses at most a handful of
/// sites per query. Asserts that budget is ≤1% of an actual served
/// query's wall time as measured by the `serve_qps` scenario this run.
fn assert_disarmed_faultpoint_overhead(serve_qps: &PerfReport) {
    // Hot-path sites a single query can cross today: conn read/write,
    // the worker batch site, and one top-k site per shard. 8 is a
    // comfortable over-estimate.
    const SITES_PER_QUERY: f64 = 8.0;
    let reps: u64 = 20_000_000;
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        hpcutil::fault_point!("bench.faultpoint.disarmed");
        std::hint::black_box(());
    }
    let per_hit_s = t0.elapsed().as_secs_f64() / reps as f64;
    let per_query_s = serve_qps.wall_s / serve_qps.work_units as f64;
    let tax = SITES_PER_QUERY * per_hit_s / per_query_s;
    println!(
        "faultpoint overhead: {:.2} ns/site disarmed, {SITES_PER_QUERY} sites = \
         {:.4}% of a {:.2} µs served query",
        per_hit_s * 1e9,
        tax * 100.0,
        per_query_s * 1e6
    );
    assert!(
        tax <= 0.01,
        "disarmed fault points must cost ≤1% of a served query \
         ({:.2} ns/site against {:.2} µs/query)",
        per_hit_s * 1e9,
        per_query_s * 1e6
    );
}

/// The incremental-ingestion scenario: stream timestamped transactions
/// into a [`pairminer::LayeredCorpus`] — delta applies plus periodic
/// compaction — and compare the per-transaction cost against the naive
/// alternative the delta layer exists to kill: rebuilding the whole
/// corpus from scratch after every arrival. The naive cost is sampled
/// at corpus sizes spread across the stream (it grows with the corpus,
/// so a mean over spread sizes is the honest per-event estimate). Gates
/// on delta-path memberships/s and asserts the ≥10x architectural win
/// inline. Pins the hybrid policy, so the scenario is independent of
/// `BATMAP_REPR`.
fn ingest_throughput_scenario(args: &Args) -> PerfReport {
    use datagen::stream::StreamSpec;
    use fim::TransactionDb;
    use pairminer::LayeredCorpus;

    let (n_items, events, naive_samples, compact_every) = if args.quick {
        (300u32, 600usize, 12usize, 150usize)
    } else {
        (600, 2_000, 20, 500)
    };
    let spec = StreamSpec {
        n_items,
        events,
        avg_len: 8,
        alpha: 1.0,
        gap_ms: 0,
        seed: args.seed,
    };
    let stream = spec.generate();
    let options = args.options.repr(ReprPolicy::Hybrid);

    // Delta path: every event lands in its own free slot; deltas fold
    // into a fresh base arena every `compact_every` arrivals (plus a
    // final fold), so the measured wall includes the full compaction
    // amortization story.
    let empty = TransactionDb::new(n_items, vec![Vec::new(); events]);
    let mut corpus = LayeredCorpus::new(&empty, args.seed, 128, options);
    let t0 = std::time::Instant::now();
    let mut memberships = 0u64;
    for (i, event) in stream.iter().enumerate() {
        memberships += corpus
            .insert_txn(i as u32, &event.items)
            .expect("stream slots are free");
        if (i + 1) % compact_every == 0 {
            corpus.compact().expect("unfaulted compaction");
        }
    }
    corpus.compact().expect("final compaction");
    let delta_wall = t0.elapsed().as_secs_f64();
    let per_event_delta = delta_wall / events as f64;

    // Naive rebuild-per-transaction baseline, sampled at sizes spread
    // over the stream: one from-scratch preprocess at each sampled
    // prefix length stands in for the rebuild that policy would do on
    // that arrival.
    let mut naive_wall_sampled = 0.0f64;
    for k in 1..=naive_samples {
        let size = k * events / naive_samples;
        let txns: Vec<Vec<u32>> = stream[..size].iter().map(|e| e.items.clone()).collect();
        let db = TransactionDb::new(n_items, txns);
        let v = VerticalDb::from_horizontal(&db);
        let t = std::time::Instant::now();
        std::hint::black_box(preprocess_with(&v, args.seed, 128, options));
        naive_wall_sampled += t.elapsed().as_secs_f64();
    }
    let per_event_naive = naive_wall_sampled / naive_samples as f64;
    let speedup = per_event_naive / per_event_delta;
    println!(
        "ingest_throughput: {events} events, {memberships} memberships in {delta_wall:.3}s \
         ({:.1} µs/event) vs naive rebuild {:.1} µs/event — {speedup:.1}x",
        per_event_delta * 1e6,
        per_event_naive * 1e6,
    );
    assert!(
        speedup >= 10.0,
        "delta ingestion must sustain ≥10x the naive rebuild-per-transaction \
         baseline, got {speedup:.1}x"
    );

    let total_items: usize = stream.iter().map(|e| e.items.len()).sum();
    PerfReport::new(
        "ingest_throughput",
        args.options.kernel.resolve().name(),
        "delta-ingest",
        1,
        delta_wall,
        memberships,
        DatasetParams {
            n_items,
            total_items,
            density: total_items as f64 / (n_items as f64 * events as f64),
            seed: args.seed,
            k: 0,
        },
    )
}

/// The windowed-mining scenario: a sliding window over the last `W`
/// stream transactions, re-mined to depth 3 every `W` arrivals — the
/// "live dashboards over a moving corpus" loop the write path exists
/// for. The wall includes the pushes, the expiries, the pre-mine
/// compactions, and the levelwise reports; `work_units` is events
/// pushed, so the gated metric is end-to-end stream throughput. Pins
/// the hybrid policy and the CPU engine (GPU-sim requires an all-batmap
/// corpus), so the scenario is independent of `BATMAP_REPR`.
fn mine_windowed_scenario(args: &Args) -> PerfReport {
    use datagen::stream::StreamSpec;
    use pairminer::WindowedMiner;

    let (n_items, events, window) = if args.quick {
        (200u32, 400usize, 128usize)
    } else {
        (400, 1_200, 256)
    };
    let spec = StreamSpec {
        n_items,
        events,
        avg_len: 10,
        alpha: 1.0,
        gap_ms: 0,
        seed: args.seed,
    };
    let stream = spec.generate();
    let options = args.options.repr(ReprPolicy::Hybrid);
    let config = LevelwiseConfig {
        depth: 3,
        pair: MinerConfig {
            engine: Engine::Cpu,
            options,
            ..Default::default()
        },
        ..Default::default()
    };

    let mut miner = WindowedMiner::new(n_items, window, window, args.seed, 128, options);
    let t0 = std::time::Instant::now();
    let mut reports_run = 0u64;
    let mut frequent = 0u64;
    for (i, event) in stream.iter().enumerate() {
        miner.push(&event.items).expect("windowed push");
        if (i + 1) % window == 0 {
            let report = miner.report(config.clone()).expect("windowed mine");
            reports_run += 1;
            frequent += report.itemsets.len() as u64;
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        reports_run >= 2,
        "the stream must be long enough for several window reports"
    );
    assert!(frequent > 0, "windowed mining must find frequent itemsets");
    println!(
        "mine_windowed: {events} events through a {window}-txn window in {wall:.3}s \
         ({reports_run} reports, {frequent} frequent itemsets)"
    );

    let total_items: usize = stream.iter().map(|e| e.items.len()).sum();
    PerfReport::new(
        "mine_windowed",
        args.options.kernel.resolve().name(),
        "cpu-windowed",
        1,
        wall,
        events as u64,
        DatasetParams {
            n_items,
            total_items,
            density: total_items as f64 / (n_items as f64 * events as f64),
            seed: args.seed,
            k: 0,
        },
    )
}

/// The zero-copy cold-start scenario: write a ≥64 MiB corpus snapshot,
/// then time bringing it back into service through both load paths —
/// the eager heap-buffered read (payload read + checksummed up front)
/// and the mmap open (header/directory validated, payload left to
/// fault in). Hard-asserts the tentpole claim: the mmap open is ≥10×
/// faster than the buffered load on this corpus, and both paths serve
/// byte-identical answers. The gated metric is payload bytes over the
/// mmap open + first-query wall — "milliseconds to first answer on a
/// cold multi-MiB corpus".
fn snapshot_load_scenario(args: &Args) -> PerfReport {
    const DISTINCT: usize = 8;
    const TARGET_BYTES: usize = 64 << 20;
    let m: u64 = 2_000_000;
    let set_len: u32 = 120_000;

    let params = Arc::new(
        BatmapParams::new(m, args.seed).with_engine_options(args.options.repr(ReprPolicy::Batmap)),
    );
    // A few distinct wide batmaps, cycled until the arena clears the
    // size floor: building is cheap, and repeated pushes of prebuilt
    // sets keep the setup out of the measured window.
    let distinct: Vec<Batmap> = (0..DISTINCT as u32)
        .map(|d| {
            let elements: Vec<u32> = (0..set_len)
                .map(|i| (i * (m as u32 / set_len)).wrapping_add(d * 131))
                .collect();
            Batmap::build(params.clone(), &elements).batmap
        })
        .collect();
    let mut builder = ArenaBuilder::new(params.clone());
    let mut bytes = 0usize;
    while bytes < TARGET_BYTES {
        let b = &distinct[builder.len() % DISTINCT];
        bytes += b.slot_bytes().len();
        builder.push(b);
    }
    let arena = builder.finish();
    let dir = std::env::temp_dir().join(format!("batmap-perf-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    let path = dir.join("corpus.arena");
    arena.write_to_file(&path).expect("write snapshot");
    let payload_bytes = arena.backing_bytes();
    assert!(
        payload_bytes >= TARGET_BYTES,
        "corpus must clear the 64 MiB floor"
    );
    let first_query = |a: &BatmapArena| -> u64 {
        // One real positional sweep against the widest pair — the
        // "first answer" a cold server produces.
        a.get(0).intersect_count(&a.get(1))
    };

    // Buffered: one open is representative (the read + checksum of the
    // whole payload dominates by orders of magnitude).
    let t0 = std::time::Instant::now();
    let buffered =
        BatmapArena::read_from_file_with(&path, SnapshotLoad::Buffered).expect("buffered load");
    let buffered_load = t0.elapsed().as_secs_f64();
    let buffered_answer = first_query(&buffered);

    // Mmap: open a few times and keep the best; the open is so short
    // that scheduler noise would otherwise dominate the ratio.
    let mut mmap_load = f64::INFINITY;
    let mut mapped = None;
    for _ in 0..5 {
        let t0 = std::time::Instant::now();
        let a = BatmapArena::read_from_file_with(&path, SnapshotLoad::Mmap).expect("mmap load");
        mmap_load = mmap_load.min(t0.elapsed().as_secs_f64());
        mapped = Some(a);
    }
    let mapped = mapped.expect("at least one mmap open");
    let t0 = std::time::Instant::now();
    let mapped_answer = first_query(&mapped);
    let first_query_s = t0.elapsed().as_secs_f64();

    // The zero-copy contract, asserted every run.
    assert_eq!(
        mapped_answer, buffered_answer,
        "load paths must serve identical answers"
    );
    for i in (0..arena.len()).step_by(arena.len() / 7 + 1) {
        assert_eq!(
            mapped.get(i).as_bytes(),
            buffered.get(i).as_bytes(),
            "set {i} must be byte-identical across load paths"
        );
    }
    assert!(mapped.verification_pending() && !buffered.verification_pending());
    mapped
        .verify()
        .expect("deferred checksum over a pristine snapshot");
    assert!(
        buffered_load >= 10.0 * mmap_load,
        "mmap load must be ≥10x faster than buffered on a {payload_bytes}-byte corpus \
         (buffered {buffered_load:.4}s vs mmap {mmap_load:.6}s)"
    );
    println!(
        "snapshot_load: {:.1} MiB corpus, buffered {buffered_load:.4}s, mmap {mmap_load:.6}s \
         ({:.0}x), first query {first_query_s:.6}s",
        payload_bytes as f64 / (1 << 20) as f64,
        buffered_load / mmap_load
    );
    let _ = std::fs::remove_file(&path);
    PerfReport::new(
        "snapshot_load",
        args.options.kernel.resolve().name(),
        "mmap-cold-start",
        1,
        mmap_load + first_query_s,
        payload_bytes as u64,
        DatasetParams {
            n_items: arena.len() as u32,
            total_items: payload_bytes,
            density: 0.0,
            seed: args.seed,
            k: 0,
        },
    )
}

/// The software-prefetch scenario: the batched one-vs-many driver over
/// a candidate block too large for cache, with the autotuned profile's
/// prefetch distance against a prefetch-off profile. The gated arm is
/// the default (prefetching) profile; the off arm is printed for the
/// mechanism attribution, and both arms must count identically.
fn intersect_prefetch_scenario(args: &Args) -> PerfReport {
    const CANDIDATES: usize = 512;
    let reps = if args.quick { 4 } else { 12 };
    let (probe, many) = bench::one_vs_many_fixture(CANDIDATES, args.seed, args.options.kernel);
    let backend = args.options.kernel;
    let run = |profile: TuningProfile| -> (f64, Vec<u64>) {
        let mut out = vec![0u64; many.len()];
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            intersect::count_one_vs_many_tuned(backend, &probe, &many, &mut out, profile);
        }
        (t0.elapsed().as_secs_f64(), out)
    };
    let tuned = TuningProfile::current();
    let off = TuningProfile {
        prefetch_dist: 0,
        ..tuned
    };
    // Warm once so first-touch page faults land outside both arms.
    let _ = run(off);
    let (off_wall, off_counts) = run(off);
    let (tuned_wall, tuned_counts) = run(tuned);
    assert_eq!(
        tuned_counts, off_counts,
        "the prefetch distance must never change counts"
    );
    println!(
        "intersect_prefetch: dist {} {tuned_wall:.4}s vs off {off_wall:.4}s ({:+.1}%)",
        tuned.prefetch_dist,
        (off_wall / tuned_wall - 1.0) * 100.0
    );
    PerfReport::new(
        "intersect_prefetch",
        args.options.kernel.resolve().name(),
        "batched-1vN-prefetch",
        1,
        tuned_wall,
        (CANDIDATES * reps) as u64,
        DatasetParams {
            n_items: CANDIDATES as u32,
            total_items: bench::ONE_VS_MANY_SET,
            density: 0.0,
            seed: args.seed,
            k: 0,
        },
    )
}

fn main() {
    let args = parse_args();
    let (mut reports, mut skipped) = intersect_scenarios(&args);
    reports.push(intersect_arena_scenario(&args));
    reports.push(preprocess_arena_scenario(&args));
    reports.push(intersect_mixed_scenario(&args));
    reports.extend(mine_scenarios(&args));
    reports.push(levelwise_scenario(&args));
    reports.push(mine_hybrid_zipf_scenario(&args));
    let serve_qps = serve_qps_scenario(&args);
    assert_disarmed_faultpoint_overhead(&serve_qps);
    reports.push(serve_qps);
    reports.push(serve_degraded_scenario(&args));
    reports.push(ingest_throughput_scenario(&args));
    reports.push(mine_windowed_scenario(&args));
    reports.push(snapshot_load_scenario(&args));
    reports.push(intersect_prefetch_scenario(&args));
    let kernel_pinned = args.options.kernel != KernelBackend::Auto
        || KernelBackend::Auto.resolve() != KernelBackend::widest_available();
    if kernel_pinned {
        // The checked-in floors for the kernel-sensitive scenarios were
        // recorded under an unpinned default run; any pin — an explicit
        // `--kernel` (even to this host's widest: it un-pins the
        // gpu-sim scenario's deterministic swar64) or a `BATMAP_KERNEL`
        // override steering `Auto` — makes the run an experiment, not
        // the gated configuration. The per-backend `intersect_<name>`
        // scenarios always measure their own backend and stay gated.
        let reason = format!(
            "kernel pinned to {} (--kernel or BATMAP_KERNEL); floor recorded unpinned",
            args.options.kernel.resolve()
        );
        for scenario in [
            "intersect_one_vs_many",
            "intersect_arena",
            "intersect_mixed",
            "mine_cpu_serial",
            "mine_cpu_parallel",
            "mine_gpu_sim",
            "mine_levelwise",
            "mine_hybrid_zipf",
            "serve_qps",
            "serve_degraded",
            "ingest_throughput",
            "mine_windowed",
            "intersect_prefetch",
        ] {
            skipped.push((scenario.to_string(), reason.clone()));
        }
        eprintln!(
            "note: kernel pinned to {} (--kernel or BATMAP_KERNEL) — \
             kernel-sensitive baselines excluded from the check",
            args.options.kernel.resolve()
        );
    }
    let repr_pinned =
        args.options.repr != ReprPolicy::Auto || ReprPolicy::Auto.resolve() != ReprPolicy::Batmap;
    if repr_pinned {
        // The mining floors were recorded under the default pure-batmap
        // corpus; a pinned storage policy (an explicit `--repr`, or a
        // `BATMAP_REPR` override steering `Auto`) changes what those
        // scenarios measure. The hybrid scenarios pin their own
        // policies internally and stay gated (`serve_qps` pins Hybrid);
        // `mine_gpu_sim` forces an all-batmap corpus and is
        // repr-insensitive by construction.
        let reason = format!(
            "repr policy pinned to {} (--repr or BATMAP_REPR); floor recorded under pure batmap",
            args.options.repr.resolve()
        );
        for scenario in ["mine_cpu_serial", "mine_cpu_parallel", "mine_levelwise"] {
            if !skipped.iter().any(|(s, _)| s == scenario) {
                skipped.push((scenario.to_string(), reason.clone()));
            }
        }
        eprintln!(
            "note: repr policy pinned to {} (--repr or BATMAP_REPR) — \
             repr-sensitive baselines excluded from the check",
            args.options.repr.resolve()
        );
    }

    let mut table = Table::new(&[
        "scenario",
        "backend",
        "engine",
        "threads",
        "wall_s",
        "pairs_per_s",
    ]);
    for r in &reports {
        table.row_owned(vec![
            r.scenario.clone(),
            r.backend.clone(),
            r.engine.clone(),
            r.threads.to_string(),
            format!("{:.4}", r.wall_s),
            format!("{:.3e}", r.pairs_per_s),
        ]);
    }
    table.print();

    let serial = reports.iter().find(|r| r.scenario == "mine_cpu_serial");
    let parallel = reports.iter().find(|r| r.scenario == "mine_cpu_parallel");
    if let (Some(s), Some(p)) = (serial, parallel) {
        println!(
            "\nparallel CPU engine: {:.2}x pairs/s over serial ({} threads)",
            p.pairs_per_s / s.pairs_per_s,
            p.threads
        );
    }

    for r in &reports {
        let path = r.write_into(&args.out).expect("failed to write report");
        println!("wrote {}", path.display());
    }

    if let Some(baseline_dir) = &args.check {
        let mut baselines = load_dir(baseline_dir).expect("failed to load baselines");
        // A baseline this machine cannot reproduce is a skip, not a
        // vanished scenario: either its backend scenario was skipped
        // above (unavailable backend / pinned kernel), or the floor was
        // *recorded* under a backend this CPU lacks (e.g. the
        // `intersect_one_vs_many` floor records avx2; a non-AVX2 runner
        // resolves Auto to something 2-4x slower, which would eat the
        // whole --factor margin). The gate still catches scenarios that
        // silently disappear for any other reason.
        baselines.retain(|b| {
            let reason = skipped
                .iter()
                .find(|(scenario, _)| *scenario == b.scenario)
                .map(|(_, reason)| reason.clone())
                .or_else(|| {
                    KernelBackend::from_name(&b.backend)
                        .filter(|backend| !backend.is_available())
                        .map(|backend| {
                            format!(
                                "floor recorded under backend {backend}, unavailable on this CPU"
                            )
                        })
                });
            match reason {
                Some(reason) => {
                    println!(
                        "baseline `{}` excluded from the check: {reason}",
                        b.scenario
                    );
                    false
                }
                None => true,
            }
        });
        if baselines.is_empty() {
            eprintln!(
                "warning: no BENCH_*.json baselines found in {}",
                baseline_dir.display()
            );
        }
        let failures = regression_failures(&reports, &baselines, args.factor);
        if failures.is_empty() {
            println!(
                "\nregression check vs {} ({} scenarios, factor {}): OK",
                baseline_dir.display(),
                baselines.len(),
                args.factor
            );
        } else {
            eprintln!("\nregression check FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
