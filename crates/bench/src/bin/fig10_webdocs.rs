//! Figure 10: computation time on WebDocs prefixes.
//!
//! The real corpus is substituted by the Zipf+Heaps generator (DESIGN.md
//! §2): the experiment's essentials — the number of distinct items grows
//! rapidly with prefix size — are preserved. Paper's shape: Apriori's
//! time explodes on small prefixes already (its memory is quadratic in
//! the fast-growing vocabulary); FP-growth lasts longer; the GPU
//! algorithm solves the largest instance.

use bench::{fmt_opt_secs, recommended_minsup, HarnessConfig};
use datagen::webdocs::{self, WebDocsSpec};
use fim::{apriori, fpgrowth};
use hpcutil::{timer, Table};
use pairminer::{mine, MinerConfig};

fn main() {
    let cfg = HarnessConfig::from_args();
    // Paper prefixes: 1600..51200 lines. Scaled default: 1/16 of that.
    let prefixes: Vec<usize> = if cfg.full {
        vec![1_600, 3_200, 6_400, 12_800, 25_600, 51_200]
    } else if cfg.quick {
        vec![100, 200, 400]
    } else {
        vec![100, 200, 400, 800, 1_600, 3_200]
    };
    let spec = WebDocsSpec {
        documents: *prefixes.last().unwrap(),
        mean_doc_len: if cfg.full { 177 } else { 60 },
        seed: cfg.seed,
        ..Default::default()
    };
    println!(
        "Figure 10 reproduction: synthetic WebDocs prefixes (docs={}, mean len={})",
        spec.documents, spec.mean_doc_len
    );
    let corpus = webdocs::generate(&spec);
    let mut table = Table::new(&["prefix", "distinct", "gpu_sim_s", "apriori_s", "fpgrowth_s"]);
    for &lines in &prefixes {
        let raw = webdocs::prefix(&corpus, lines);
        // Drop zero-support ids so n reflects the prefix's vocabulary
        // (all miners are compared on the same pruned instance).
        let (db, _) = raw.prune_infrequent(1);
        let distinct = db.n_items();
        let minsup = recommended_minsup(&db);
        let report = mine(
            &db,
            &MinerConfig {
                minsup,
                options: cfg.options,
                ..Default::default()
            },
        );
        let ap = match apriori::mine_pairs_capped(&db, minsup, cfg.apriori_budget) {
            Ok(_) => Some(timer::time(|| apriori::mine_pairs(&db, minsup)).1),
            Err(_) => None,
        };
        let (_, fp) = timer::time(|| fpgrowth::mine_pairs(&db, minsup));
        table.row_owned(vec![
            lines.to_string(),
            distinct.to_string(),
            format!("{:.4}", report.timings.kernel_s),
            fmt_opt_secs(ap, "OOM/trash"),
            format!("{fp:.3}"),
        ]);
    }
    table.print();
    println!("\nshape check: distinct items grow rapidly with prefix size; apriori");
    println!("explodes first; the gpu series solves the largest prefix.");
}
