//! §II-B empirics: insertion transcript lengths and failure rates vs
//! the table slack ε.
//!
//! The paper proves (for range `r ≥ (2+ε)n`): expected transcript
//! length O(1/ε), failure probability O((ε³nr)⁻¹). This binary sweeps
//! the load by varying set size against a fixed power-of-two range and
//! prints the observed statistics, plus a MaxLoop column showing how a
//! small bound trades construction work for `F_b` traffic.
//!
//! Collisions require sparse sets (`m ≫ r`): when the universe fits the
//! table, the permutation hash is injective and insertion is trivial —
//! the sweep is built in that regime.

use batmap::analysis::{run, AnalysisConfig};
use bench::HarnessConfig;
use hpcutil::Table;

fn main() {
    let cfg = HarnessConfig::from_args();
    let m: u64 = 1 << 18; // sparse regime (m >> r) with a small compression floor
    let trials = if cfg.quick { 2 } else { 6 };
    println!("§II-B insertion analysis: m = {m}, {trials} trials per row\n");

    println!("-- transcript length and failures vs slack (MaxLoop = 128) --");
    let mut t = Table::new(&[
        "set_size",
        "range",
        "slack_eps",
        "moves/elem",
        "max_transcript",
        "failure_rate",
    ]);
    // Set sizes walking up to a range boundary: slack shrinks, then the
    // next power of two resets it.
    for set_size in [1100usize, 1600, 2049, 3000, 4095, 4097, 6000, 8191] {
        let report = run(AnalysisConfig {
            m,
            set_size,
            trials,
            max_loop: 128,
        });
        t.row_owned(vec![
            set_size.to_string(),
            report.range.to_string(),
            format!("{:.2}", report.epsilon),
            format!("{:.2}", report.mean_moves_per_element),
            report.max_transcript.to_string(),
            format!("{:.2e}", report.failure_rate()),
        ]);
    }
    t.print();

    println!("\n-- failure rate vs MaxLoop at fixed slack (set 4095, r 8192) --");
    let mut t2 = Table::new(&["max_loop", "moves/elem", "failure_rate"]);
    for max_loop in [1u32, 2, 4, 8, 32, 128] {
        let report = run(AnalysisConfig {
            m,
            set_size: 4095,
            trials,
            max_loop,
        });
        t2.row_owned(vec![
            max_loop.to_string(),
            format!("{:.2}", report.mean_moves_per_element),
            format!("{:.2e}", report.failure_rate()),
        ]);
    }
    t2.print();
    println!("\nshape check: moves/elem grows as slack shrinks toward the power-of-two");
    println!("boundary (the O(1/eps) law) and resets after it; failures vanish for");
    println!("moderate MaxLoop (the O((eps^3 n r)^-1) bound) and appear only when the");
    println!("bound is cut to a handful of moves — the regime the F_b path exists for.");
}
