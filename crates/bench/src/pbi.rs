//! The PBI-GPU baseline (Fang et al. \[11\], §I-B.2a): full-bitmap
//! vertical representation, pair support by AND + popcount, on the
//! simulated GPU.
//!
//! Same tile/staging structure as the batmap kernel, but every item's
//! row is a full `m`-bit bitmap: traffic per pair is `2·m/8` bytes
//! **independent of density**, which is exactly why the paper's §I-B
//! estimate has PBI losing on sparse data (all-zero words still move).

use fim::BitmapIndex;
use gpu_sim::{dispatch, DeviceSpec, GlobalBuffer, GroupCtx, Kernel, LaunchReport, NdRange};

/// Ops per AND+popcount word comparison.
const OPS_PER_AND: u64 = 3;
/// Per-thread per-slice loop overhead.
const OPS_LOOP: u64 = 8;

/// Bitmap rows resident in (simulated) device memory.
#[derive(Debug)]
pub struct PbiDeviceData {
    /// Row-major bit matrix as 32-bit words.
    pub buffer: GlobalBuffer,
    /// Words per item row (padded to a multiple of 16 for slicing).
    pub row_words: usize,
    /// Number of item rows (padded to a multiple of 16).
    pub items: usize,
}

impl PbiDeviceData {
    /// Pack a [`BitmapIndex`] for upload, padding rows to 16-word
    /// multiples and the item count to a 16-row multiple.
    pub fn upload(index: &BitmapIndex) -> Self {
        let row_words = (index.words_per_row() * 2).next_multiple_of(16);
        let items = (index.n_items() as usize).next_multiple_of(16);
        let mut words = vec![0u32; row_words * items];
        for item in 0..index.n_items() {
            let row = index.row(item);
            let base = item as usize * row_words;
            for (w, &v) in row.iter().enumerate() {
                words[base + 2 * w] = v as u32;
                words[base + 2 * w + 1] = (v >> 32) as u32;
            }
        }
        PbiDeviceData {
            buffer: GlobalBuffer::new(words),
            row_words,
            items,
        }
    }
}

/// The AND+popcount comparison kernel over one square tile of items.
struct PbiKernel<'a> {
    data: &'a PbiDeviceData,
}

impl Kernel for PbiKernel<'_> {
    fn shared_words(&self) -> usize {
        2 * 16 * 16
    }

    fn run_group(&self, ctx: &mut GroupCtx<'_>) {
        let g = ctx.group_id();
        let row0 = g[1] * 16;
        let col0 = g[0] * 16;
        let slices = self.data.row_words / 16;
        let mut counts = [[0u64; 16]; 16];
        for s in 0..slices {
            for r in 0..16 {
                let base = (row0 + r) * self.data.row_words + s * 16;
                let words = ctx.load_seq(&self.data.buffer, base, 16);
                ctx.shared()
                    .region_mut(r * 16..r * 16 + 16)
                    .copy_from_slice(words);
            }
            for c in 0..16 {
                let base = (col0 + c) * self.data.row_words + s * 16;
                let words = ctx.load_seq(&self.data.buffer, base, 16);
                ctx.shared()
                    .region_mut(256 + c * 16..256 + c * 16 + 16)
                    .copy_from_slice(words);
            }
            ctx.shared_ops(512);
            ctx.barrier();
            for (li, row) in counts.iter_mut().enumerate() {
                for (lj, out) in row.iter_mut().enumerate() {
                    let mut acc = 0u64;
                    for w in 0..16 {
                        acc += (ctx.shared().read(li * 16 + w)
                            & ctx.shared().read(256 + lj * 16 + w))
                        .count_ones() as u64;
                    }
                    *out += acc;
                }
            }
            ctx.shared_ops(256 * 32);
            ctx.ops(256 * (16 * OPS_PER_AND + OPS_LOOP));
            ctx.barrier();
        }
        for (li, row) in counts.iter().enumerate() {
            let out_base = (row0 + li) * self.data.items + col0;
            ctx.store_seq(out_base, row);
        }
    }
}

/// Run the full all-pairs PBI comparison; returns the dense counts
/// (`items × items`, padded) and the launch report.
pub fn run_pbi(device: &DeviceSpec, data: &PbiDeviceData) -> (Vec<u64>, LaunchReport) {
    let kernel = PbiKernel { data };
    let range = NdRange::d2([data.items, data.items], [16, 16]);
    let report = dispatch(device, &kernel, range);
    let mut counts = vec![0u64; data.items * data.items];
    report.scatter_into(&mut counts);
    (counts, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim::{TransactionDb, VerticalDb};

    fn index() -> (TransactionDb, BitmapIndex) {
        let db = TransactionDb::new(
            20,
            (0..400usize)
                .map(|t| {
                    (0..20)
                        .filter(|&i| (t + i as usize).is_multiple_of(4))
                        .collect()
                })
                .collect(),
        );
        let v = VerticalDb::from_horizontal(&db);
        (db, BitmapIndex::from_vertical(&v))
    }

    #[test]
    fn pbi_counts_match_cpu_bitmaps() {
        let (_, idx) = index();
        let data = PbiDeviceData::upload(&idx);
        let (counts, _) = run_pbi(&DeviceSpec::gtx285(), &data);
        for i in 0..idx.n_items() {
            for j in 0..idx.n_items() {
                let expect = idx.pair_support(i, j);
                assert_eq!(
                    counts[i as usize * data.items + j as usize],
                    expect,
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn traffic_independent_of_density() {
        // Same m, same n, very different densities → identical bus
        // bytes (the §I-B argument).
        let mk = |modulus: usize| {
            let db = TransactionDb::new(
                16,
                (0..512usize)
                    .map(|t| {
                        (0..16)
                            .filter(|&i| (t + i as usize).is_multiple_of(modulus))
                            .collect()
                    })
                    .collect(),
            );
            let v = VerticalDb::from_horizontal(&db);
            let data = PbiDeviceData::upload(&BitmapIndex::from_vertical(&v));
            let (_, report) = run_pbi(&DeviceSpec::gtx285(), &data);
            report.stats.bus_bytes
        };
        assert_eq!(mk(2), mk(50));
    }
}
