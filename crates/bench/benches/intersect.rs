//! Head-to-head intersection count: batmap positional sweep (one entry
//! per match-count backend) vs sorted merge vs bitmap AND, on the same
//! underlying sets (the paper's core claim at micro scale).

use batmap::{available_backends, Batmap, BatmapParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fim::{merge, BitmapIndex, VerticalDb};
use std::hint::black_box;
use std::sync::Arc;

fn bench_intersect(c: &mut Criterion) {
    let m = 100_000u32;
    let size = 5_000usize;
    let a: Vec<u32> = (0..size as u32).map(|i| i * (m / size as u32)).collect();
    let b: Vec<u32> = (0..size as u32)
        .map(|i| i * (m / size as u32) + i % 7)
        .collect();
    let mut bs = b.clone();
    bs.sort_unstable();
    bs.dedup();

    let params = Arc::new(BatmapParams::new(m as u64, 0xCAFE));
    let ba = Batmap::build(params.clone(), &a).batmap;
    let bb = Batmap::build(params.clone(), &bs).batmap;
    let v = VerticalDb::new(m, vec![a.clone(), bs.clone()]);
    let idx = BitmapIndex::from_vertical(&v);

    let mut g = c.benchmark_group("intersect_count");
    g.throughput(Throughput::Elements((2 * size) as u64));
    for backend in available_backends() {
        let kernel = backend.kernel();
        let name = format!("batmap_positional_{}", backend.name());
        g.bench_function(BenchmarkId::new(name, size), |bench| {
            bench.iter(|| black_box(ba.intersect_count_with(kernel, &bb)))
        });
    }
    g.bench_function(BenchmarkId::new("sorted_merge", size), |bench| {
        bench.iter(|| black_box(merge::count_branchy(&a, &bs)))
    });
    g.bench_function(BenchmarkId::new("bitmap_and", size), |bench| {
        bench.iter(|| black_box(idx.pair_support(0, 1)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_intersect
}
criterion_main!(benches);
