//! Multiway intersection (§V extension): the d-of-(d+1) positional
//! sweep vs probe counting on ordinary batmaps, for k = 2, 3, 4.

use batmap::{intersect_count_probe, Batmap, BatmapParams, MultiwayBatmap, MultiwayParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_multiway(c: &mut Criterion) {
    let m = 1 << 17;
    let sets: Vec<Vec<u32>> = [2u32, 3, 5, 7]
        .iter()
        .map(|&q| (0..m).filter(|x| x % q == 0).collect())
        .collect();
    let mp = Arc::new(MultiwayParams::new(m as u64, 4, 0x3A7));
    let mmaps: Vec<MultiwayBatmap> = sets
        .iter()
        .map(|s| MultiwayBatmap::build(mp.clone(), s).expect("load is safe"))
        .collect();
    let pp = Arc::new(BatmapParams::new(m as u64, 0x3A8));
    let pmaps: Vec<Batmap> = sets
        .iter()
        .map(|s| Batmap::build_sorted(pp.clone(), s).batmap)
        .collect();
    let mut g = c.benchmark_group("multiway");
    for k in [2usize, 3, 4] {
        let mrefs: Vec<&MultiwayBatmap> = mmaps[..k].iter().collect();
        let prefs: Vec<&Batmap> = pmaps[..k].iter().collect();
        g.bench_function(BenchmarkId::new("d_of_d1_sweep", k), |b| {
            b.iter(|| black_box(MultiwayBatmap::intersect_count(&mrefs)))
        });
        g.bench_function(BenchmarkId::new("probe_2of3", k), |b| {
            b.iter(|| black_box(intersect_count_probe(&prefs)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_multiway
}
criterion_main!(benches);
