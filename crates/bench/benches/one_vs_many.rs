//! Batched one-vs-many intersection driver: batch-size sweep.
//!
//! Measures `batmap::intersect::count_one_vs_many_with` against the
//! naive per-pair loop it replaced, for growing candidate batches, per
//! available backend. The batched driver dispatches the backend once
//! per batch and sweeps equal-width candidates in register-blocked
//! groups (each probe register load amortized across the block), so the
//! gap over the per-pair loop should widen with the batch size — that
//! trajectory is the point of this bench.

use batmap::{available_backends, intersect, KernelBackend};
use bench::one_vs_many_fixture;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_one_vs_many(c: &mut Criterion) {
    let mut g = c.benchmark_group("one_vs_many");
    for batch in [1usize, 4, 16, 64] {
        // The same workload `perf_suite`'s `intersect_one_vs_many`
        // scenario measures, so the trajectories stay comparable.
        let (probe, many) = one_vs_many_fixture(batch, 0x1A7E, KernelBackend::Auto);
        // Both arrays of every comparison count (the repo convention —
        // see benches/{swar,intersect}): `batch` comparisons, each over
        // probe-width + candidate-width bytes. Counting the probe once
        // would understate large batches ~2x vs batch=1 and skew
        // exactly the batch-size trajectory this bench exists to show.
        g.throughput(Throughput::Bytes((2 * batch * probe.width_bytes()) as u64));
        for backend in available_backends() {
            g.bench_function(
                BenchmarkId::new(format!("batched_{}", backend.name()), batch),
                |bench| {
                    let mut out = vec![0u64; many.len()];
                    bench.iter(|| {
                        intersect::count_one_vs_many_with(backend, &probe, &many, &mut out);
                        black_box(out[0])
                    })
                },
            );
        }
        // The per-pair loop the driver replaced: one backend dispatch
        // and one fingerprint check per pair (monomorphized since this
        // same change, so the batched driver's win comes from per-batch
        // dispatch and register-blocked probe reuse, not from removed
        // virtual calls).
        g.bench_function(BenchmarkId::new("per_pair_auto", batch), |bench| {
            bench.iter(|| {
                let total: u64 = many.iter().map(|b| probe.intersect_count(b)).sum();
                black_box(total)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_one_vs_many
}
criterion_main!(benches);
