//! Pair-mining baselines head to head on one instance: Apriori,
//! FP-growth, Eclat (tidlist merging), bitmap AND, and the full batmap
//! pipeline on the CPU engine.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::uniform::{generate, UniformSpec};
use fim::{apriori, eclat, fpgrowth, BitmapIndex, VerticalDb};
use pairminer::{mine, Engine, MinerConfig};
use std::hint::black_box;

fn bench_miners(c: &mut Criterion) {
    let db = generate(&UniformSpec {
        n_items: 200,
        density: 0.05,
        total_items: 50_000,
        seed: 0xF00D,
    });
    let v = VerticalDb::from_horizontal(&db);
    let idx = BitmapIndex::from_vertical(&v);
    let mut g = c.benchmark_group("pair_miners_n200_d5pct");
    g.bench_function("apriori", |b| {
        b.iter(|| black_box(apriori::mine_pairs(&db, 1).len()))
    });
    g.bench_function("fpgrowth", |b| {
        b.iter(|| black_box(fpgrowth::mine_pairs(&db, 1).len()))
    });
    g.bench_function("eclat_merge", |b| {
        b.iter(|| black_box(eclat::mine_pairs(&v, 1).len()))
    });
    g.bench_function("bitmap_and", |b| {
        b.iter(|| black_box(idx.mine_pairs(1).len()))
    });
    g.bench_function("batmap_cpu_pipeline", |b| {
        let cfg = MinerConfig {
            engine: Engine::Cpu,
            ..Default::default()
        };
        b.iter(|| black_box(mine(&db, &cfg).pairs.len()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_miners
}
criterion_main!(benches);
