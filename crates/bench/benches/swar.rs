//! Match-count kernel micro-benchmarks, on a non-cache-resident working
//! set.
//!
//! Two axes:
//! * **backend** — every [`batmap::MatchKernel`] backend available on
//!   this CPU (scalar reference, the paper's u32 formulation, the u64
//!   popcount widening, and the SSE2/AVX2 SIMD kernels where the
//!   hardware has them), dispatched exactly as the intersection hot
//!   path does;
//! * **dispatch ablation** — the raw u32 formulation called statically,
//!   to show the trait-object indirection costs nothing measurable at
//!   slice granularity.

use batmap::{available_backends, swar};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn data(words: usize) -> (Vec<u8>, Vec<u8>) {
    let a: Vec<u8> = (0..words)
        .flat_map(|i| (i as u32).wrapping_mul(2654435761).to_le_bytes())
        .collect();
    let b: Vec<u8> = (0..words)
        .flat_map(|i| (i as u32).wrapping_mul(40503).to_le_bytes())
        .collect();
    (a, b)
}

fn bench_swar(c: &mut Criterion) {
    let words = 1 << 18; // 1 MiB per array
    let (bytes_a, bytes_b) = data(words);
    let mut g = c.benchmark_group("swar");
    g.throughput(Throughput::Bytes((words * 8) as u64));
    // The backend axis: the same dispatch the intersection path uses.
    // Unavailable backends (e.g. avx2 on older CPUs) are skipped, not
    // silently downgraded into duplicate measurements.
    for backend in available_backends() {
        let kernel = backend.kernel();
        g.bench_function(BenchmarkId::new(backend.name(), words), |bench| {
            bench.iter(|| black_box(kernel.count_equal_width(&bytes_a, &bytes_b)))
        });
    }
    // Dispatch ablation: the raw u32 formulation without the trait.
    g.bench_function(BenchmarkId::new("u32_paper_static", words), |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for (cx, cy) in bytes_a.chunks_exact(4).zip(bytes_b.chunks_exact(4)) {
                let x = u32::from_le_bytes(cx.try_into().unwrap());
                let y = u32::from_le_bytes(cy.try_into().unwrap());
                acc += swar::match_count_u32(x, y) as u64;
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_swar
}
criterion_main!(benches);
