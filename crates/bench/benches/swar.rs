//! SWAR kernel micro-benchmarks: the paper's u32 formulation vs the u64
//! popcount widening vs the branchy scalar reference, on a
//! non-cache-resident working set.

use batmap::swar;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn data(words: usize) -> (Vec<u32>, Vec<u32>) {
    let a: Vec<u32> = (0..words).map(|i| (i as u32).wrapping_mul(2654435761)).collect();
    let b: Vec<u32> = (0..words).map(|i| (i as u32).wrapping_mul(40503)).collect();
    (a, b)
}

fn bench_swar(c: &mut Criterion) {
    let words = 1 << 18; // 1 MiB per array
    let (a, b) = data(words);
    let bytes_a: Vec<u8> = a.iter().flat_map(|w| w.to_le_bytes()).collect();
    let bytes_b: Vec<u8> = b.iter().flat_map(|w| w.to_le_bytes()).collect();
    let mut g = c.benchmark_group("swar");
    g.throughput(Throughput::Bytes((words * 8) as u64));
    g.bench_function(BenchmarkId::new("u32_paper", words), |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for (&x, &y) in a.iter().zip(&b) {
                acc += swar::match_count_u32(x, y) as u64;
            }
            black_box(acc)
        })
    });
    g.bench_function(BenchmarkId::new("u64_popcount", words), |bench| {
        bench.iter(|| black_box(swar::match_count_slices(&bytes_a, &bytes_b)))
    });
    g.bench_function(BenchmarkId::new("scalar_branchy", words), |bench| {
        bench.iter(|| black_box(swar::match_count_bytes(&bytes_a, &bytes_b)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_swar
}
criterion_main!(benches);
