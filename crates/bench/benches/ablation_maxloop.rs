//! Ablation: the `MaxLoop` insertion bound (§II-A).
//!
//! Small bounds fail more insertions (pushing work to the `M_{p,q}`
//! side path); large bounds chase longer eviction chains. This bench
//! measures construction time across bounds on *sparse* sets (where
//! collisions actually occur; with `m ≤ r` the permutation is injective
//! and `MaxLoop` is irrelevant). Failure-rate curves live in
//! `batmap::analysis` and its tests.

use batmap::{Batmap, BatmapParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn bench_maxloop(c: &mut Criterion) {
    let m = 500_000u64;
    let size = 4_000usize; // r = 8192 << m: real collisions
    let elements: Vec<u32> = (0..size as u32)
        .map(|i| (i as u64 * (m / size as u64)) as u32)
        .collect();
    let mut g = c.benchmark_group("ablation_maxloop");
    g.throughput(Throughput::Elements(size as u64));
    for max_loop in [1u32, 4, 16, 128] {
        let params = Arc::new(BatmapParams::with_max_loop(m, 0xAB1A, max_loop));
        g.bench_function(BenchmarkId::new("build", max_loop), |b| {
            b.iter(|| {
                let out = Batmap::build_sorted(params.clone(), &elements);
                black_box((out.batmap.len(), out.failed.len()))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_maxloop
}
criterion_main!(benches);
