//! Tile execution: the simulated-GPU kernel dispatch vs the real
//! multicore CPU path, per tile (host wall time of the simulation is
//! *not* the simulated device time — this bench tracks harness cost;
//! the figure binaries report simulated seconds).

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::uniform::{generate, UniformSpec};
use fim::VerticalDb;
use gpu_sim::DeviceSpec;
use pairminer::cpu::run_tile_cpu;
use pairminer::gpu::{run_tile, DeviceData};
use pairminer::{preprocess, schedule};
use std::hint::black_box;

fn bench_tiles(c: &mut Criterion) {
    let db = generate(&UniformSpec {
        n_items: 64,
        density: 0.05,
        total_items: 80_000,
        seed: 0x7117,
    });
    let v = VerticalDb::from_horizontal(&db);
    let pre = preprocess(&v, 1, 128);
    let data = DeviceData::upload(&pre);
    let device = DeviceSpec::gtx285();
    let tile = schedule(pre.padded_items(), 2048)[0];
    let mut g = c.benchmark_group("tile_64items");
    g.bench_function("gpu_sim_dispatch", |b| {
        b.iter(|| black_box(run_tile(&device, &data, tile).counts.len()))
    });
    g.bench_function("cpu_rayon", |b| {
        b.iter(|| black_box(run_tile_cpu(&pre, &tile).len()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_tiles
}
criterion_main!(benches);
