//! Ablation: does the indicator-bit exactness trick (§II, Fig. 3) cost
//! anything at comparison time?
//!
//! The full kernel ANDs the equality mask with `(x|y) & 0x80…80`; the
//! keys-only variant skips that. Expectation: indistinguishable
//! throughput — the exactness of batmap counting is free on the hot
//! path (its cost lives in the one extra bit of storage).

use batmap::swar;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_indicator(c: &mut Criterion) {
    let words = 1 << 18;
    let a: Vec<u32> = (0..words)
        .map(|i| (i as u32).wrapping_mul(2654435761))
        .collect();
    let b: Vec<u32> = (0..words).map(|i| (i as u32).wrapping_mul(40503)).collect();
    let mut g = c.benchmark_group("ablation_indicator");
    g.throughput(Throughput::Bytes((words * 8) as u64));
    g.bench_function("full_with_indicator", |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for (&x, &y) in a.iter().zip(&b) {
                acc += swar::match_count_u32(x, y) as u64;
            }
            black_box(acc)
        })
    });
    g.bench_function("keys_only", |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for (&x, &y) in a.iter().zip(&b) {
                acc += swar::match_count_u32_keys_only(x, y) as u64;
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_indicator
}
criterion_main!(benches);
