//! Set-representation shoot-out across densities: batmap vs plain
//! bitmap vs WAH compressed bitmap vs sorted merge — the §I-B
//! positioning argument as a measurement.

use batmap::{Batmap, BatmapParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fim::{merge, wah::WahBitmap, BitmapIndex, VerticalDb};
use std::hint::black_box;
use std::sync::Arc;

fn sets(m: u32, density_recip: u32) -> (Vec<u32>, Vec<u32>) {
    let a: Vec<u32> = (0..m).step_by(density_recip as usize).collect();
    let b: Vec<u32> = (0..m)
        .filter(|x| x.wrapping_mul(2654435761) % density_recip == 0)
        .collect();
    (a, b)
}

fn bench_formats(c: &mut Criterion) {
    let m = 1 << 18;
    for density_recip in [8u32, 128] {
        let (a, b) = sets(m, density_recip);
        let params = Arc::new(BatmapParams::new(m as u64, 0xF0F));
        let ba = Batmap::build_sorted(params.clone(), &a).batmap;
        let bb = Batmap::build_sorted(params.clone(), &b).batmap;
        let idx = BitmapIndex::from_vertical(&VerticalDb::new(m, vec![a.clone(), b.clone()]));
        let wa = WahBitmap::from_sorted(m, &a);
        let wb = WahBitmap::from_sorted(m, &b);
        let label = format!("density_1/{density_recip}");
        let mut g = c.benchmark_group(format!("formats_{label}"));
        g.bench_function(BenchmarkId::new("batmap", &label), |bench| {
            bench.iter(|| black_box(ba.intersect_count(&bb)))
        });
        g.bench_function(BenchmarkId::new("plain_bitmap", &label), |bench| {
            bench.iter(|| black_box(idx.pair_support(0, 1)))
        });
        g.bench_function(BenchmarkId::new("wah_sequential", &label), |bench| {
            bench.iter(|| black_box(wa.intersect_count(&wb)))
        });
        g.bench_function(BenchmarkId::new("sorted_merge", &label), |bench| {
            bench.iter(|| black_box(merge::count_branchy(&a, &b)))
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_formats
}
criterion_main!(benches);
