//! Batmap construction cost: the cuckoo 2-of-3 insertion at the paper's
//! load factor, across set sizes (the dominant preprocessing component
//! of Fig. 7).

use batmap::{Batmap, BatmapParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn bench_insert(c: &mut Criterion) {
    let m = 200_000u64;
    let params = Arc::new(BatmapParams::new(m, 0xBEEF));
    let mut g = c.benchmark_group("batmap_build");
    for size in [500usize, 2_500, 10_000] {
        let elements: Vec<u32> = (0..size as u32)
            .map(|i| (i as u64 * (m / size as u64)) as u32)
            .collect();
        g.throughput(Throughput::Elements(size as u64));
        g.bench_function(BenchmarkId::new("build", size), |bench| {
            bench.iter(|| black_box(Batmap::build_sorted(params.clone(), &elements).batmap.len()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_insert
}
criterion_main!(benches);
