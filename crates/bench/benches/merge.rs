//! Sorted-list intersection variants (§IV-B's CPU baseline and its
//! standard mitigations): branchy vs branchless vs galloping, balanced
//! and skewed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fim::merge;
use std::hint::black_box;

fn sorted_array(len: usize, seed: u64) -> Vec<u32> {
    let mut out = Vec::with_capacity(len);
    let mut v = 0u64;
    let mut state = seed | 1;
    for _ in 0..len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        v += 1 + state % 4;
        out.push(v as u32);
    }
    out
}

fn bench_merge(c: &mut Criterion) {
    let len = 1 << 18;
    let a = sorted_array(len, 1);
    let b = sorted_array(len, 2);
    let small = sorted_array(len >> 6, 3);
    let mut g = c.benchmark_group("merge");
    g.throughput(Throughput::Elements((2 * len) as u64));
    g.bench_function(BenchmarkId::new("branchy", "balanced"), |bench| {
        bench.iter(|| black_box(merge::count_branchy(&a, &b)))
    });
    g.bench_function(BenchmarkId::new("branchless", "balanced"), |bench| {
        bench.iter(|| black_box(merge::count_branchless(&a, &b)))
    });
    g.bench_function(BenchmarkId::new("galloping", "balanced"), |bench| {
        bench.iter(|| black_box(merge::count_galloping(&a, &b)))
    });
    g.bench_function(BenchmarkId::new("branchy", "skewed64x"), |bench| {
        bench.iter(|| black_box(merge::count_branchy(&small, &b)))
    });
    g.bench_function(BenchmarkId::new("galloping", "skewed64x"), |bench| {
        bench.iter(|| black_box(merge::count_galloping(&small, &b)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_merge
}
criterion_main!(benches);
