//! Levelwise k-itemset mining: one depth sweep (d = 3, 4, 5) of the
//! multiway-batmap engine vs the horizontal-scan Apriori oracle, pair
//! stage excluded (both are seeded from the same precomputed frequent
//! pairs, so the measured work is candidate generation + support
//! counting for levels ≥ 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::uniform::{generate, UniformSpec};
use fim::apriori;
use pairminer::{mine, Engine, LevelwiseConfig, LevelwiseMiner, MinerConfig, Parallelism};
use std::hint::black_box;

fn bench_levelwise(c: &mut Criterion) {
    let minsup = 20u64;
    let db = generate(&UniformSpec {
        n_items: 24,
        density: 0.3,
        total_items: 20_000,
        seed: 0xBD5,
    });
    let pairs = mine(
        &db,
        &MinerConfig {
            minsup,
            engine: Engine::Cpu,
            ..Default::default()
        },
    )
    .pairs;
    let mut g = c.benchmark_group("levelwise");
    for depth in [3usize, 4, 5] {
        let miner = LevelwiseMiner::new(LevelwiseConfig {
            depth,
            pair: MinerConfig {
                minsup,
                engine: Engine::Cpu,
                options: batmap::EngineOptions::auto().threads(Parallelism::Serial),
                ..Default::default()
            },
            ..Default::default()
        });
        g.bench_function(BenchmarkId::new("multiway_batched", depth), |b| {
            b.iter(|| black_box(miner.mine_from_pairs(&db, &pairs).itemsets.len()))
        });
        g.bench_function(BenchmarkId::new("apriori_oracle", depth), |b| {
            b.iter(|| black_box(apriori::mine(&db, minsup, depth).len()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_levelwise
}
criterion_main!(benches);
