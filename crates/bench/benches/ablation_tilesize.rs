//! Ablation: tile side `k` (§III-C used 2048).
//!
//! Smaller tiles mean more launches (overhead) but smaller result
//! buffers; the CPU engine also sees cache effects. This bench measures
//! host wall time of the CPU pipeline across `k`; the simulated-GPU
//! launch-overhead tradeoff shows up in the figure binaries' timing
//! breakdowns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::uniform::{generate, UniformSpec};
use pairminer::{mine, Engine, MinerConfig};
use std::hint::black_box;

fn bench_tilesize(c: &mut Criterion) {
    let db = generate(&UniformSpec {
        n_items: 128,
        density: 0.05,
        total_items: 60_000,
        seed: 0x7173,
    });
    let mut g = c.benchmark_group("ablation_tilesize_cpu");
    for k in [16usize, 64, 2048] {
        g.bench_function(BenchmarkId::new("k", k), |b| {
            let cfg = MinerConfig {
                k,
                engine: Engine::Cpu,
                ..Default::default()
            };
            b.iter(|| black_box(mine(&db, &cfg).pairs.len()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_tilesize
}
criterion_main!(benches);
