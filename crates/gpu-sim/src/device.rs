//! Device models.
//!
//! A [`DeviceSpec`] captures the handful of architectural parameters the
//! analytic timing model needs. The preset is the paper's card — a
//! GeForce GTX 285 (§IV "Hardware setup": 30 multiprocessors of 8
//! computation units at 1.4 GHz, 1 GB RAM, ~159 GB/s memory bandwidth,
//! 16 KiB shared memory per multiprocessor).

use serde::{Deserialize, Serialize};

/// Architectural parameters of a simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name, e.g. `"GeForce GTX 285 (simulated)"`.
    pub name: String,
    /// Number of multiprocessors (compute units / SMs).
    pub compute_units: u32,
    /// Scalar cores per multiprocessor.
    pub cores_per_unit: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Peak global-memory bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Global-memory transaction granularity in bytes (the coalescing
    /// segment size for a half warp; 64 B per the NVIDIA OpenCL best
    /// practices guide the paper follows \[19\]).
    pub segment_bytes: usize,
    /// Threads per warp; coalescing is evaluated per *half* warp.
    pub warp_size: u32,
    /// Shared (local) memory available to one work group, in bytes.
    pub shared_mem_bytes: usize,
    /// Maximum threads per work group.
    pub max_workgroup: u32,
    /// Scalar instructions retired per core per cycle (issue width ×
    /// utilization; ~1 for the GT200 integer pipeline).
    pub ips: f64,
    /// Fixed cost of one kernel launch, in seconds.
    pub launch_overhead_s: f64,
    /// Host↔device transfer bandwidth in bytes/second (PCIe gen2 x16).
    pub transfer_bandwidth: f64,
    /// Display-watchdog limit on a single kernel execution, if the
    /// device also drives a display (§III-C: "a few-second hard limit").
    pub watchdog_s: Option<f64>,
}

impl DeviceSpec {
    /// The paper's GeForce GTX 285.
    pub fn gtx285() -> Self {
        DeviceSpec {
            name: "GeForce GTX 285 (simulated)".to_string(),
            compute_units: 30,
            cores_per_unit: 8,
            clock_hz: 1.4e9,
            mem_bandwidth: 159.0e9,
            segment_bytes: 64,
            warp_size: 32,
            shared_mem_bytes: 16 * 1024,
            max_workgroup: 512,
            // GT200 SMs dual-issue (MAD pipe + SFU/MUL pipe); sustained
            // integer workloads retire close to 2 scalar ops per SP
            // cycle. This is the model's single calibration knob; with
            // it, the batmap kernel lands at ~32 GB/s effective vs the
            // paper's measured 36.2 GB/s (EXPERIMENTS.md, T1).
            ips: 2.0,
            launch_overhead_s: 10e-6,
            transfer_bandwidth: 5.0e9,
            watchdog_s: Some(2.0),
        }
    }

    /// A deliberately tiny device for tests: 2 units × 2 cores, slow
    /// clock, so simulated times are large and assertions easy.
    pub fn test_tiny() -> Self {
        DeviceSpec {
            name: "test-tiny".to_string(),
            compute_units: 2,
            cores_per_unit: 2,
            clock_hz: 1.0e6,
            mem_bandwidth: 1.0e6,
            segment_bytes: 64,
            warp_size: 32,
            shared_mem_bytes: 4 * 1024,
            max_workgroup: 256,
            ips: 1.0,
            launch_overhead_s: 0.0,
            transfer_bandwidth: 1.0e6,
            watchdog_s: None,
        }
    }

    /// Aggregate scalar throughput in instructions/second.
    pub fn compute_throughput(&self) -> f64 {
        self.compute_units as f64 * self.cores_per_unit as f64 * self.clock_hz * self.ips
    }

    /// Threads per half warp (the coalescing evaluation unit).
    pub fn half_warp(&self) -> usize {
        (self.warp_size / 2) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx285_matches_paper_figures() {
        let d = DeviceSpec::gtx285();
        // 30 SMs × 8 SPs = 240 cores at 1.4 GHz.
        assert_eq!(d.compute_units * d.cores_per_unit, 240);
        assert_eq!(d.clock_hz, 1.4e9);
        // ~159 GB/s peak bandwidth (§IV-A throughput computation).
        assert_eq!(d.mem_bandwidth, 159.0e9);
        assert_eq!(d.half_warp(), 16);
        assert!(d.watchdog_s.is_some());
    }

    #[test]
    fn throughput_is_product() {
        let d = DeviceSpec::test_tiny();
        assert_eq!(d.compute_throughput(), 4.0e6);
    }
}
