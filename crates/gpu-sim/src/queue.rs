//! A command queue: the host-side view of a sequence of transfers and
//! kernel launches, with aggregate accounting.
//!
//! The paper's pipeline is exactly such a sequence — one batmap upload,
//! then one launch per k×k tile — and its reported times are sums over
//! it. `CommandQueue` centralizes that bookkeeping (and the watchdog
//! check per §III-C) so drivers don't hand-roll accumulators.

use crate::device::DeviceSpec;
use crate::executor::{dispatch, LaunchReport};
use crate::kernel::Kernel;
use crate::memory::GlobalBuffer;
use crate::ndrange::NdRange;
use crate::profiler::KernelStats;

/// An in-order simulated command queue on one device.
#[derive(Debug)]
pub struct CommandQueue<'d> {
    device: &'d DeviceSpec,
    /// Accumulated simulated seconds (transfers + launches).
    elapsed_s: f64,
    /// Seconds spent in host↔device transfers.
    transfer_s: f64,
    /// Folded kernel counters.
    stats: KernelStats,
    /// Launches that exceeded the display watchdog.
    watchdog_violations: usize,
    /// Number of kernel launches.
    launches: usize,
}

impl<'d> CommandQueue<'d> {
    /// Open a queue on `device`.
    pub fn new(device: &'d DeviceSpec) -> Self {
        CommandQueue {
            device,
            elapsed_s: 0.0,
            transfer_s: 0.0,
            stats: KernelStats::default(),
            watchdog_violations: 0,
            launches: 0,
        }
    }

    /// The queue's device.
    pub fn device(&self) -> &DeviceSpec {
        self.device
    }

    /// Enqueue a host→device (or device→host) transfer of `buffer`.
    pub fn enqueue_transfer(&mut self, buffer: &GlobalBuffer) {
        let t = buffer.transfer_time(self.device);
        self.transfer_s += t;
        self.elapsed_s += t;
    }

    /// Enqueue one kernel launch; returns its report (results included)
    /// while folding its time and counters into the queue totals.
    pub fn enqueue_kernel<K: Kernel>(&mut self, kernel: &K, range: NdRange) -> LaunchReport {
        let report = dispatch(self.device, kernel, range);
        self.elapsed_s += report.seconds();
        self.stats += report.stats;
        if report.exceeds_watchdog(self.device) {
            self.watchdog_violations += 1;
        }
        self.launches += 1;
        report
    }

    /// Total simulated seconds enqueued so far.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_s
    }

    /// Seconds of that spent on transfers.
    pub fn transfer_seconds(&self) -> f64 {
        self.transfer_s
    }

    /// Folded kernel counters across all launches.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Number of kernel launches enqueued.
    pub fn launches(&self) -> usize {
        self.launches
    }

    /// Launches that would have tripped the display watchdog (§III-C
    /// motivates the k×k split by keeping this at zero).
    pub fn watchdog_violations(&self) -> usize {
        self.watchdog_violations
    }

    /// End-to-end effective rate: useful kernel bytes over total queue
    /// time (the §IV-A "Gbyte per second" accounting, transfers
    /// included).
    pub fn effective_rate(&self) -> f64 {
        if self.elapsed_s == 0.0 {
            0.0
        } else {
            self.stats.useful_bytes as f64 / self.elapsed_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::GroupCtx;

    /// Kernel that reads one aligned 16-word slice per group.
    struct Reader<'a> {
        input: &'a GlobalBuffer,
    }

    impl Kernel for Reader<'_> {
        fn run_group(&self, ctx: &mut GroupCtx<'_>) {
            let g = ctx.group_id()[0];
            let words = ctx.load_seq(self.input, g * 16, 16);
            let sum: u64 = words.iter().map(|&w| w as u64).sum();
            ctx.ops(16);
            ctx.store_seq(g, &[sum]);
        }
    }

    #[test]
    fn queue_accumulates_time_and_stats() {
        let device = DeviceSpec::gtx285();
        let input = GlobalBuffer::new((0..1024u32).collect());
        let mut q = CommandQueue::new(&device);
        q.enqueue_transfer(&input);
        let t_after_transfer = q.elapsed_seconds();
        assert!(t_after_transfer > 0.0);
        assert_eq!(q.transfer_seconds(), t_after_transfer);
        let kernel = Reader { input: &input };
        let r1 = q.enqueue_kernel(&kernel, NdRange::d1(512, 16));
        let r2 = q.enqueue_kernel(&kernel, NdRange::d1(512, 16));
        assert_eq!(q.launches(), 2);
        assert_eq!(q.watchdog_violations(), 0);
        let expect = t_after_transfer + r1.seconds() + r2.seconds();
        assert!((q.elapsed_seconds() - expect).abs() < 1e-12);
        assert_eq!(q.stats().groups, 64);
        assert!(q.effective_rate() > 0.0);
    }

    #[test]
    fn watchdog_violations_counted() {
        let mut device = DeviceSpec::gtx285();
        device.watchdog_s = Some(1e-12);
        let input = GlobalBuffer::new((0..256u32).collect());
        let mut q = CommandQueue::new(&device);
        q.enqueue_kernel(&Reader { input: &input }, NdRange::d1(256, 16));
        assert_eq!(q.watchdog_violations(), 1);
    }

    #[test]
    fn empty_queue_is_zero() {
        let device = DeviceSpec::gtx285();
        let q = CommandQueue::new(&device);
        assert_eq!(q.elapsed_seconds(), 0.0);
        assert_eq!(q.effective_rate(), 0.0);
        assert_eq!(q.launches(), 0);
    }
}
