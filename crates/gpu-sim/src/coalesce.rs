//! Global-memory coalescing rules.
//!
//! The device services the memory requests of a *half warp* (16 threads)
//! together: every distinct aligned segment (64 B on the GT200) touched
//! by the half warp costs one transaction, and the whole segment moves
//! across the bus whether or not all of it is useful (\[19\], NVIDIA
//! OpenCL best practices — the access pattern the paper's kernel is
//! designed around).
//!
//! [`transactions`] computes the transaction set for one half-warp
//! access; the profiler accumulates the counts and the timing model
//! converts `transactions × segment` into bus time.

/// Result of coalescing one half-warp memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coalesced {
    /// Number of segment transactions issued.
    pub transactions: u64,
    /// Bytes actually moved across the bus (`transactions × segment`).
    pub bus_bytes: u64,
    /// Bytes the threads asked for (`lanes × elem_bytes`).
    pub useful_bytes: u64,
}

impl Coalesced {
    /// Bus efficiency: useful bytes / moved bytes (≤ 1).
    pub fn efficiency(&self) -> f64 {
        if self.bus_bytes == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.bus_bytes as f64
        }
    }
}

/// Coalesce one half-warp request: each lane accesses the element at
/// `byte_offsets[lane] .. +elem_bytes`. Returns the transaction count
/// over `segment_bytes`-aligned segments.
pub fn transactions(byte_offsets: &[usize], elem_bytes: usize, segment_bytes: usize) -> Coalesced {
    assert!(
        segment_bytes.is_power_of_two(),
        "segment must be a power of two"
    );
    assert!(elem_bytes > 0);
    if byte_offsets.is_empty() {
        return Coalesced {
            transactions: 0,
            bus_bytes: 0,
            useful_bytes: 0,
        };
    }
    // Distinct segments touched by any byte of any lane's element.
    // Lanes are few (≤16); a sorted small vec beats hashing here.
    let mut segs: Vec<usize> = Vec::with_capacity(byte_offsets.len() * 2);
    for &off in byte_offsets {
        let first = off / segment_bytes;
        let last = (off + elem_bytes - 1) / segment_bytes;
        for s in first..=last {
            segs.push(s);
        }
    }
    segs.sort_unstable();
    segs.dedup();
    let transactions = segs.len() as u64;
    Coalesced {
        transactions,
        bus_bytes: transactions * segment_bytes as u64,
        useful_bytes: (byte_offsets.len() * elem_bytes) as u64,
    }
}

/// Transactions for a *perfectly sequential* half-warp access: lane `l`
/// reads element `base + l`. Fast path used by the hot kernels (avoids
/// materializing the offset list).
pub fn sequential_transactions(
    base_elem: usize,
    lanes: usize,
    elem_bytes: usize,
    segment_bytes: usize,
) -> Coalesced {
    if lanes == 0 {
        return Coalesced {
            transactions: 0,
            bus_bytes: 0,
            useful_bytes: 0,
        };
    }
    let first_byte = base_elem * elem_bytes;
    let last_byte = (base_elem + lanes) * elem_bytes - 1;
    let transactions = (last_byte / segment_bytes - first_byte / segment_bytes + 1) as u64;
    Coalesced {
        transactions,
        bus_bytes: transactions * segment_bytes as u64,
        useful_bytes: (lanes * elem_bytes) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_half_warp_is_one_transaction() {
        // 16 threads × 4-byte ints over an aligned 64 B segment: the
        // best case from [19] — a single transaction.
        let offs: Vec<usize> = (0..16).map(|l| l * 4).collect();
        let c = transactions(&offs, 4, 64);
        assert_eq!(c.transactions, 1);
        assert_eq!(c.bus_bytes, 64);
        assert_eq!(c.useful_bytes, 64);
        assert_eq!(c.efficiency(), 1.0);
    }

    #[test]
    fn misaligned_half_warp_costs_two() {
        let offs: Vec<usize> = (0..16).map(|l| 4 + l * 4).collect();
        let c = transactions(&offs, 4, 64);
        assert_eq!(c.transactions, 2);
        assert!(c.efficiency() < 1.0);
    }

    #[test]
    fn scattered_lanes_cost_one_each() {
        // Random-ish scatter: every lane in its own segment — the hash
        // table lookup pattern the paper's layout avoids.
        let offs: Vec<usize> = (0..16).map(|l| l * 4096).collect();
        let c = transactions(&offs, 4, 64);
        assert_eq!(c.transactions, 16);
        assert_eq!(c.efficiency(), 64.0 / 1024.0);
    }

    #[test]
    fn duplicate_lanes_share_segment() {
        let offs = vec![0usize; 16];
        let c = transactions(&offs, 4, 64);
        assert_eq!(c.transactions, 1);
    }

    #[test]
    fn element_straddling_segments_counts_both() {
        let offs = vec![60usize];
        let c = transactions(&offs, 8, 64);
        assert_eq!(c.transactions, 2);
    }

    #[test]
    fn empty_request_is_free() {
        let c = transactions(&[], 4, 64);
        assert_eq!(c.transactions, 0);
        assert_eq!(c.efficiency(), 1.0);
    }

    #[test]
    fn sequential_matches_general() {
        for base in [0usize, 1, 15, 16, 17, 100] {
            for lanes in [1usize, 3, 16] {
                let offs: Vec<usize> = (0..lanes).map(|l| (base + l) * 4).collect();
                let general = transactions(&offs, 4, 64);
                let fast = sequential_transactions(base, lanes, 4, 64);
                assert_eq!(general, fast, "base={base} lanes={lanes}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Transaction count is bounded below by the useful-byte demand
        /// and above by one-per-lane-span (plus straddles).
        #[test]
        fn transaction_bounds(
            offsets in proptest::collection::vec(0usize..1_000_000, 1..16),
            elem_pow in 0u32..4,
            seg_pow in 5u32..8
        ) {
            let elem = 1usize << elem_pow;
            let seg = 1usize << seg_pow;
            let c = transactions(&offsets, elem, seg);
            prop_assert!(c.transactions >= 1);
            // The segments of one element read span at least elem bytes.
            prop_assert!(c.transactions as usize * seg >= elem);
            // Upper bound: each lane touches at most ceil(elem/seg)+1 segments.
            let per_lane = elem.div_ceil(seg) + 1;
            prop_assert!(c.transactions as usize <= offsets.len() * per_lane);
            prop_assert_eq!(c.bus_bytes, c.transactions * seg as u64);
            // With distinct lane addresses, the bus never moves less
            // than it delivers (duplicate lanes can broadcast, so the
            // bound only holds for distinct offsets).
            let mut distinct = offsets.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() == offsets.len() && offsets.iter().all(|o| o.is_multiple_of(elem)) {
                prop_assert!(c.efficiency() <= 1.0 + 1e-12);
            }
        }

        /// Permuting lane order never changes the transaction count
        /// (coalescing looks at the address *set*).
        #[test]
        fn order_invariant(mut offsets in proptest::collection::vec(0usize..10_000, 1..16)) {
            let a = transactions(&offsets, 4, 64);
            offsets.reverse();
            let b = transactions(&offsets, 4, 64);
            prop_assert_eq!(a.transactions, b.transactions);
        }

        /// Sequential fast path always agrees with the general rule.
        #[test]
        fn sequential_fast_path(base in 0usize..100_000, lanes in 1usize..16) {
            let offs: Vec<usize> = (0..lanes).map(|l| (base + l) * 4).collect();
            prop_assert_eq!(
                transactions(&offs, 4, 64),
                sequential_transactions(base, lanes, 4, 64)
            );
        }
    }
}
