//! Kernel dispatch.
//!
//! The executor enumerates a launch's work groups, runs each through the
//! kernel (in parallel across host threads — group execution is
//! independent by construction, exactly as on the device), folds the
//! profiling counters, evaluates the timing model, and scatters buffered
//! stores.

use crate::device::DeviceSpec;
use crate::kernel::{GroupCtx, Kernel};
use crate::ndrange::NdRange;
use crate::profiler::KernelStats;
use crate::timing::{self, LaunchTiming};
use rayon::prelude::*;

/// Result of one simulated launch.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Folded performance counters.
    pub stats: KernelStats,
    /// Timing-model evaluation.
    pub timing: LaunchTiming,
    /// Buffered global stores `(word index, value)`, in ascending index
    /// order.
    pub emissions: Vec<(usize, u64)>,
}

impl LaunchReport {
    /// Simulated wall-clock seconds of the launch.
    pub fn seconds(&self) -> f64 {
        self.timing.total_s
    }

    /// Whether the launch would have tripped the device's display
    /// watchdog (§III-C's motivation for splitting work into k×k parts).
    pub fn exceeds_watchdog(&self, device: &DeviceSpec) -> bool {
        device
            .watchdog_s
            .map(|limit| self.timing.total_s > limit)
            .unwrap_or(false)
    }

    /// Scatter the buffered stores into a host array.
    pub fn scatter_into(&self, out: &mut [u64]) {
        for &(idx, v) in &self.emissions {
            out[idx] = v;
        }
    }
}

/// Run `kernel` over `range` on `device`, using all host threads.
pub fn dispatch<K: Kernel>(device: &DeviceSpec, kernel: &K, range: NdRange) -> LaunchReport {
    assert!(
        range.group_threads() <= device.max_workgroup as usize,
        "work group of {} threads exceeds device limit {}",
        range.group_threads(),
        device.max_workgroup
    );
    let shared_words = kernel.shared_words();
    let (stats, mut emissions) = (0..range.group_count())
        .into_par_iter()
        .map(|linear| {
            let mut ctx = GroupCtx::new(device, range, range.group_coord(linear), shared_words);
            kernel.run_group(&mut ctx);
            ctx.finish()
        })
        .reduce(
            || (KernelStats::default(), Vec::new()),
            |(mut s1, mut e1), (s2, e2)| {
                let mut s = s1;
                s += s2;
                s1 = s;
                e1.extend(e2);
                (s1, e1)
            },
        );
    emissions.sort_unstable_by_key(|&(idx, _)| idx);
    let timing = timing::evaluate(&stats, device);
    LaunchReport {
        stats,
        timing,
        emissions,
    }
}

/// Sequential dispatch (group 0 first): identical results to
/// [`dispatch`]; useful under `cfg(test)` and for debugging.
pub fn dispatch_seq<K: Kernel>(device: &DeviceSpec, kernel: &K, range: NdRange) -> LaunchReport {
    let shared_words = kernel.shared_words();
    let mut stats = KernelStats::default();
    let mut emissions = Vec::new();
    for linear in 0..range.group_count() {
        let mut ctx = GroupCtx::new(device, range, range.group_coord(linear), shared_words);
        kernel.run_group(&mut ctx);
        let (s, e) = ctx.finish();
        stats += s;
        emissions.extend(e);
    }
    emissions.sort_unstable_by_key(|&(idx, _)| idx);
    let timing = timing::evaluate(&stats, device);
    LaunchReport {
        stats,
        timing,
        emissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::GlobalBuffer;

    /// Toy kernel: each group sums its 16-word slice of the input and
    /// stores one result word.
    struct SliceSum<'a> {
        input: &'a GlobalBuffer,
    }

    impl Kernel for SliceSum<'_> {
        fn shared_words(&self) -> usize {
            16
        }

        fn run_group(&self, ctx: &mut GroupCtx<'_>) {
            let g = ctx.group_id()[0];
            let words = ctx.load_seq(self.input, g * 16, 16).to_vec();
            for (i, w) in words.iter().enumerate() {
                ctx.shared().write(i, *w);
            }
            ctx.shared_ops(16);
            ctx.barrier();
            let sum: u64 = (0..16).map(|i| ctx.shared().read(i) as u64).sum();
            ctx.shared_ops(16);
            ctx.ops(16);
            ctx.store_seq(g, &[sum]);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let input = GlobalBuffer::new((0..256u32).collect());
        let kernel = SliceSum { input: &input };
        let d = DeviceSpec::gtx285();
        let range = NdRange::d1(256, 16);
        let par = dispatch(&d, &kernel, range);
        let seq = dispatch_seq(&d, &kernel, range);
        assert_eq!(par.stats, seq.stats);
        assert_eq!(par.emissions, seq.emissions);
        // 16 groups, each: 1 load transaction + barrier + 1 store.
        assert_eq!(par.stats.groups, 16);
        assert_eq!(par.stats.barriers, 16);
    }

    #[test]
    fn results_are_correct() {
        let input = GlobalBuffer::new((0..64u32).collect());
        let kernel = SliceSum { input: &input };
        let report = dispatch(&DeviceSpec::gtx285(), &kernel, NdRange::d1(64, 16));
        let mut out = vec![0u64; 4];
        report.scatter_into(&mut out);
        let expect: Vec<u64> = (0..4).map(|g| (g * 16..g * 16 + 16).sum::<u64>()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn timing_is_positive_and_watchdog_checks() {
        let input = GlobalBuffer::new(vec![0; 1024]);
        let kernel = SliceSum { input: &input };
        let d = DeviceSpec::gtx285();
        let report = dispatch(&d, &kernel, NdRange::d1(1024, 16));
        assert!(report.seconds() > 0.0);
        assert!(!report.exceeds_watchdog(&d));
        let mut slow = d.clone();
        slow.watchdog_s = Some(1e-12);
        assert!(report.exceeds_watchdog(&slow));
    }

    #[test]
    #[should_panic]
    fn oversized_group_rejected() {
        struct Nop;
        impl Kernel for Nop {
            fn run_group(&self, _: &mut GroupCtx<'_>) {}
        }
        let d = DeviceSpec::gtx285(); // max 512 threads per group
        let _ = dispatch(&d, &Nop, NdRange::d1(2048, 1024));
    }
}
