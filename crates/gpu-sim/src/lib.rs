//! # gpu-sim — an OpenCL-style GPU execution-model simulator
//!
//! The paper's experiments ran on a GeForce GTX 285 through PyOpenCL.
//! This crate is the reproduction's substitute substrate (see DESIGN.md
//! §2): it executes kernels written against an OpenCL-like model —
//! work groups with local indices, shared memory, barriers — while
//! accounting global-memory traffic under the half-warp coalescing rules
//! of the NVIDIA best-practices guide the paper follows, and converts
//! the counters into simulated seconds with a documented analytic model
//! parameterized by the device ([`DeviceSpec::gtx285`]).
//!
//! What is faithful: work decomposition, memory-transaction counts, bus
//! efficiency, shared-memory staging, barrier structure, launch
//! overheads, watchdog limits, host↔device transfer costs. What is not:
//! cycle-level SM scheduling. The simulator's purpose is to preserve the
//! paper's *shapes* (who wins, where crossovers fall), not GT200 cycle
//! accuracy.
//!
//! ```
//! use gpu_sim::{dispatch, DeviceSpec, GlobalBuffer, GroupCtx, Kernel, NdRange};
//!
//! /// Each work item doubles one element.
//! struct Double<'a> { input: &'a GlobalBuffer }
//! impl Kernel for Double<'_> {
//!     fn run_group(&self, ctx: &mut GroupCtx<'_>) {
//!         let base = ctx.global_base(0);
//!         let lanes = ctx.local_size()[0];
//!         let words: Vec<u64> =
//!             ctx.load_seq(self.input, base, lanes).iter().map(|&w| w as u64 * 2).collect();
//!         ctx.ops(lanes as u64);
//!         ctx.store_seq(base, &words);
//!     }
//! }
//!
//! let input = GlobalBuffer::new((0..64).collect());
//! let report = dispatch(&DeviceSpec::gtx285(), &Double { input: &input }, NdRange::d1(64, 16));
//! let mut out = vec![0u64; 64];
//! report.scatter_into(&mut out);
//! assert_eq!(out[10], 20);
//! assert!(report.seconds() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod coalesce;
pub mod device;
pub mod executor;
pub mod kernel;
pub mod memory;
pub mod ndrange;
pub mod profiler;
pub mod queue;
pub mod timing;

pub use device::DeviceSpec;
pub use executor::{dispatch, dispatch_seq, LaunchReport};
pub use kernel::{GroupCtx, Kernel};
pub use memory::{GlobalBuffer, SharedMem};
pub use ndrange::NdRange;
pub use profiler::KernelStats;
pub use queue::CommandQueue;
pub use timing::{effective_rate, LaunchTiming};
