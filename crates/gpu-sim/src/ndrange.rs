//! NDRange geometry: global sizes, work-group sizes, and group iteration
//! (§III-B, "Our adaption of the GPU execution model").
//!
//! OpenCL organizes work items in a 1-, 2- or 3-dimensional grid: a
//! *global size* `G₁W₁ × G₂W₂ × G₃W₃` tiled by *work groups* of size
//! `W₁ × W₂ × W₃`. The executor iterates over all `G₁·G₂·G₃` group
//! positions; each kernel instance can query its group id and local id.

use serde::{Deserialize, Serialize};

/// Geometry of one kernel dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NdRange {
    /// Global size per dimension (must be multiples of `local`).
    pub global: [usize; 3],
    /// Work-group size per dimension.
    pub local: [usize; 3],
}

impl NdRange {
    /// One-dimensional dispatch.
    pub fn d1(global: usize, local: usize) -> Self {
        NdRange {
            global: [global, 1, 1],
            local: [local, 1, 1],
        }
        .validated()
    }

    /// Two-dimensional dispatch (the paper's n×n in 16×16 tiles).
    pub fn d2(global: [usize; 2], local: [usize; 2]) -> Self {
        NdRange {
            global: [global[0], global[1], 1],
            local: [local[0], local[1], 1],
        }
        .validated()
    }

    /// Three-dimensional dispatch.
    pub fn d3(global: [usize; 3], local: [usize; 3]) -> Self {
        NdRange { global, local }.validated()
    }

    fn validated(self) -> Self {
        for d in 0..3 {
            assert!(self.local[d] > 0, "local size must be positive");
            assert!(
                self.global[d].is_multiple_of(self.local[d]),
                "global size {} not a multiple of local size {} in dim {d}",
                self.global[d],
                self.local[d]
            );
        }
        self
    }

    /// Work-group count per dimension (`Gᵢ`).
    pub fn groups(&self) -> [usize; 3] {
        [
            self.global[0] / self.local[0],
            self.global[1] / self.local[1],
            self.global[2] / self.local[2],
        ]
    }

    /// Total number of work groups.
    pub fn group_count(&self) -> usize {
        let g = self.groups();
        g[0] * g[1] * g[2]
    }

    /// Threads per work group.
    pub fn group_threads(&self) -> usize {
        self.local[0] * self.local[1] * self.local[2]
    }

    /// Total number of work items.
    pub fn total_threads(&self) -> usize {
        self.global[0] * self.global[1] * self.global[2]
    }

    /// Convert a linear group index into a `(g₁, g₂, g₃)` coordinate
    /// (dimension 0 fastest, matching OpenCL's column-major enumeration).
    pub fn group_coord(&self, linear: usize) -> [usize; 3] {
        let g = self.groups();
        debug_assert!(linear < self.group_count());
        [
            linear % g[0],
            (linear / g[0]) % g[1],
            linear / (g[0] * g[1]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        // n = 4096 batmaps compared all-vs-all in 16×16 tiles:
        // 256×256 = 65536 work groups of 256 threads.
        let r = NdRange::d2([4096, 4096], [16, 16]);
        assert_eq!(r.group_count(), 65_536);
        assert_eq!(r.group_threads(), 256);
        assert_eq!(r.total_threads(), 4096 * 4096);
    }

    #[test]
    fn coord_roundtrip() {
        let r = NdRange::d3([8, 6, 4], [2, 3, 2]);
        let g = r.groups();
        assert_eq!(g, [4, 2, 2]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..r.group_count() {
            let c = r.group_coord(i);
            assert!(c[0] < g[0] && c[1] < g[1] && c[2] < g[2]);
            assert!(seen.insert(c));
        }
        assert_eq!(seen.len(), r.group_count());
    }

    #[test]
    #[should_panic]
    fn indivisible_global_rejected() {
        let _ = NdRange::d1(100, 16);
    }

    #[test]
    fn d1_is_degenerate_3d() {
        let r = NdRange::d1(64, 16);
        assert_eq!(r.groups(), [4, 1, 1]);
        assert_eq!(r.group_threads(), 16);
    }
}
