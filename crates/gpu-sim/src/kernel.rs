//! The kernel programming model.
//!
//! Kernels are written **work-group-centric**: [`Kernel::run_group`] is
//! invoked once per work group and loops over the group's work items
//! between barriers. This keeps execution deterministic and fast while
//! preserving exactly the quantities the paper's model cares about —
//! which global segments move, how much shared memory traffic occurs,
//! how many scalar ops retire, where the barriers fall.
//!
//! All global memory access goes through the [`GroupCtx`] accessors so
//! the coalescing rules are applied uniformly; a kernel that bypasses
//! them simply doesn't get charged (and the timing model under-reports),
//! so don't.

use crate::coalesce;
use crate::device::DeviceSpec;
use crate::memory::{GlobalBuffer, SharedMem};
use crate::ndrange::NdRange;
use crate::profiler::KernelStats;

/// Execution context of one work group.
pub struct GroupCtx<'a> {
    device: &'a DeviceSpec,
    range: NdRange,
    group_id: [usize; 3],
    shared: SharedMem,
    stats: KernelStats,
    emits: Vec<(usize, u64)>,
}

impl<'a> GroupCtx<'a> {
    pub(crate) fn new(
        device: &'a DeviceSpec,
        range: NdRange,
        group_id: [usize; 3],
        shared_words: usize,
    ) -> Self {
        GroupCtx {
            device,
            range,
            group_id,
            shared: SharedMem::new(shared_words, device),
            stats: KernelStats {
                groups: 1,
                ..Default::default()
            },
            emits: Vec::new(),
        }
    }

    /// This group's coordinate in the group grid.
    pub fn group_id(&self) -> [usize; 3] {
        self.group_id
    }

    /// Work-group (local) size.
    pub fn local_size(&self) -> [usize; 3] {
        self.range.local
    }

    /// Global index of this group's first work item in dimension `dim`
    /// (`group_id[dim] × local[dim]`).
    pub fn global_base(&self, dim: usize) -> usize {
        self.group_id[dim] * self.range.local[dim]
    }

    /// The device being simulated.
    pub fn device(&self) -> &DeviceSpec {
        self.device
    }

    /// Load `lanes` consecutive words starting at `base`: the coalesced
    /// pattern ("16 threads access a 64-byte aligned segment"). Requests
    /// wider than a half warp are issued as several half-warp requests.
    /// Returns the loaded words as a slice borrowed from the buffer.
    pub fn load_seq<'b>(&mut self, buf: &'b GlobalBuffer, base: usize, lanes: usize) -> &'b [u32] {
        let hw = self.device.half_warp();
        let mut lane = 0;
        while lane < lanes {
            let batch = hw.min(lanes - lane);
            let c =
                coalesce::sequential_transactions(base + lane, batch, 4, self.device.segment_bytes);
            self.charge(c);
            lane += batch;
        }
        buf.slice(base..base + lanes)
    }

    /// Gather one word per lane at arbitrary word indices (the irregular
    /// pattern batmaps exist to avoid; used by baseline kernels and
    /// tests). Lanes are grouped into half warps in order.
    pub fn load_gather(&mut self, buf: &GlobalBuffer, indices: &[usize]) -> Vec<u32> {
        let hw = self.device.half_warp();
        for half in indices.chunks(hw) {
            let offs: Vec<usize> = half.iter().map(|&i| i * 4).collect();
            let c = coalesce::transactions(&offs, 4, self.device.segment_bytes);
            self.charge(c);
        }
        indices.iter().map(|&i| buf.word(i)).collect()
    }

    /// Store `values` to consecutive global word indices starting at
    /// `base`. Writes are buffered as emissions and scattered by the
    /// executor after the launch (device memory is read-only during a
    /// launch in this model; the paper's kernels are gather + reduce).
    pub fn store_seq(&mut self, base: usize, values: &[u64]) {
        let hw = self.device.half_warp();
        let mut lane = 0;
        while lane < values.len() {
            let batch = hw.min(values.len() - lane);
            // Results are 32-bit counters on the device; charge 4 B/lane.
            let c =
                coalesce::sequential_transactions(base + lane, batch, 4, self.device.segment_bytes);
            self.charge(c);
            lane += batch;
        }
        for (i, &v) in values.iter().enumerate() {
            self.emits.push((base + i, v));
        }
    }

    /// Work-group barrier (`barrier(CLK_LOCAL_MEM_FENCE)`).
    pub fn barrier(&mut self) {
        self.stats.barriers += 1;
    }

    /// Charge `n` scalar instructions.
    #[inline]
    pub fn ops(&mut self, n: u64) {
        self.stats.ops += n;
    }

    /// Charge `n` shared-memory word accesses.
    #[inline]
    pub fn shared_ops(&mut self, n: u64) {
        self.stats.shared_accesses += n;
    }

    /// Record a warp-divergent branch event (`paths` serialized paths).
    pub fn divergent(&mut self, paths: u64) {
        self.stats.divergent_branches += paths.saturating_sub(1);
    }

    /// The group's shared memory.
    pub fn shared(&mut self) -> &mut SharedMem {
        &mut self.shared
    }

    fn charge(&mut self, c: coalesce::Coalesced) {
        self.stats.transactions += c.transactions;
        self.stats.bus_bytes += c.bus_bytes;
        self.stats.useful_bytes += c.useful_bytes;
    }

    pub(crate) fn finish(self) -> (KernelStats, Vec<(usize, u64)>) {
        (self.stats, self.emits)
    }
}

/// A simulated kernel: one [`Self::run_group`] call per work group.
pub trait Kernel: Sync {
    /// Words of shared memory each work group allocates.
    fn shared_words(&self) -> usize {
        0
    }

    /// Execute one work group.
    fn run_group(&self, ctx: &mut GroupCtx<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(device: &'a DeviceSpec) -> GroupCtx<'a> {
        GroupCtx::new(device, NdRange::d1(16, 16), [0, 0, 0], 64)
    }

    #[test]
    fn load_seq_charges_one_transaction_per_segment() {
        let d = DeviceSpec::gtx285();
        let buf = GlobalBuffer::new((0..64u32).collect());
        let mut c = ctx(&d);
        let words = c.load_seq(&buf, 0, 16);
        assert_eq!(words, (0..16u32).collect::<Vec<_>>().as_slice());
        let (stats, _) = c.finish();
        assert_eq!(stats.transactions, 1);
        assert_eq!(stats.bus_bytes, 64);
    }

    #[test]
    fn wide_load_splits_into_half_warps() {
        let d = DeviceSpec::gtx285();
        let buf = GlobalBuffer::new(vec![0; 256]);
        let mut c = ctx(&d);
        c.load_seq(&buf, 0, 64); // 4 half warps, aligned → 4 transactions
        let (stats, _) = c.finish();
        assert_eq!(stats.transactions, 4);
    }

    #[test]
    fn gather_scattered_costs_per_lane() {
        let d = DeviceSpec::gtx285();
        let buf = GlobalBuffer::new(vec![7; 4096]);
        let mut c = ctx(&d);
        let idx: Vec<usize> = (0..16).map(|l| l * 256).collect();
        let vals = c.load_gather(&buf, &idx);
        assert!(vals.iter().all(|&v| v == 7));
        let (stats, _) = c.finish();
        assert_eq!(stats.transactions, 16);
        assert!(stats.efficiency() < 0.1);
    }

    #[test]
    fn store_emits_and_charges() {
        let d = DeviceSpec::gtx285();
        let mut c = ctx(&d);
        c.store_seq(100, &[1, 2, 3]);
        let (stats, emits) = c.finish();
        assert_eq!(emits, vec![(100, 1), (101, 2), (102, 3)]);
        assert!(stats.transactions >= 1);
    }

    #[test]
    fn counters_accumulate() {
        let d = DeviceSpec::gtx285();
        let mut c = ctx(&d);
        c.ops(10);
        c.shared_ops(4);
        c.barrier();
        c.divergent(2);
        let (stats, _) = c.finish();
        assert_eq!(stats.ops, 10);
        assert_eq!(stats.shared_accesses, 4);
        assert_eq!(stats.barriers, 1);
        assert_eq!(stats.divergent_branches, 1);
        assert_eq!(stats.groups, 1);
    }
}
