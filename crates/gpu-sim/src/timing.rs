//! The analytic timing model.
//!
//! Converts a launch's [`KernelStats`] into simulated seconds on a
//! [`DeviceSpec`]. The model is deliberately simple and documented, so
//! its assumptions can be audited against the paper's measured numbers
//! (EXPERIMENTS.md records both):
//!
//! * **Memory time** — every coalesced transaction moves a full segment:
//!   `bus_bytes / mem_bandwidth`. Latency is assumed hidden by the
//!   many-warp occupancy of the batmap workload (thousands of
//!   independent work groups).
//! * **Compute time** — scalar instructions and shared-memory accesses
//!   retire at `compute_units × cores_per_unit × clock × ips`:
//!   `(ops + shared_accesses) / compute_throughput`.
//! * **Barrier time** — each barrier serializes a group for
//!   [`BARRIER_CYCLES`] cycles on its multiprocessor.
//! * **Divergence** — each extra serialized path costs half a warp of
//!   idle lanes, charged as `warp/2` instructions.
//! * Memory and compute overlap perfectly: the launch costs
//!   `max(memory, compute) + launch_overhead`.
//!
//! The GT200's achievable bandwidth and dual-issue quirks are *not*
//! modelled; this is an execution-model simulator for reproducing the
//! paper's shapes, not a cycle-accurate GT200.

use crate::device::DeviceSpec;
use crate::profiler::KernelStats;
use serde::{Deserialize, Serialize};

/// Cycles a work-group barrier stalls its multiprocessor.
pub const BARRIER_CYCLES: f64 = 32.0;

/// Time breakdown of one simulated launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchTiming {
    /// Bus-limited component in seconds.
    pub memory_s: f64,
    /// Instruction-limited component in seconds.
    pub compute_s: f64,
    /// Barrier serialization in seconds.
    pub barrier_s: f64,
    /// Fixed launch overhead in seconds.
    pub overhead_s: f64,
    /// Total simulated seconds (`max(memory, compute + barrier) +
    /// overhead`).
    pub total_s: f64,
}

/// Evaluate the model for one launch.
pub fn evaluate(stats: &KernelStats, device: &DeviceSpec) -> LaunchTiming {
    let memory_s = stats.bus_bytes as f64 / device.mem_bandwidth;
    let divergence_ops = stats.divergent_branches as f64 * device.warp_size as f64 / 2.0;
    let compute_s = (stats.ops as f64 + stats.shared_accesses as f64 + divergence_ops)
        / device.compute_throughput();
    // Barriers serialize per multiprocessor; with groups spread across
    // units, the per-unit share is what stalls the critical path.
    let barrier_s =
        stats.barriers as f64 * BARRIER_CYCLES / (device.clock_hz * device.compute_units as f64);
    let busy = memory_s.max(compute_s + barrier_s);
    LaunchTiming {
        memory_s,
        compute_s,
        barrier_s,
        overhead_s: device.launch_overhead_s,
        total_s: busy + device.launch_overhead_s,
    }
}

/// Effective end-to-end bus rate of a launch in bytes/second — the
/// number the paper quotes as "36.2 Gbyte per second" (useful bytes over
/// total time).
pub fn effective_rate(stats: &KernelStats, timing: &LaunchTiming) -> f64 {
    if timing.total_s == 0.0 {
        0.0
    } else {
        stats.useful_bytes as f64 / timing.total_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_launch() {
        let d = DeviceSpec::test_tiny(); // 1 MB/s bus, 4 Mops/s compute
        let stats = KernelStats {
            bus_bytes: 1_000_000,
            useful_bytes: 1_000_000,
            ops: 100, // negligible
            ..Default::default()
        };
        let t = evaluate(&stats, &d);
        assert!((t.memory_s - 1.0).abs() < 1e-9);
        assert!(t.total_s >= t.memory_s);
        assert!((effective_rate(&stats, &t) - 1.0e6).abs() < 1e3);
    }

    #[test]
    fn compute_bound_launch() {
        let d = DeviceSpec::test_tiny();
        let stats = KernelStats {
            bus_bytes: 64,
            ops: 4_000_000, // 1 s of compute
            ..Default::default()
        };
        let t = evaluate(&stats, &d);
        assert!(t.compute_s > t.memory_s);
        assert!((t.total_s - t.compute_s).abs() < 1e-6);
    }

    #[test]
    fn barriers_add_time() {
        let d = DeviceSpec::test_tiny();
        let base = KernelStats {
            ops: 1000,
            ..Default::default()
        };
        let with_barriers = KernelStats {
            barriers: 1000,
            ..base
        };
        assert!(evaluate(&with_barriers, &d).total_s > evaluate(&base, &d).total_s);
    }

    #[test]
    fn divergence_costs_half_warp() {
        let d = DeviceSpec::gtx285();
        let diverged = KernelStats {
            divergent_branches: 1_000_000,
            ..Default::default()
        };
        let t = evaluate(&diverged, &d);
        let expected = 1_000_000.0 * 16.0 / d.compute_throughput();
        assert!((t.compute_s - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn overhead_always_present() {
        let d = DeviceSpec::gtx285();
        let t = evaluate(&KernelStats::default(), &d);
        assert_eq!(t.total_s, d.launch_overhead_s);
    }
}
