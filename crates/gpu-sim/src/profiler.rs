//! Per-launch performance counters.
//!
//! Each work group accumulates counters locally while it runs; the
//! executor folds them into a single [`KernelStats`] for the launch.
//! The analytic timing model consumes exactly these numbers.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Counters accumulated during kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Global-memory transactions issued (coalesced segment moves).
    pub transactions: u64,
    /// Bytes moved across the global-memory bus (incl. wasted segment
    /// parts).
    pub bus_bytes: u64,
    /// Bytes the threads actually requested.
    pub useful_bytes: u64,
    /// Scalar instructions retired (as charged by the kernel).
    pub ops: u64,
    /// Shared-memory accesses (word granularity).
    pub shared_accesses: u64,
    /// Work-group barriers executed.
    pub barriers: u64,
    /// Warp-divergent branch events (extra serialized paths).
    pub divergent_branches: u64,
    /// Work groups executed.
    pub groups: u64,
}

impl KernelStats {
    /// Bus efficiency over the whole launch.
    pub fn efficiency(&self) -> f64 {
        if self.bus_bytes == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.bus_bytes as f64
        }
    }
}

impl AddAssign for KernelStats {
    fn add_assign(&mut self, rhs: KernelStats) {
        self.transactions += rhs.transactions;
        self.bus_bytes += rhs.bus_bytes;
        self.useful_bytes += rhs.useful_bytes;
        self.ops += rhs.ops;
        self.shared_accesses += rhs.shared_accesses;
        self.barriers += rhs.barriers;
        self.divergent_branches += rhs.divergent_branches;
        self.groups += rhs.groups;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = KernelStats {
            transactions: 1,
            bus_bytes: 64,
            useful_bytes: 32,
            ops: 10,
            shared_accesses: 5,
            barriers: 1,
            divergent_branches: 0,
            groups: 1,
        };
        a += a;
        assert_eq!(a.transactions, 2);
        assert_eq!(a.bus_bytes, 128);
        assert_eq!(a.groups, 2);
    }

    #[test]
    fn efficiency_bounds() {
        let s = KernelStats {
            bus_bytes: 128,
            useful_bytes: 64,
            ..Default::default()
        };
        assert_eq!(s.efficiency(), 0.5);
        assert_eq!(KernelStats::default().efficiency(), 1.0);
    }
}
