//! Simulated device memory.
//!
//! A [`GlobalBuffer`] is plain host memory standing in for device global
//! memory: kernels read it only through their [`crate::kernel::GroupCtx`]
//! accessors, which apply the coalescing rules and charge the profiler.
//! The one-time host→device transfer the paper performs ("a list
//! containing all n batmaps is transferred once to the device") is
//! modelled by [`GlobalBuffer::transfer_time`].

use crate::device::DeviceSpec;

/// A read-only global-memory buffer of `u32` words.
///
/// The paper's kernels consume batmaps as 32-bit integers (4 slots per
/// word), so the simulator's global memory is word-typed; byte-level
/// structures are packed into words before upload (see
/// `pairminer::gpu`).
#[derive(Debug, Clone)]
pub struct GlobalBuffer {
    words: Box<[u32]>,
}

impl GlobalBuffer {
    /// Upload a word array.
    pub fn new(words: Vec<u32>) -> Self {
        GlobalBuffer {
            words: words.into_boxed_slice(),
        }
    }

    /// Upload a byte slice, packing little-endian words (zero-padded to
    /// a word boundary).
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut words = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut chunks = bytes.chunks_exact(4);
        for c in &mut chunks {
            words.push(u32::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 4];
            last[..rem.len()].copy_from_slice(rem);
            words.push(u32::from_le_bytes(last));
        }
        GlobalBuffer::new(words)
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Size in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Raw word access for the executor/ctx (not profiled here — the
    /// ctx accessors do the accounting).
    #[inline]
    pub(crate) fn word(&self, idx: usize) -> u32 {
        self.words[idx]
    }

    /// Raw slice access (used by `GroupCtx` sequential loads).
    #[inline]
    pub(crate) fn slice(&self, range: std::ops::Range<usize>) -> &[u32] {
        &self.words[range]
    }

    /// Seconds to move this buffer across the host↔device link once.
    pub fn transfer_time(&self, device: &DeviceSpec) -> f64 {
        self.bytes() as f64 / device.transfer_bandwidth
    }
}

/// Simulated per-work-group shared (local) memory: a word-addressed
/// scratchpad of fixed size, checked against the device limit.
#[derive(Debug)]
pub struct SharedMem {
    words: Vec<u32>,
}

impl SharedMem {
    /// Allocate `words` words of shared memory; panics if the request
    /// exceeds the device's per-group shared memory.
    pub fn new(words: usize, device: &DeviceSpec) -> Self {
        assert!(
            words * 4 <= device.shared_mem_bytes,
            "shared memory request {} B exceeds device limit {} B",
            words * 4,
            device.shared_mem_bytes
        );
        SharedMem {
            words: vec![0; words],
        }
    }

    /// Word count.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when zero-sized.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read a word.
    #[inline]
    pub fn read(&self, idx: usize) -> u32 {
        self.words[idx]
    }

    /// Write a word.
    #[inline]
    pub fn write(&mut self, idx: usize, value: u32) {
        self.words[idx] = value;
    }

    /// View a contiguous region.
    #[inline]
    pub fn region(&self, range: std::ops::Range<usize>) -> &[u32] {
        &self.words[range]
    }

    /// Mutable view of a contiguous region.
    #[inline]
    pub fn region_mut(&mut self, range: std::ops::Range<usize>) -> &mut [u32] {
        &mut self.words[range]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_packs_little_endian() {
        let b = GlobalBuffer::from_bytes(&[1, 0, 0, 0, 2, 0, 0, 0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.word(0), 1);
        assert_eq!(b.word(1), 2);
    }

    #[test]
    fn from_bytes_pads_tail() {
        let b = GlobalBuffer::from_bytes(&[0xAA, 0xBB, 0xCC]);
        assert_eq!(b.len(), 1);
        assert_eq!(b.word(0), u32::from_le_bytes([0xAA, 0xBB, 0xCC, 0]));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let d = DeviceSpec::test_tiny(); // 1 MB/s transfer
        let b = GlobalBuffer::new(vec![0; 250_000]); // 1 MB
        assert!((b.transfer_time(&d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_mem_read_write() {
        let d = DeviceSpec::gtx285();
        let mut s = SharedMem::new(512, &d);
        s.write(100, 42);
        assert_eq!(s.read(100), 42);
        s.region_mut(0..4).copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(s.region(0..4), &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn shared_mem_limit_enforced() {
        let d = DeviceSpec::gtx285(); // 16 KiB = 4096 words
        let _ = SharedMem::new(5000, &d);
    }
}
