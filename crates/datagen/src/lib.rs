//! # datagen — workload generators for the reproduction
//!
//! * [`uniform`] — the paper's own synthetic model (§IV-A): include each
//!   of `n` items with probability `p` per transaction until the target
//!   instance size is reached. Drives Figs. 5–9.
//! * [`webdocs`] — synthetic substitute for the FIMI WebDocs corpus
//!   (Fig. 10): Zipf word frequencies + Heaps'-law vocabulary growth.
//! * [`quest`] — IBM Quest-style generator (`T40I10D100K` regime used in
//!   the §I-B PBI throughput estimate).
//! * [`stream`] — timestamped transaction streams in arrival order, for
//!   the live write path and windowed mining.
//! * [`zipf`] — the shared Zipfian sampler.
//!
//! All generators are deterministic given their seed (ChaCha8).

#![warn(missing_docs)]

pub mod quest;
pub mod stream;
pub mod uniform;
pub mod webdocs;
pub mod zipf;

pub use quest::QuestSpec;
pub use stream::{StreamSpec, TxnEvent};
pub use uniform::UniformSpec;
pub use webdocs::WebDocsSpec;
