//! Timestamped transaction streams for the incremental-ingestion path.
//!
//! The batch generators in this crate produce a whole database up
//! front; the live write path and the sliding-window miner instead
//! consume transactions **one at a time, in arrival order**. A
//! [`StreamSpec`] describes such a stream — Zipf-skewed item picks
//! (the same head-heavy regime as the WebDocs model, so delta sets hit
//! both the tidlist and promoted-batmap branches), a target mean
//! transaction length, and a mean inter-arrival gap — and generates a
//! deterministic `Vec<TxnEvent>` given its seed.
//!
//! Timestamps are synthetic milliseconds from stream start. They exist
//! so windowed-mining scenarios can reason about *time*-based windows
//! and replay pacing; the [`WindowedMiner`]'s count-based window only
//! needs the order, which is the `seq` field.
//!
//! [`WindowedMiner`]: ../pairminer/ingest/struct.WindowedMiner.html

use crate::zipf::Zipf;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One transaction arriving on a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnEvent {
    /// Arrival order, `0..events`.
    pub seq: u64,
    /// Synthetic arrival time in milliseconds from stream start
    /// (non-decreasing).
    pub at_ms: u64,
    /// The transaction's items: strictly ascending, non-empty — exactly
    /// what `LayeredCorpus::insert_txn` and `WindowedMiner::push`
    /// accept.
    pub items: Vec<u32>,
}

/// Parameters of a synthetic transaction stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamSpec {
    /// Vocabulary size (item ids are `0..n_items`).
    pub n_items: u32,
    /// Number of events to generate.
    pub events: usize,
    /// Target mean items per transaction (each transaction draws its
    /// length uniformly from `1..=2*avg_len - 1`, then dedups, so the
    /// realized mean is slightly below for skewed vocabularies).
    pub avg_len: usize,
    /// Zipf exponent of the item popularity distribution.
    pub alpha: f64,
    /// Mean inter-arrival gap in milliseconds (gaps are uniform in
    /// `0..=2*gap_ms`; `0` collapses the stream to a single instant).
    pub gap_ms: u64,
    /// ChaCha8 seed; equal specs generate equal streams.
    pub seed: u64,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            n_items: 1_000,
            events: 10_000,
            avg_len: 8,
            alpha: 1.0,
            gap_ms: 10,
            seed: 0x57EA,
        }
    }
}

impl StreamSpec {
    /// Generate the full event list, deterministically from the spec.
    ///
    /// # Panics
    /// Panics if `n_items == 0` or `avg_len == 0`.
    pub fn generate(&self) -> Vec<TxnEvent> {
        assert!(self.n_items > 0, "stream needs a non-empty vocabulary");
        assert!(self.avg_len > 0, "stream needs a positive mean length");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.n_items as usize, self.alpha);
        let mut events = Vec::with_capacity(self.events);
        let mut now_ms = 0u64;
        for seq in 0..self.events as u64 {
            if self.gap_ms > 0 {
                now_ms += rng.random_range(0..2 * self.gap_ms + 1);
            }
            let target = rng.random_range(1..2 * self.avg_len);
            let mut items: Vec<u32> = (0..target).map(|_| zipf.sample(&mut rng) as u32).collect();
            items.sort_unstable();
            items.dedup();
            events.push(TxnEvent {
                seq,
                at_ms: now_ms,
                items,
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_well_formed() {
        let spec = StreamSpec {
            n_items: 50,
            events: 500,
            avg_len: 6,
            ..StreamSpec::default()
        };
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a, b, "same spec must generate the same stream");
        assert_eq!(a.len(), 500);
        let mut last_ms = 0;
        for (i, ev) in a.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert!(ev.at_ms >= last_ms, "timestamps must be non-decreasing");
            last_ms = ev.at_ms;
            assert!(!ev.items.is_empty());
            assert!(ev.items.windows(2).all(|w| w[0] < w[1]));
            assert!(ev.items.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn different_seeds_differ_and_lengths_track_the_mean() {
        let base = StreamSpec {
            n_items: 200,
            events: 2_000,
            avg_len: 10,
            alpha: 0.8,
            ..StreamSpec::default()
        };
        let other = StreamSpec {
            seed: base.seed + 1,
            ..base
        };
        let a = base.generate();
        let b = other.generate();
        assert_ne!(a, b, "different seeds must diverge");
        let mean = a.iter().map(|e| e.items.len()).sum::<usize>() as f64 / a.len() as f64;
        // Dedup under a mild skew trims a little off the target of 10.
        assert!((4.0..=12.0).contains(&mean), "mean length drifted: {mean}");
    }

    #[test]
    fn zero_gap_collapses_time() {
        let spec = StreamSpec {
            events: 20,
            gap_ms: 0,
            ..StreamSpec::default()
        };
        assert!(spec.generate().iter().all(|e| e.at_ms == 0));
    }
}
