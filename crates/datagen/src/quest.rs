//! IBM Quest-style transaction generator (Agrawal & Srikant's synthetic
//! family — `T40I10D100K` names an instance with average transaction
//! size 40, average maximal-pattern size 10, 100K transactions).
//!
//! The paper uses `T40I10D100K` only to estimate PBI-GPU's intersection
//! throughput (§I-B: density ≈ 4%); this generator reproduces that
//! regime. Mechanics (following the original Quest description): a pool
//! of potentially-frequent itemsets is drawn with Zipf-ish popularity;
//! each transaction unions randomly chosen patterns (with corruption)
//! until it reaches its drawn length.

use crate::zipf::Zipf;
use fim::TransactionDb;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Quest parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuestSpec {
    /// Average transaction size `T`.
    pub avg_transaction: usize,
    /// Average pattern size `I`.
    pub avg_pattern: usize,
    /// Number of transactions `D`.
    pub transactions: usize,
    /// Number of distinct items `N`.
    pub n_items: u32,
    /// Size of the potentially-frequent pattern pool `L`.
    pub patterns: usize,
    /// Probability an item of a chosen pattern is dropped (corruption).
    pub corruption: f64,
    /// RNG seed.
    pub seed: u64,
}

impl QuestSpec {
    /// The paper's `T40I10D100K` (at a configurable scale ∈ (0,1]).
    pub fn t40i10d100k(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0);
        QuestSpec {
            avg_transaction: 40,
            avg_pattern: 10,
            transactions: (100_000_f64 * scale) as usize,
            n_items: 1000,
            patterns: 200,
            corruption: 0.25,
            seed,
        }
    }
}

/// Generate the database.
pub fn generate(spec: &QuestSpec) -> TransactionDb {
    assert!(spec.n_items > 0 && spec.patterns > 0 && spec.avg_pattern > 0);
    assert!((0.0..1.0).contains(&spec.corruption));
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    // Pattern pool: sizes Poisson-ish around I, items uniform, with some
    // overlap between consecutive patterns (Quest reuses fractions of
    // the previous pattern; a simple 50% carry-over approximates it).
    let mut pool: Vec<Vec<u32>> = Vec::with_capacity(spec.patterns);
    let mut prev: Vec<u32> = Vec::new();
    for _ in 0..spec.patterns {
        let len = 1 + rng.random_range(0..2 * spec.avg_pattern);
        let mut pat: Vec<u32> = prev
            .iter()
            .copied()
            .filter(|_| rng.random_bool(0.5))
            .take(len / 2)
            .collect();
        while pat.len() < len {
            pat.push(rng.random_range(0..spec.n_items));
        }
        pat.sort_unstable();
        pat.dedup();
        prev = pat.clone();
        pool.push(pat);
    }
    // Pattern popularity: Zipf over the pool.
    let popularity = Zipf::new(pool.len(), 1.0);
    let mut transactions = Vec::with_capacity(spec.transactions);
    for _ in 0..spec.transactions {
        let target = 1 + rng.random_range(0..2 * spec.avg_transaction);
        let mut t: Vec<u32> = Vec::with_capacity(target + spec.avg_pattern);
        while t.len() < target {
            let pat = &pool[popularity.sample(&mut rng)];
            for &item in pat {
                if !rng.random_bool(spec.corruption) {
                    t.push(item);
                }
            }
        }
        transactions.push(t); // TransactionDb sorts + dedups
    }
    TransactionDb::new(spec.n_items, transactions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_spec_roughly() {
        let spec = QuestSpec::t40i10d100k(0.02, 7); // 2000 transactions
        let db = generate(&spec);
        assert_eq!(db.len(), 2000);
        let avg = db.total_items() as f64 / db.len() as f64;
        // Dedup after pattern unioning shrinks transactions somewhat;
        // accept a broad band around T=40.
        assert!((15.0..60.0).contains(&avg), "avg transaction size {avg}");
    }

    #[test]
    fn density_in_t40_regime() {
        let spec = QuestSpec::t40i10d100k(0.02, 7);
        let db = generate(&spec);
        let d = db.density();
        // The paper quotes ~4% for T40I10D100K (40/1000).
        assert!((0.015..0.06).contains(&d), "density {d}");
    }

    #[test]
    fn items_heavily_reused_across_transactions() {
        let spec = QuestSpec::t40i10d100k(0.01, 3);
        let db = generate(&spec);
        let supports = db.item_supports();
        let max = *supports.iter().max().unwrap();
        // Pattern popularity makes some items appear in a large share
        // of transactions.
        assert!(max as usize > db.len() / 10);
    }

    #[test]
    fn deterministic() {
        let spec = QuestSpec::t40i10d100k(0.01, 9);
        assert_eq!(generate(&spec), generate(&spec));
    }
}
