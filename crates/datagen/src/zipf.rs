//! Zipfian sampling.
//!
//! A classic rejection-free Zipf sampler via the inverse-CDF on a
//! precomputed cumulative table. Table construction is O(n); sampling is
//! O(log n) per draw. Good enough for the WebDocs-scale vocabularies the
//! generators need (≤ a few hundred thousand ranks).

use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n` (rank 0 most probable).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probability table, `cdf[k] = P(rank ≤ k)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution over `n` ranks with exponent `alpha > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is not finite-positive.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the domain has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random::<f64>();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ranks_in_range_and_skewed() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate rank 99 by roughly 100/1 under α=1.
        assert!(counts[0] > counts[99] * 20);
        // Everything must be in range (indexing would have panicked
        // otherwise) and the head should concentrate mass.
        let head: usize = counts[..10].iter().sum();
        assert!(head > 30_000, "head mass too small: {head}");
    }

    #[test]
    fn alpha_controls_skew() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let flat = Zipf::new(100, 0.2);
        let steep = Zipf::new(100, 2.0);
        let mass = |z: &Zipf, rng: &mut ChaCha8Rng| {
            let mut head = 0;
            for _ in 0..10_000 {
                if z.sample(rng) == 0 {
                    head += 1;
                }
            }
            head
        };
        assert!(mass(&steep, &mut rng) > mass(&flat, &mut rng) * 2);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic]
    fn zero_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
