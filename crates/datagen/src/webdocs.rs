//! Synthetic WebDocs (Fig. 10's "real-life" dataset, substituted).
//!
//! The real WebDocs instance (FIMI repository) associates web documents
//! with the words they contain. The experiment's load-bearing properties
//! are (a) heavily skewed word frequencies and (b) a vocabulary that
//! grows rapidly with the number of documents read — which is what blows
//! up Apriori on small prefixes. We model (a) with a Zipf(α) rank
//! distribution and (b) with Heaps'-law vocabulary growth
//! (`V(N) ≈ K·N^β`), the standard generative model of text corpora.
//! DESIGN.md §2 records the substitution.

use crate::zipf::Zipf;
use fim::TransactionDb;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters of the synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebDocsSpec {
    /// Number of documents (transactions / prefix lines).
    pub documents: usize,
    /// Mean distinct words per document.
    pub mean_doc_len: usize,
    /// Heaps constant `K` (vocabulary = K·Nᵝ for N word tokens).
    pub heaps_k: f64,
    /// Heaps exponent `β` (≈ 0.5–0.7 for real corpora).
    pub heaps_beta: f64,
    /// Zipf exponent for word frequencies.
    pub zipf_alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebDocsSpec {
    fn default() -> Self {
        WebDocsSpec {
            documents: 10_000,
            mean_doc_len: 100,
            heaps_k: 10.0,
            heaps_beta: 0.6,
            zipf_alpha: 1.1,
            seed: 0xD0C5,
        }
    }
}

impl WebDocsSpec {
    /// Vocabulary size after `tokens` word tokens (Heaps' law).
    pub fn vocabulary(&self, tokens: usize) -> usize {
        ((self.heaps_k * (tokens as f64).powf(self.heaps_beta)) as usize).max(1)
    }
}

/// Generate the corpus. Document `d` draws its words Zipf-ranked from
/// the vocabulary available after the first `d` documents' tokens, so
/// the distinct-item count grows with prefix size exactly as the
/// experiment requires.
pub fn generate(spec: &WebDocsSpec) -> TransactionDb {
    assert!(spec.documents > 0 && spec.mean_doc_len > 0);
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let total_tokens = spec.documents * spec.mean_doc_len;
    let max_vocab = spec.vocabulary(total_tokens);
    // One Zipf table over the final vocabulary; documents early in the
    // corpus clamp ranks to their current vocabulary, giving the Heaps
    // growth without rebuilding tables per document.
    let zipf = Zipf::new(max_vocab, spec.zipf_alpha);
    let mut transactions = Vec::with_capacity(spec.documents);
    let mut tokens_so_far = 0usize;
    for _ in 0..spec.documents {
        // Document length: geometric-ish around the mean (≥ 1).
        let len = 1 + rng.random_range(0..2 * spec.mean_doc_len);
        let vocab_now = spec.vocabulary(tokens_so_far + len).min(max_vocab);
        let mut doc = Vec::with_capacity(len);
        for _ in 0..len {
            let rank = zipf.sample(&mut rng) % vocab_now;
            doc.push(rank as u32);
        }
        tokens_so_far += len;
        transactions.push(doc);
    }
    TransactionDb::new(max_vocab as u32, transactions)
}

/// The Fig. 10 protocol: a prefix of the corpus, as its own database
/// (items re-counted over the prefix only).
pub fn prefix(db: &TransactionDb, lines: usize) -> TransactionDb {
    let take = lines.min(db.len());
    TransactionDb::new(db.n_items(), db.transactions()[..take].to_vec())
}

/// Distinct items actually present in a database (WebDocs' rapidly
/// growing quantity; Fig. 10's x-axis commentary).
pub fn distinct_items(db: &TransactionDb) -> usize {
    db.item_supports().iter().filter(|&&s| s > 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WebDocsSpec {
        WebDocsSpec {
            documents: 2000,
            mean_doc_len: 40,
            ..Default::default()
        }
    }

    #[test]
    fn vocabulary_grows_with_prefix() {
        let db = generate(&spec());
        let v400 = distinct_items(&prefix(&db, 400));
        let v2000 = distinct_items(&prefix(&db, 2000));
        assert!(
            v2000 as f64 > v400 as f64 * 1.5,
            "vocabulary growth too flat: {v400} → {v2000}"
        );
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let db = generate(&spec());
        let mut s = db.item_supports();
        s.sort_unstable_by(|a, b| b.cmp(a));
        // Top word far above the median word.
        let median = s[s.len() / 2].max(1);
        assert!(s[0] > median * 10, "head {} vs median {median}", s[0]);
    }

    #[test]
    fn prefix_truncates() {
        let db = generate(&spec());
        let p = prefix(&db, 100);
        assert_eq!(p.len(), 100);
        assert_eq!(p.transactions()[..], db.transactions()[..100]);
        // Oversized prefix returns the whole corpus.
        assert_eq!(prefix(&db, 10_000_000).len(), db.len());
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&spec()), generate(&spec()));
    }

    #[test]
    fn heaps_formula() {
        let s = WebDocsSpec::default();
        assert!(s.vocabulary(1_000_000) > s.vocabulary(10_000) * 5);
        assert_eq!(s.vocabulary(0), 1);
    }
}
