//! Host-side preprocessing (§III-C, first half), building straight into
//! a contiguous [`BatmapArena`].
//!
//! Tidlists become batmaps (built in parallel — construction of
//! different sets is independent), **sorted by increasing width** so
//! that the 16-wide comparison blocks of the GPU kernel group batmaps
//! of similar width ("resulting in a strongly reduced computation time
//! for the subresults for narrow batmaps"). The item list is padded
//! with empty batmaps to a multiple of 16 so every work group is full.
//! Under a hybrid storage policy ([`preprocess_with`] with
//! `EngineOptions::auto().repr(ReprPolicy::Hybrid)`) each item may
//! instead become an uncompressed bitmap (dense head) or a raw tidlist
//! (sparse tail) — same arena, same width-sorted order, typed views via
//! [`Preprocessed::payload`].
//!
//! Storage is two-pass and allocation-lean:
//!
//! 1. **Size pass** — a batmap's range is deterministic from its
//!    tidlist length (`BatmapParams::range_for`), so the width-sorted
//!    order and every arena offset are known *before* any cuckoo work.
//!    One contiguous, word-aligned buffer is reserved for the whole
//!    corpus ([`BatmapArena::with_ranges`]).
//! 2. **Build pass** — workers take contiguous runs of the width-sorted
//!    sets (each run is one bump segment of the final buffer) and
//!    cuckoo-build **in place** through disjoint `&mut [u8]` windows,
//!    each worker reusing a single scratch [`batmap::BatmapBuilder`].
//!    No per-set `Box<[u8]>`, no compaction copy afterwards — the
//!    width-sorted compaction is implicit in the precomputed layout.
//!
//! Failed insertions are collected as `(sorted item index, tid)` pairs
//! for the `F_b`/`M_{p,q}` postprocessing path.
//!
//! The result can be persisted with [`Preprocessed::write_snapshot`]
//! and served by a later process via [`Preprocessed::read_snapshot`]
//! without rebuilding (see `miner::mine_preprocessed`).

use batmap::{
    ArenaSetOutcome, BatmapArena, BatmapBuilder, BatmapParams, BatmapRef, EngineOptions,
    KernelBackend, Parallelism, ParamsHandle, ReprPolicy, SetRepr, SetSpec, SetView, SnapshotError,
    SnapshotLoad,
};
use fim::VerticalDb;
use hpcutil::MemoryFootprint;
use rayon::prelude::*;
use std::io::{Read, Write};
use std::sync::Arc;

/// Width of the comparison block: the kernel's work groups are 16×16.
pub const BLOCK: usize = 16;

/// Minimum compression shift for GPU-compatible batmaps: `s ≥ 6` makes
/// every width a multiple of 64 bytes (16 words), the slice unit.
pub const GPU_MIN_SHIFT: u32 = 6;

/// Magic bytes opening a preprocessed-corpus snapshot (wraps an arena
/// snapshot with the mining side tables).
pub const PRE_SNAPSHOT_MAGIC: [u8; 8] = *b"BMPREPRO";

/// Preprocessed-corpus snapshot format version. v2 zero-pads after the
/// JSON side tables so the embedded arena envelope starts on a
/// [`batmap::arena::SET_ALIGN`] boundary of the file — the alignment
/// [`BatmapArena::from_mapped`] requires, making the whole corpus
/// mmap-servable without copying the payload.
pub const PRE_SNAPSHOT_VERSION: u32 = 2;

/// Output of preprocessing.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Universe parameters all batmaps share.
    pub params: ParamsHandle,
    /// All sets in one contiguous arena, sorted by increasing payload
    /// width and padded with empty sets to a multiple of [`BLOCK`].
    /// All-batmap under the legacy entry points; a mix of typed
    /// representations under [`preprocess_with_repr`].
    pub arena: BatmapArena,
    /// `order[s] = original item id` of sorted position `s` (length =
    /// real item count; padding positions have no entry).
    pub order: Vec<u32>,
    /// `item_to_sorted[item] = sorted position`.
    pub item_to_sorted: Vec<u32>,
    /// Real (unpadded) item count.
    pub n_items: u32,
    /// Failed insertions as `(sorted item index, tid)`.
    pub failed: Vec<(u32, u32)>,
    /// Aggregated construction statistics.
    pub stats: batmap::InsertStats,
}

impl Preprocessed {
    /// Item count including padding (multiple of 16).
    pub fn padded_items(&self) -> usize {
        self.arena.len()
    }

    /// Zero-copy view of the batmap at sorted position `s`.
    ///
    /// # Panics
    /// Panics if set `s` is not stored as a batmap (hybrid corpora route
    /// through [`Preprocessed::payload`] instead).
    pub fn batmap(&self, s: usize) -> BatmapRef<'_> {
        self.arena.get(s)
    }

    /// Zero-copy typed view of the set at sorted position `s`, whatever
    /// its representation (the hybrid executors' entry point).
    pub fn payload(&self, s: usize) -> SetView<'_> {
        self.arena.payload(s)
    }

    /// How many sets each representation holds (indexed by
    /// [`SetRepr::tag`]) — the histogram the perf scenarios log.
    pub fn repr_histogram(&self) -> [usize; batmap::repr::REPR_COUNT] {
        self.arena.repr_histogram()
    }

    /// Total bytes of all batmap slot arrays (the device-resident data).
    pub fn batmap_bytes(&self) -> usize {
        self.arena.slot_bytes_total()
    }

    /// Persist this corpus: a small JSON side-table header (order maps,
    /// failures, stats) followed by the arena snapshot
    /// ([`BatmapArena::write_to`]). A later process can
    /// [`Preprocessed::read_snapshot`] it and mine without rebuilding.
    pub fn write_snapshot<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let header = PreSnapshotHeader {
            n_items: self.n_items,
            order: self.order.clone(),
            item_to_sorted: self.item_to_sorted.clone(),
            failed_set: self.failed.iter().map(|&(s, _)| s).collect(),
            failed_tid: self.failed.iter().map(|&(_, t)| t).collect(),
            stats: self.stats.clone(),
        };
        let header_json = serde_json::to_string(&header)
            .map_err(|e| std::io::Error::other(format!("snapshot header: {e}")))?;
        hpcutil::fault_point!("snapshot.write.sidetables", |m: String| {
            Err(std::io::Error::other(m))
        });
        w.write_all(&PRE_SNAPSHOT_MAGIC)?;
        w.write_all(&PRE_SNAPSHOT_VERSION.to_le_bytes())?;
        w.write_all(&(header_json.len() as u32).to_le_bytes())?;
        // The side tables feed array indexing on the serving path
        // (`FailedPairs::build`, the order remap), so they get the same
        // corruption protection the arena gives its directory/payload.
        w.write_all(&batmap::arena::snapshot_checksum(header_json.as_bytes()).to_le_bytes())?;
        w.write_all(header_json.as_bytes())?;
        // v2: pad to the next SET_ALIGN boundary so the embedded arena
        // envelope — and through its own padding, the payload — lands
        // 64-byte aligned in the file, as `BatmapArena::from_mapped`
        // requires on the mmap serving path.
        let pad = side_table_pad(header_json.len());
        w.write_all(&[0u8; batmap::arena::SET_ALIGN][..pad])?;
        self.arena.write_to(w)
    }

    /// Persist this corpus to `path` crash-safely via the shared
    /// tmp-file + fsync + atomic-rename path
    /// ([`batmap::arena::atomic_write`]): a crash mid-write — or an
    /// injected `snapshot.write.{sidetables,header,payload,rename}`
    /// fault — never clobbers the previous snapshot at `path`.
    pub fn write_snapshot_file<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        batmap::arena::atomic_write(path.as_ref(), |w| self.write_snapshot(w))
    }

    /// Load a corpus snapshot file written by
    /// [`Preprocessed::write_snapshot_file`] (buffered
    /// [`Preprocessed::read_snapshot`]).
    pub fn read_snapshot_file<P: AsRef<std::path::Path>>(path: P) -> Result<Self, SnapshotError> {
        let file = std::fs::File::open(path)?;
        Self::read_snapshot(&mut std::io::BufReader::new(file))
    }

    /// Load a corpus snapshot file through an explicit
    /// [`SnapshotLoad`] path — the serving stack's entry point.
    ///
    /// * [`SnapshotLoad::Buffered`] (and what `Auto` resolves to by
    ///   default) is [`Preprocessed::read_snapshot_file`]: the whole
    ///   payload is read and checksummed before returning.
    /// * [`SnapshotLoad::Mmap`] maps the file read-only: side tables
    ///   and arena header/directory are validated eagerly, but the
    ///   payload is never touched — pages fault in on first use, and
    ///   the payload checksum is deferred to an explicit
    ///   [`Preprocessed::verify`] call. A cold multi-GiB corpus serves
    ///   its first query in milliseconds.
    pub fn read_snapshot_file_with<P: AsRef<std::path::Path>>(
        path: P,
        load: SnapshotLoad,
    ) -> Result<Self, SnapshotError> {
        match load.resolve() {
            #[cfg(all(unix, target_pointer_width = "64"))]
            SnapshotLoad::Mmap => Self::open_snapshot_mapped(path),
            _ => Self::read_snapshot_file(path),
        }
    }

    /// The mmap corpus open behind [`Preprocessed::read_snapshot_file_with`].
    /// Validates the side tables (checksummed JSON) and the embedded
    /// arena's header and directory from the mapping; the arena payload
    /// stays untouched until queried (or [`Preprocessed::verify`]-ed).
    #[cfg(all(unix, target_pointer_width = "64"))]
    fn open_snapshot_mapped<P: AsRef<std::path::Path>>(path: P) -> Result<Self, SnapshotError> {
        use std::sync::Arc as StdArc;
        let bad = |what: &str| SnapshotError::Format(what.to_string());
        let cut = |what: &str| SnapshotError::Truncated(format!("corpus {what} cut short"));
        let map = StdArc::new(batmap::mmap::MmapFile::open(path.as_ref())?);
        let bytes = map.bytes();
        if bytes.len() < 24 {
            return Err(cut("envelope"));
        }
        if bytes[..8] != PRE_SNAPSHOT_MAGIC {
            return Err(bad("not a preprocessed-corpus snapshot (bad magic)"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != PRE_SNAPSHOT_VERSION {
            return Err(SnapshotError::Format(format!(
                "unsupported corpus snapshot version {version}"
            )));
        }
        let header_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let header_checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let header_bytes = bytes
            .get(24..24 + header_len)
            .ok_or_else(|| cut("side tables"))?;
        if batmap::arena::snapshot_checksum(header_bytes) != header_checksum {
            return Err(SnapshotError::Corrupted(
                "corpus side-table checksum mismatch".to_string(),
            ));
        }
        let header: PreSnapshotHeader = std::str::from_utf8(header_bytes)
            .ok()
            .and_then(|s| serde_json::from_str(s).ok())
            .ok_or_else(|| bad("corpus header does not parse"))?;
        // v2 wrote zero padding here so this offset is SET_ALIGN-ed.
        let pad = side_table_pad(header_len);
        batmap::arena::check_pad_zero(
            bytes
                .get(24 + header_len..24 + header_len + pad)
                .ok_or_else(|| cut("alignment padding"))?,
        )?;
        let arena_at = 24 + header_len + pad;
        let (arena, _end) = BatmapArena::from_mapped(map, arena_at)?;
        Self::from_parts(header, arena)
    }

    /// Whether the arena payload's checksum has been deferred (mmap
    /// load path) and [`Preprocessed::verify`] has something to do.
    pub fn verification_pending(&self) -> bool {
        self.arena.verification_pending()
    }

    /// Run the deferred payload verification of an mmap-loaded corpus
    /// ([`BatmapArena::verify`]); a no-op `Ok` on buffered loads.
    pub fn verify(&self) -> Result<(), SnapshotError> {
        self.arena.verify()
    }

    /// Load a corpus persisted by [`Preprocessed::write_snapshot`],
    /// re-checking the side tables against the embedded arena snapshot
    /// (which performs its own header/checksum validation).
    pub fn read_snapshot<R: Read>(r: &mut R) -> Result<Self, SnapshotError> {
        let bad = |what: &str| SnapshotError::Format(what.to_string());
        // An unexpected EOF inside the fixed envelope is the signature
        // of a torn write, not a malformed file: classify it
        // `Truncated` so callers can tell "retry from the previous
        // snapshot" apart from "this file was never a snapshot".
        let torn = |what: &str, e: std::io::Error| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                SnapshotError::Truncated(format!("corpus {what} cut short"))
            } else {
                SnapshotError::Io(e)
            }
        };
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(|e| torn("magic", e))?;
        if magic != PRE_SNAPSHOT_MAGIC {
            return Err(bad("not a preprocessed-corpus snapshot (bad magic)"));
        }
        let mut u32buf = [0u8; 4];
        r.read_exact(&mut u32buf).map_err(|e| torn("version", e))?;
        let version = u32::from_le_bytes(u32buf);
        if version != PRE_SNAPSHOT_VERSION {
            return Err(SnapshotError::Format(format!(
                "unsupported corpus snapshot version {version}"
            )));
        }
        r.read_exact(&mut u32buf)
            .map_err(|e| torn("header length", e))?;
        let header_len = u32::from_le_bytes(u32buf) as usize;
        let mut u64buf = [0u8; 8];
        r.read_exact(&mut u64buf)
            .map_err(|e| torn("header checksum", e))?;
        let header_checksum = u64::from_le_bytes(u64buf);
        // `take`-bounded read: a corrupted length field surfaces as a
        // truncation error, never as an up-to-4-GiB allocation.
        let mut header_bytes = Vec::new();
        r.by_ref()
            .take(header_len as u64)
            .read_to_end(&mut header_bytes)?;
        if header_bytes.len() != header_len {
            return Err(SnapshotError::Truncated(format!(
                "corpus side tables end after {} of {header_len} bytes",
                header_bytes.len()
            )));
        }
        if batmap::arena::snapshot_checksum(&header_bytes) != header_checksum {
            return Err(SnapshotError::Corrupted(
                "corpus side-table checksum mismatch".to_string(),
            ));
        }
        let header: PreSnapshotHeader = std::str::from_utf8(&header_bytes)
            .ok()
            .and_then(|s| serde_json::from_str(s).ok())
            .ok_or_else(|| bad("corpus header does not parse"))?;
        // v2 alignment padding (zeros, excluded from the checksum and
        // validated as such — bit-rot in the pad must not parse).
        let pad = side_table_pad(header_len);
        let mut padbuf = [0u8; batmap::arena::SET_ALIGN];
        r.read_exact(&mut padbuf[..pad])
            .map_err(|e| torn("alignment padding", e))?;
        batmap::arena::check_pad_zero(&padbuf[..pad])?;
        let arena = BatmapArena::read_from(r)?;
        Self::from_parts(header, arena)
    }

    /// Cross-validate freshly-loaded side tables against their arena
    /// and assemble the corpus — shared tail of every load path.
    fn from_parts(header: PreSnapshotHeader, arena: BatmapArena) -> Result<Self, SnapshotError> {
        let bad = |what: &str| SnapshotError::Format(what.to_string());
        let n = header.n_items as usize;
        if arena.len() < n || !arena.len().is_multiple_of(BLOCK) {
            return Err(bad("arena set count inconsistent with item count"));
        }
        if header.order.len() != n || header.item_to_sorted.len() != n {
            return Err(bad("order maps inconsistent with item count"));
        }
        for (s, &item) in header.order.iter().enumerate() {
            if (item as usize) >= n || header.item_to_sorted[item as usize] != s as u32 {
                return Err(bad("order maps are not inverse permutations"));
            }
        }
        if header.failed_set.len() != header.failed_tid.len() {
            return Err(bad("failure list columns disagree in length"));
        }
        if header.failed_set.iter().any(|&s| (s as usize) >= n) {
            return Err(bad("failure list references an out-of-range item"));
        }
        // Failed tids index the serving database's transaction list
        // (`FailedPairs::build`); the universe size bounds them.
        if header
            .failed_tid
            .iter()
            .any(|&tid| (tid as u64) >= arena.params().m())
        {
            return Err(bad("failure list references an out-of-universe tid"));
        }
        let failed = header
            .failed_set
            .into_iter()
            .zip(header.failed_tid)
            .collect();
        Ok(Preprocessed {
            params: arena.params().clone(),
            arena,
            order: header.order,
            item_to_sorted: header.item_to_sorted,
            n_items: header.n_items,
            failed,
            stats: header.stats,
        })
    }
}

/// Zero bytes written after the JSON side tables (v2) so the embedded
/// arena envelope starts on a [`batmap::arena::SET_ALIGN`] boundary of
/// the file. The side tables begin at byte 24 (magic + version +
/// length + checksum).
fn side_table_pad(header_len: usize) -> usize {
    let pos = 24 + header_len;
    pos.next_multiple_of(batmap::arena::SET_ALIGN) - pos
}

/// JSON side tables of a [`Preprocessed`] snapshot (everything the
/// arena itself does not carry). The failure list is stored as two
/// parallel columns (`failed[i] = (failed_set[i], failed_tid[i])`).
#[derive(serde::Serialize, serde::Deserialize)]
struct PreSnapshotHeader {
    n_items: u32,
    order: Vec<u32>,
    item_to_sorted: Vec<u32>,
    failed_set: Vec<u32>,
    failed_tid: Vec<u32>,
    stats: batmap::InsertStats,
}

impl MemoryFootprint for Preprocessed {
    fn heap_bytes(&self) -> usize {
        self.arena.heap_bytes()
            + self.order.capacity() * 4
            + self.item_to_sorted.capacity() * 4
            + self.failed.capacity() * 8
    }
}

/// Build batmaps for every item of a vertical database and sort them by
/// width, with every engine knob at its default and the storage policy
/// pinned to the legacy all-batmap corpus ([`ReprPolicy::Batmap`] —
/// deliberately *not* consulting the `BATMAP_REPR` override; the GPU
/// upload path and the existing snapshot fixtures rely on it).
pub fn preprocess(v: &VerticalDb, seed: u64, max_loop: u32) -> Preprocessed {
    preprocess_with(
        v,
        seed,
        max_loop,
        EngineOptions::auto().repr(ReprPolicy::Batmap),
    )
}

/// [`preprocess`] with an explicit match-count backend.
#[deprecated(
    since = "0.7.0",
    note = "use `preprocess_with(v, seed, max_loop, EngineOptions::auto()\
            .kernel(..).repr(ReprPolicy::Batmap))`"
)]
pub fn preprocess_with_kernel(
    v: &VerticalDb,
    seed: u64,
    max_loop: u32,
    kernel: KernelBackend,
) -> Preprocessed {
    preprocess_with(
        v,
        seed,
        max_loop,
        EngineOptions::auto()
            .kernel(kernel)
            .repr(ReprPolicy::Batmap),
    )
}

/// [`preprocess`] with explicit match-count backend and host-parallelism
/// knobs; the storage policy stays pinned to the legacy all-batmap
/// corpus.
#[deprecated(
    since = "0.7.0",
    note = "use `preprocess_with(v, seed, max_loop, EngineOptions::auto()\
            .kernel(..).threads(..).repr(ReprPolicy::Batmap))`"
)]
pub fn preprocess_with_options(
    v: &VerticalDb,
    seed: u64,
    max_loop: u32,
    kernel: KernelBackend,
    threads: Parallelism,
) -> Preprocessed {
    preprocess_with(
        v,
        seed,
        max_loop,
        EngineOptions::auto()
            .kernel(kernel)
            .threads(threads)
            .repr(ReprPolicy::Batmap),
    )
}

/// [`preprocess_with`] taking the knobs as three positional arguments.
#[deprecated(
    since = "0.7.0",
    note = "use `preprocess_with(v, seed, max_loop, EngineOptions::auto()\
            .kernel(..).threads(..).repr(..))`"
)]
pub fn preprocess_with_repr(
    v: &VerticalDb,
    seed: u64,
    max_loop: u32,
    kernel: KernelBackend,
    threads: Parallelism,
    repr: ReprPolicy,
) -> Preprocessed {
    preprocess_with(
        v,
        seed,
        max_loop,
        EngineOptions::auto()
            .kernel(kernel)
            .threads(threads)
            .repr(repr),
    )
}

/// Canonical preprocessing entry point: every engine knob — match-count
/// backend, host parallelism, storage representation — arrives as one
/// [`EngineOptions`] value and is pinned on the universe parameters, so
/// both mining engines and every later intersection inherit the
/// configuration. Batmap construction runs in the pool the threads knob
/// selects ([`Parallelism::Serial`] builds strictly sequentially,
/// exercising the single-segment path).
///
/// The storage policy shapes the corpus: [`ReprPolicy::Batmap`]
/// reproduces the legacy all-batmap layout byte-for-byte,
/// [`ReprPolicy::Hybrid`] picks the cheapest layout per item by density
/// (see `batmap::repr` for the thresholds), the forced policies are
/// ablation/testing modes, and [`ReprPolicy::Auto`] resolves through
/// the `BATMAP_REPR` environment override (defaulting to the legacy
/// pure-batmap corpus).
///
/// The corpus keeps the legacy shape guarantees either way: sets sorted
/// by increasing payload width (ties by item id), padding appended
/// **after** every real item (the harvest path depends on padding rows
/// sitting at the end of the sorted order), and every set built in
/// place into one contiguous arena.
pub fn preprocess_with(
    v: &VerticalDb,
    seed: u64,
    max_loop: u32,
    options: EngineOptions,
) -> Preprocessed {
    let m = v.m().max(1) as u64;
    let params: ParamsHandle = Arc::new(
        BatmapParams::with_options(m, seed, max_loop, GPU_MIN_SHIFT).with_engine_options(options),
    );
    let resolved = options.repr.resolve();
    let spec_for = |len: usize| -> SetSpec {
        let range = params.range_for(len);
        match resolved.choose(len, m, range) {
            SetRepr::Batmap => SetSpec::batmap(range),
            SetRepr::Bitmap => SetSpec::bitmap(len),
            SetRepr::Tidlist => SetSpec::tidlist(len),
        }
    };
    let n = v.n_items();
    // Size pass: every width is deterministic from the tidlist length
    // (a batmap's range, a bitmap's universe, a tidlist's cardinality),
    // so the width-sorted order (ties by item id, for determinism) and
    // the whole arena layout exist before any build work. With the
    // pure-batmap policy the width is `3·range_for(len)` — monotone in
    // the range — so this order is exactly the legacy one.
    let mut positions: Vec<u32> = (0..n).collect();
    positions.sort_by_key(|&i| {
        let spec = spec_for(v.tidlist(i).len());
        (spec.width_bytes(&params), i)
    });
    let mut item_to_sorted = vec![0u32; n as usize];
    for (s, &item) in positions.iter().enumerate() {
        item_to_sorted[item as usize] = s as u32;
    }
    let padded = (n as usize).next_multiple_of(BLOCK);
    let empty_spec = spec_for(0);
    let specs: Vec<SetSpec> = positions
        .iter()
        .map(|&i| spec_for(v.tidlist(i).len()))
        .chain(std::iter::repeat_n(empty_spec, padded - n as usize))
        .collect();
    let mut stage = BatmapArena::with_layout(params.clone(), &specs);

    // Build pass: materialize each set in place. Batmap sets cuckoo-
    // build through one reusable scratch builder per worker; bitmap and
    // tidlist sets are direct encodes (every element always "places", so
    // they contribute no failures). Workers own contiguous runs of the
    // width-sorted sets — bump segments of the final buffer.
    let tidlist_of = |s: usize| -> &[u32] {
        if s < n as usize {
            v.tidlist(positions[s])
        } else {
            &[]
        }
    };
    let build_segment = |jobs: Vec<(usize, &mut [u8])>| -> Vec<ArenaSetOutcome> {
        let mut builder = BatmapBuilder::with_capacity(params.clone(), 0);
        jobs.into_iter()
            .map(|(s, out)| {
                let elements = tidlist_of(s);
                match specs[s].repr {
                    SetRepr::Batmap => {
                        builder.reset(elements.len());
                        builder.extend_sorted_dedup(elements);
                        builder.finish_into(out)
                    }
                    SetRepr::Bitmap => {
                        batmap::repr::encode_bitmap_into(elements, out);
                        direct_outcome(elements.len())
                    }
                    SetRepr::Tidlist => {
                        batmap::repr::encode_tidlist_into(elements, out);
                        direct_outcome(elements.len())
                    }
                }
            })
            .collect()
    };
    let outcomes: Vec<ArenaSetOutcome> = {
        let jobs: Vec<(usize, &mut [u8])> = stage.set_slices().into_iter().enumerate().collect();
        let parallel = |jobs: Vec<(usize, &mut [u8])>, workers: usize| -> Vec<ArenaSetOutcome> {
            let per = jobs.len().div_ceil(workers.max(1)).max(1);
            let mut segments: Vec<Vec<(usize, &mut [u8])>> = Vec::new();
            let mut jobs = jobs;
            while !jobs.is_empty() {
                let tail = jobs.split_off(jobs.len().min(per));
                segments.push(std::mem::replace(&mut jobs, tail));
            }
            segments
                .into_par_iter()
                .map(&build_segment)
                .collect::<Vec<Vec<ArenaSetOutcome>>>()
                .into_iter()
                .flatten()
                .collect()
        };
        match params.parallelism().pinned() {
            // Strictly sequential: one segment, no worker threads.
            Some(1) => build_segment(jobs),
            Some(workers) => hpcutil::scoped_pool(workers, || parallel(jobs, workers)),
            None => {
                let workers = rayon::current_num_threads();
                parallel(jobs, workers)
            }
        }
    };
    let lens: Vec<usize> = outcomes.iter().map(|o| o.len).collect();
    let arena = stage.finish(&lens);

    let mut stats = batmap::InsertStats::default();
    let mut failed = Vec::new();
    for (s, out) in outcomes.into_iter().enumerate() {
        stats.elements += out.stats.elements;
        stats.moves += out.stats.moves;
        stats.max_transcript = stats.max_transcript.max(out.stats.max_transcript);
        stats.failures += out.stats.failures;
        for tid in out.failed {
            failed.push((s as u32, tid));
        }
    }
    Preprocessed {
        params,
        arena,
        order: positions,
        item_to_sorted,
        n_items: n,
        failed,
        stats,
    }
}

/// Outcome of a direct (non-cuckoo) encode: every element placed, no
/// moves, no failures.
fn direct_outcome(len: usize) -> ArenaSetOutcome {
    ArenaSetOutcome {
        len,
        failed: Vec::new(),
        stats: batmap::InsertStats {
            elements: len as u64,
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim::TransactionDb;

    fn vertical() -> VerticalDb {
        let db = TransactionDb::new(
            5,
            vec![
                vec![0, 1, 2],
                vec![1, 2, 4],
                vec![0, 2],
                vec![2, 3],
                vec![1, 2, 3, 4],
                vec![2],
            ],
        );
        VerticalDb::from_horizontal(&db)
    }

    #[test]
    fn sorted_by_width_and_padded() {
        let pre = preprocess(&vertical(), 1, 128);
        assert_eq!(pre.n_items, 5);
        assert_eq!(pre.padded_items() % BLOCK, 0);
        for s in 1..pre.padded_items() {
            assert!(pre.batmap(s - 1).width_bytes() <= pre.batmap(s).width_bytes());
        }
    }

    #[test]
    fn order_maps_are_inverse() {
        let pre = preprocess(&vertical(), 2, 128);
        for (s, &item) in pre.order.iter().enumerate() {
            assert_eq!(pre.item_to_sorted[item as usize], s as u32);
        }
    }

    #[test]
    fn batmaps_contain_their_tidlists() {
        let v = vertical();
        let pre = preprocess(&v, 3, 128);
        assert!(pre.failed.is_empty());
        for item in 0..v.n_items() {
            let s = pre.item_to_sorted[item as usize] as usize;
            let bm = pre.batmap(s);
            assert_eq!(bm.len() as u64, v.support(item), "item {item}");
            for &tid in v.tidlist(item) {
                assert!(bm.contains(tid));
            }
        }
        // Padding is empty.
        for pad in pre.n_items as usize..pre.padded_items() {
            assert!(pre.batmap(pad).is_empty());
        }
    }

    #[test]
    fn widths_are_slice_aligned_for_gpu() {
        let pre = preprocess(&vertical(), 4, 128);
        for s in 0..pre.padded_items() {
            let bm = pre.batmap(s);
            assert_eq!(
                bm.width_bytes() % 64,
                0,
                "width {} not slice-aligned",
                bm.width_bytes()
            );
        }
    }

    #[test]
    fn serial_and_parallel_builds_are_byte_identical() {
        // The in-place arena build must produce the same bytes no
        // matter how work is segmented across workers.
        let v = vertical();
        let all_batmap = EngineOptions::auto().repr(ReprPolicy::Batmap);
        let serial = preprocess_with(&v, 9, 128, all_batmap.threads(Parallelism::Serial));
        for threads in [2usize, 3, 8] {
            let par = preprocess_with(
                &v,
                9,
                128,
                all_batmap.threads(Parallelism::threads(threads)),
            );
            assert_eq!(par.padded_items(), serial.padded_items());
            for s in 0..serial.padded_items() {
                assert_eq!(
                    par.batmap(s).as_bytes(),
                    serial.batmap(s).as_bytes(),
                    "set {s} threads {threads}"
                );
            }
            assert_eq!(par.failed, serial.failed);
            assert_eq!(par.stats, serial.stats);
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let v = vertical();
        let pre = preprocess(&v, 6, 128);
        let mut buf = Vec::new();
        pre.write_snapshot(&mut buf).unwrap();
        let loaded = Preprocessed::read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.n_items, pre.n_items);
        assert_eq!(loaded.order, pre.order);
        assert_eq!(loaded.item_to_sorted, pre.item_to_sorted);
        assert_eq!(loaded.failed, pre.failed);
        assert_eq!(loaded.stats, pre.stats);
        assert_eq!(loaded.params.fingerprint(), pre.params.fingerprint());
        for s in 0..pre.padded_items() {
            assert_eq!(loaded.batmap(s).as_bytes(), pre.batmap(s).as_bytes());
            assert_eq!(loaded.batmap(s).len(), pre.batmap(s).len());
        }
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let pre = preprocess(&vertical(), 6, 128);
        let mut buf = Vec::new();
        pre.write_snapshot(&mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] ^= 0xFF; // magic
        assert!(Preprocessed::read_snapshot(&mut bad.as_slice()).is_err());
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x10; // arena payload → checksum mismatch
        assert!(Preprocessed::read_snapshot(&mut bad.as_slice()).is_err());
        // The JSON side table (order maps, failure lists) starts right
        // after magic+version+length+checksum (24 bytes); any flip in
        // it must trip the header checksum — a corrupted failed_tid
        // must never reach `FailedPairs::build` as a panic or, worse,
        // silently wrong counts.
        for poke in [24usize, 40, 64] {
            let mut bad = buf.clone();
            bad[poke] ^= 0x01;
            assert!(
                Preprocessed::read_snapshot(&mut bad.as_slice()).is_err(),
                "side-table corruption at byte {poke} must be rejected"
            );
        }
        assert!(Preprocessed::read_snapshot(&mut buf.as_slice()).is_ok());
    }

    /// A skewed fixture: a dense head item, mid-band items, and a
    /// sparse tail, over a universe big enough that `r₀` padding is
    /// felt.
    fn skewed_vertical() -> VerticalDb {
        let n_items = 12u32;
        // With m = 800 and r₀ = 64 the hybrid bands are: bitmap at
        // len ≥ 25 (density 1/32), tidlist at len ≤ 12 (16·len ≤ 3·64),
        // batmap in between.
        let db = TransactionDb::new(
            n_items,
            (0..800u32)
                .map(|t| {
                    (0..n_items)
                        .filter(|&i| match i {
                            0 => true,             // dense head → bitmap
                            1..=3 => t % 50 == i,  // len 16 → batmap
                            _ => t % 211 == i % 7, // len ≤ 4 → tidlist
                        })
                        .collect()
                })
                .collect(),
        );
        VerticalDb::from_horizontal(&db)
    }

    #[test]
    fn hybrid_corpus_mixes_representations_and_stays_exact() {
        let v = skewed_vertical();
        let pre = preprocess_with(&v, 11, 128, EngineOptions::auto().repr(ReprPolicy::Hybrid));
        let hist = pre.repr_histogram();
        assert!(
            hist.iter().all(|&c| c > 0),
            "fixture must exercise all three representations: {hist:?}"
        );
        assert!(pre.failed.is_empty(), "direct encodes cannot fail");
        // Real items are width-sorted; padding rides at the end
        // (harvest depends on this), whatever its width.
        for s in 1..pre.n_items as usize {
            assert!(pre.payload(s - 1).width_bytes() <= pre.payload(s).width_bytes());
        }
        for pad in pre.n_items as usize..pre.padded_items() {
            assert!(pre.payload(pad).is_empty());
        }
        // Every item's elements survive exactly.
        for item in 0..v.n_items() {
            let s = pre.item_to_sorted[item as usize] as usize;
            let view = pre.payload(s);
            assert_eq!(view.len() as u64, v.support(item), "item {item}");
            for &tid in v.tidlist(item) {
                assert!(view.contains(tid), "item {item} lost tid {tid}");
            }
        }
    }

    #[test]
    fn batmap_policy_is_byte_identical_to_legacy() {
        let v = skewed_vertical();
        let legacy = preprocess(&v, 21, 128);
        let pinned = preprocess_with(&v, 21, 128, EngineOptions::auto().repr(ReprPolicy::Batmap));
        assert_eq!(pinned.order, legacy.order);
        assert!(pinned.arena.is_all_batmap());
        for s in 0..legacy.padded_items() {
            assert_eq!(pinned.batmap(s).as_bytes(), legacy.batmap(s).as_bytes());
        }
        assert_eq!(pinned.failed, legacy.failed);
        assert_eq!(pinned.stats, legacy.stats);
    }

    #[test]
    fn hybrid_serial_and_parallel_builds_are_byte_identical() {
        let v = skewed_vertical();
        let hybrid = EngineOptions::auto().repr(ReprPolicy::Hybrid);
        let serial = preprocess_with(&v, 9, 128, hybrid.threads(Parallelism::Serial));
        for threads in [2usize, 3, 8] {
            let par = preprocess_with(&v, 9, 128, hybrid.threads(Parallelism::threads(threads)));
            assert_eq!(par.padded_items(), serial.padded_items());
            for s in 0..serial.padded_items() {
                assert_eq!(par.arena.repr(s), serial.arena.repr(s), "set {s}");
                let (a, b) = (par.payload(s), serial.payload(s));
                assert_eq!(a.len(), b.len(), "set {s} threads {threads}");
                assert_eq!(a.elements(), b.elements(), "set {s} threads {threads}");
            }
            assert_eq!(par.failed, serial.failed);
            assert_eq!(par.stats, serial.stats);
        }
    }

    #[test]
    fn hybrid_snapshot_roundtrip_preserves_reprs() {
        let v = skewed_vertical();
        let pre = preprocess_with(&v, 6, 128, EngineOptions::auto().repr(ReprPolicy::Hybrid));
        let mut buf = Vec::new();
        pre.write_snapshot(&mut buf).unwrap();
        let loaded = Preprocessed::read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.repr_histogram(), pre.repr_histogram());
        for s in 0..pre.padded_items() {
            assert_eq!(loaded.arena.repr(s), pre.arena.repr(s));
            assert_eq!(loaded.payload(s).elements(), pre.payload(s).elements());
        }
    }

    #[test]
    fn snapshot_arena_envelope_is_aligned_in_the_file() {
        // The v2 contract the mmap open path relies on: however long
        // the JSON side tables are, the embedded arena envelope starts
        // on a SET_ALIGN boundary of the file.
        let pre = preprocess(&vertical(), 6, 128);
        let mut buf = Vec::new();
        pre.write_snapshot(&mut buf).unwrap();
        let header_len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
        let arena_at = 24 + header_len + side_table_pad(header_len);
        assert_eq!(arena_at % batmap::arena::SET_ALIGN, 0);
        assert_eq!(&buf[arena_at..arena_at + 8], b"BATMAPAR");
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    mod mmap_load {
        use super::*;

        fn snapshot_to_temp(pre: &Preprocessed, name: &str) -> std::path::PathBuf {
            let dir = std::env::temp_dir().join(format!("batmap-pre-mmap-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join(name);
            pre.write_snapshot_file(&path).unwrap();
            path
        }

        #[test]
        fn mmap_corpus_load_matches_buffered_exactly() {
            for (name, options) in [
                (
                    "batmap.snap",
                    EngineOptions::auto().repr(ReprPolicy::Batmap),
                ),
                (
                    "hybrid.snap",
                    EngineOptions::auto().repr(ReprPolicy::Hybrid),
                ),
            ] {
                let pre = preprocess_with(&skewed_vertical(), 6, 128, options);
                let path = snapshot_to_temp(&pre, name);
                let buffered =
                    Preprocessed::read_snapshot_file_with(&path, SnapshotLoad::Buffered).unwrap();
                let mapped =
                    Preprocessed::read_snapshot_file_with(&path, SnapshotLoad::Mmap).unwrap();
                assert!(!buffered.verification_pending());
                assert!(mapped.verification_pending());
                mapped.verify().unwrap();
                assert_eq!(mapped.n_items, buffered.n_items);
                assert_eq!(mapped.order, buffered.order);
                assert_eq!(mapped.item_to_sorted, buffered.item_to_sorted);
                assert_eq!(mapped.failed, buffered.failed);
                assert_eq!(mapped.stats, buffered.stats);
                assert_eq!(mapped.repr_histogram(), buffered.repr_histogram());
                for s in 0..buffered.padded_items() {
                    assert_eq!(mapped.arena.repr(s), buffered.arena.repr(s), "set {s}");
                    assert_eq!(
                        mapped.payload(s).elements(),
                        buffered.payload(s).elements(),
                        "set {s}"
                    );
                }
                // The mapped arena payload does not count as heap.
                assert!(mapped.heap_bytes() < buffered.heap_bytes());
                std::fs::remove_file(&path).unwrap();
            }
        }

        #[test]
        fn mmap_corpus_rejects_corruption_like_buffered() {
            let pre = preprocess(&vertical(), 6, 128);
            let path = snapshot_to_temp(&pre, "corrupt.snap");
            let pristine = std::fs::read(&path).unwrap();
            let reseal = |bytes: &[u8]| std::fs::write(&path, bytes).unwrap();

            // Side-table flips and truncation are rejected eagerly.
            for poke in [0usize, 24, 40] {
                let mut bad = pristine.clone();
                bad[poke] ^= 0x01;
                reseal(&bad);
                assert!(
                    Preprocessed::read_snapshot_file_with(&path, SnapshotLoad::Mmap).is_err(),
                    "corruption at byte {poke} must be rejected at open"
                );
            }
            reseal(&pristine[..pristine.len() - 1]);
            assert!(
                Preprocessed::read_snapshot_file_with(&path, SnapshotLoad::Mmap).is_err(),
                "a truncated payload must be rejected at open"
            );

            // A payload bit flip is invisible at open (the point of the
            // deferred checksum) and caught by verify().
            let mut bad = pristine.clone();
            let last = bad.len() - 1;
            bad[last] ^= 0x10;
            reseal(&bad);
            let mapped = Preprocessed::read_snapshot_file_with(&path, SnapshotLoad::Mmap).unwrap();
            assert!(matches!(mapped.verify(), Err(SnapshotError::Corrupted(_))));
            drop(mapped);

            reseal(&pristine);
            let ok = Preprocessed::read_snapshot_file_with(&path, SnapshotLoad::Mmap).unwrap();
            ok.verify().unwrap();
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn failures_are_remapped_to_sorted_space() {
        // Force failures with MaxLoop = 1 on a denser instance.
        let db = TransactionDb::new(
            8,
            (0..200u32)
                .map(|t| (0..8).filter(|&i| (t + i) % 2 == 0).collect())
                .collect(),
        );
        let v = VerticalDb::from_horizontal(&db);
        let pre = preprocess(&v, 5, 1);
        for &(s, tid) in &pre.failed {
            assert!((s as usize) < pre.n_items as usize);
            let item = pre.order[s as usize];
            // The failed tid must genuinely belong to the item's list
            // (failures can only happen for real insertions)…
            assert!(v.tidlist(item).contains(&tid));
            // …and must be absent from the built batmap.
            assert!(!pre.batmap(s as usize).contains(tid));
        }
    }
}
