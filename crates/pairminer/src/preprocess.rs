//! Host-side preprocessing (§III-C, first half).
//!
//! Tidlists become batmaps (built in parallel — construction of
//! different sets is independent), then the batmaps are **sorted by
//! increasing width** so that the 16-wide comparison blocks of the GPU
//! kernel group batmaps of similar width ("resulting in a strongly
//! reduced computation time for the subresults for narrow batmaps").
//! The item list is padded with empty batmaps to a multiple of 16 so
//! every work group is full.
//!
//! Failed insertions are collected as `(sorted item index, tid)` pairs
//! for the `F_b`/`M_{p,q}` postprocessing path.

use batmap::{Batmap, BatmapParams, KernelBackend, Parallelism, ParamsHandle};
use fim::VerticalDb;
use hpcutil::MemoryFootprint;
use rayon::prelude::*;
use std::sync::Arc;

/// Width of the comparison block: the kernel's work groups are 16×16.
pub const BLOCK: usize = 16;

/// Minimum compression shift for GPU-compatible batmaps: `s ≥ 6` makes
/// every width a multiple of 64 bytes (16 words), the slice unit.
pub const GPU_MIN_SHIFT: u32 = 6;

/// Output of preprocessing.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Universe parameters all batmaps share.
    pub params: ParamsHandle,
    /// Batmaps sorted by increasing width, padded with empty batmaps to
    /// a multiple of [`BLOCK`].
    pub batmaps: Vec<Batmap>,
    /// `order[s] = original item id` of sorted position `s` (length =
    /// real item count; padding positions have no entry).
    pub order: Vec<u32>,
    /// `item_to_sorted[item] = sorted position`.
    pub item_to_sorted: Vec<u32>,
    /// Real (unpadded) item count.
    pub n_items: u32,
    /// Failed insertions as `(sorted item index, tid)`.
    pub failed: Vec<(u32, u32)>,
    /// Aggregated construction statistics.
    pub stats: batmap::InsertStats,
}

impl Preprocessed {
    /// Item count including padding (multiple of 16).
    pub fn padded_items(&self) -> usize {
        self.batmaps.len()
    }

    /// Total bytes of all batmap slot arrays (the device-resident data).
    pub fn batmap_bytes(&self) -> usize {
        self.batmaps.iter().map(Batmap::width_bytes).sum()
    }
}

impl MemoryFootprint for Preprocessed {
    fn heap_bytes(&self) -> usize {
        self.batmap_bytes()
            + self.order.capacity() * 4
            + self.item_to_sorted.capacity() * 4
            + self.failed.capacity() * 8
    }
}

/// Build batmaps for every item of a vertical database and sort them by
/// width, with the default ([`KernelBackend::Auto`]) match-count
/// backend.
pub fn preprocess(v: &VerticalDb, seed: u64, max_loop: u32) -> Preprocessed {
    preprocess_with_kernel(v, seed, max_loop, KernelBackend::Auto)
}

/// [`preprocess`] with an explicit match-count backend: the choice is
/// pinned on the universe parameters, so both mining engines and every
/// later intersection inherit it.
pub fn preprocess_with_kernel(
    v: &VerticalDb,
    seed: u64,
    max_loop: u32,
    kernel: KernelBackend,
) -> Preprocessed {
    preprocess_with_options(v, seed, max_loop, kernel, Parallelism::Auto)
}

/// Fully explicit preprocessing: match-count backend plus the
/// host-parallelism knob, both pinned on the universe parameters so
/// every downstream phase inherits them. Batmap construction runs in
/// the pool the knob selects ([`Parallelism::Serial`] builds strictly
/// sequentially).
pub fn preprocess_with_options(
    v: &VerticalDb,
    seed: u64,
    max_loop: u32,
    kernel: KernelBackend,
    threads: Parallelism,
) -> Preprocessed {
    let m = v.m().max(1) as u64;
    let params: ParamsHandle = Arc::new(
        BatmapParams::with_options(m, seed, max_loop, GPU_MIN_SHIFT)
            .with_kernel(kernel)
            .with_threads(threads),
    );
    let n = v.n_items();
    // Parallel construction: one batmap per item, in the configured
    // pool (unpinned `Auto` keeps whatever pool is ambient).
    let build = || -> Vec<batmap::BuildOutcome> {
        (0..n)
            .into_par_iter()
            .map(|item| Batmap::build_sorted(params.clone(), v.tidlist(item)))
            .collect()
    };
    let outcomes: Vec<batmap::BuildOutcome> = match params.parallelism().pinned() {
        Some(workers) => hpcutil::scoped_pool(workers, build),
        None => build(),
    };
    // Sort positions by batmap width (ascending), ties by item id for
    // determinism.
    let mut positions: Vec<u32> = (0..n).collect();
    positions.sort_by_key(|&i| (outcomes[i as usize].batmap.width_bytes(), i));
    let mut item_to_sorted = vec![0u32; n as usize];
    for (s, &item) in positions.iter().enumerate() {
        item_to_sorted[item as usize] = s as u32;
    }
    let mut stats = batmap::InsertStats::default();
    let mut failed = Vec::new();
    let mut batmaps = Vec::with_capacity(positions.len().next_multiple_of(BLOCK));
    // Consume outcomes in sorted order without cloning the batmaps.
    let mut slots: Vec<Option<batmap::BuildOutcome>> = outcomes.into_iter().map(Some).collect();
    for (s, &item) in positions.iter().enumerate() {
        let out = slots[item as usize].take().expect("each item used once");
        stats.elements += out.stats.elements;
        stats.moves += out.stats.moves;
        stats.max_transcript = stats.max_transcript.max(out.stats.max_transcript);
        stats.failures += out.stats.failures;
        for &tid in &out.failed {
            failed.push((s as u32, tid));
        }
        batmaps.push(out.batmap);
    }
    // Pad with empty batmaps so work groups are always full.
    while batmaps.len() % BLOCK != 0 {
        batmaps.push(Batmap::build_sorted(params.clone(), &[]).batmap);
    }
    Preprocessed {
        params,
        batmaps,
        order: positions,
        item_to_sorted,
        n_items: n,
        failed,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim::TransactionDb;

    fn vertical() -> VerticalDb {
        let db = TransactionDb::new(
            5,
            vec![
                vec![0, 1, 2],
                vec![1, 2, 4],
                vec![0, 2],
                vec![2, 3],
                vec![1, 2, 3, 4],
                vec![2],
            ],
        );
        VerticalDb::from_horizontal(&db)
    }

    #[test]
    fn sorted_by_width_and_padded() {
        let pre = preprocess(&vertical(), 1, 128);
        assert_eq!(pre.n_items, 5);
        assert_eq!(pre.padded_items() % BLOCK, 0);
        for w in pre.batmaps.windows(2) {
            assert!(w[0].width_bytes() <= w[1].width_bytes());
        }
    }

    #[test]
    fn order_maps_are_inverse() {
        let pre = preprocess(&vertical(), 2, 128);
        for (s, &item) in pre.order.iter().enumerate() {
            assert_eq!(pre.item_to_sorted[item as usize], s as u32);
        }
    }

    #[test]
    fn batmaps_contain_their_tidlists() {
        let v = vertical();
        let pre = preprocess(&v, 3, 128);
        assert!(pre.failed.is_empty());
        for item in 0..v.n_items() {
            let s = pre.item_to_sorted[item as usize] as usize;
            let bm = &pre.batmaps[s];
            assert_eq!(bm.len() as u64, v.support(item), "item {item}");
            for &tid in v.tidlist(item) {
                assert!(bm.contains(tid));
            }
        }
        // Padding is empty.
        for pad in pre.n_items as usize..pre.padded_items() {
            assert!(pre.batmaps[pad].is_empty());
        }
    }

    #[test]
    fn widths_are_slice_aligned_for_gpu() {
        let pre = preprocess(&vertical(), 4, 128);
        for bm in &pre.batmaps {
            assert_eq!(
                bm.width_bytes() % 64,
                0,
                "width {} not slice-aligned",
                bm.width_bytes()
            );
        }
    }

    #[test]
    fn failures_are_remapped_to_sorted_space() {
        // Force failures with MaxLoop = 1 on a denser instance.
        let db = TransactionDb::new(
            8,
            (0..200u32)
                .map(|t| (0..8).filter(|&i| (t + i) % 2 == 0).collect())
                .collect(),
        );
        let v = VerticalDb::from_horizontal(&db);
        let pre = preprocess(&v, 5, 1);
        for &(s, tid) in &pre.failed {
            assert!((s as usize) < pre.n_items as usize);
            let item = pre.order[s as usize];
            // The failed tid must genuinely belong to the item's list
            // (failures can only happen for real insertions)…
            assert!(v.tidlist(item).contains(&tid));
            // …and must be absent from the built batmap.
            assert!(!pre.batmaps[s as usize].contains(tid));
        }
    }
}
