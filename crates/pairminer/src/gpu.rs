//! The §III-B batmap-comparison kernel, on the `gpu-sim` substrate.
//!
//! Faithful to the paper's description:
//!
//! * all batmaps are transferred to device global memory **once**;
//! * the global size is (tile columns × tile rows), work groups 16×16;
//! * the thread with local index `(li, lj)` in the group at `(gi, gj)`
//!   handles the comparison of batmaps `B(row₀+li)` and `B(col₀+lj)` in
//!   turns of 16 integers (64 batmap elements);
//! * per turn, each of the 256 threads copies two words from global
//!   memory into two 16×16-word shared arrays (coalesced: each row of a
//!   staging array is one 64-byte aligned segment), a barrier is
//!   executed, the 16-word slices are compared branch-free, and the
//!   process repeats until all slices of the relevant batmaps are done;
//! * batmaps sorted by width mean a block's cost is set by its longest
//!   batmap; shorter ones wrap modulo their width (the §II folding),
//!   masked past their own slice count.

use crate::preprocess::Preprocessed;
use crate::schedule::Tile;
use batmap::kernel::KernelDispatch;
use batmap::{KernelBackend, MatchKernel};
use gpu_sim::{dispatch, DeviceSpec, GlobalBuffer, GroupCtx, Kernel, LaunchReport, NdRange};

// Scalar ops charged per staged 32-bit comparison come from the match
// kernel itself (`MatchKernel::ops_per_staged_word`; the paper's u32
// formulation charges 8), so simulated timings reflect the backend.
/// Per-thread per-slice loop/addressing overhead in scalar ops.
const OPS_LOOP: u64 = 8;

/// Batmaps resident in (simulated) device memory.
#[derive(Debug)]
pub struct DeviceData {
    /// All batmap words, concatenated in sorted order.
    pub buffer: GlobalBuffer,
    /// Word offset of each batmap in `buffer`.
    pub offsets: Vec<u32>,
    /// 16-word slice count of each batmap.
    pub slices: Vec<u32>,
    /// Match-count backend inherited from the preprocessed universe
    /// parameters; the comparison kernel dispatches through it.
    pub kernel: KernelBackend,
}

impl DeviceData {
    /// Pack the preprocessed batmaps for upload, reading zero-copy
    /// views straight out of the arena (the host-side copy here models
    /// the host→device transfer itself).
    pub fn upload(pre: &Preprocessed) -> Self {
        assert!(
            pre.arena.is_all_batmap(),
            "the GPU engine requires an all-batmap corpus; \
             re-preprocess with ReprPolicy::Batmap"
        );
        let total_words: usize = pre.batmap_bytes() / 4;
        let mut words = Vec::with_capacity(total_words);
        let mut offsets = Vec::with_capacity(pre.padded_items());
        let mut slices = Vec::with_capacity(pre.padded_items());
        for bm in pre.arena.iter() {
            assert_eq!(
                bm.width_bytes() % 64,
                0,
                "batmap width must be slice-aligned (build with GPU_MIN_SHIFT)"
            );
            offsets.push(words.len() as u32);
            slices.push((bm.width_bytes() / 64) as u32);
            for chunk in bm.as_bytes().chunks_exact(4) {
                words.push(u32::from_le_bytes(chunk.try_into().unwrap()));
            }
        }
        DeviceData {
            buffer: GlobalBuffer::new(words),
            offsets,
            slices,
            kernel: pre.params.kernel_backend(),
        }
    }

    /// One-time host→device transfer cost in seconds.
    pub fn transfer_seconds(&self, device: &DeviceSpec) -> f64 {
        self.buffer.transfer_time(device)
    }
}

/// The tile-comparison kernel, monomorphized over the match-count
/// backend so the per-word comparison inlines (no virtual call in the
/// innermost loop; same treatment as the multiway sweep).
struct CompareKernel<'a, K> {
    data: &'a DeviceData,
    tile: Tile,
    kernel: K,
}

impl<K: MatchKernel> Kernel for CompareKernel<'_, K> {
    fn shared_words(&self) -> usize {
        2 * 16 * 16 // the two 16×16 staging arrays (2 KiB)
    }

    fn run_group(&self, ctx: &mut GroupCtx<'_>) {
        let g = ctx.group_id();
        let row0 = self.tile.row_base + g[1] * 16;
        let col0 = self.tile.col_base + g[0] * 16;
        let row_slices: Vec<u32> = (0..16).map(|r| self.data.slices[row0 + r]).collect();
        let col_slices: Vec<u32> = (0..16).map(|c| self.data.slices[col0 + c]).collect();
        // The block runs as long as its longest batmap (§III-C: "the
        // computation time of each such 16-block will be determined by
        // the longest of these batmaps").
        let max_slices = row_slices
            .iter()
            .chain(col_slices.iter())
            .copied()
            .max()
            .unwrap_or(0);
        let mut counts = [[0u64; 16]; 16];
        for s in 0..max_slices {
            // Stage one 16-word slice per row batmap and per column
            // batmap. Shorter batmaps wrap: slice s mod σ_b, which by
            // the block layout equals folding the positional comparison
            // modulo the smaller width.
            for r in 0..16 {
                let b = row0 + r;
                let si = s % self.data.slices[b];
                let words = ctx.load_seq(
                    &self.data.buffer,
                    (self.data.offsets[b] + si * 16) as usize,
                    16,
                );
                ctx.shared()
                    .region_mut(r * 16..r * 16 + 16)
                    .copy_from_slice(words);
            }
            for c in 0..16 {
                let b = col0 + c;
                let si = s % self.data.slices[b];
                let words = ctx.load_seq(
                    &self.data.buffer,
                    (self.data.offsets[b] + si * 16) as usize,
                    16,
                );
                ctx.shared()
                    .region_mut(256 + c * 16..256 + c * 16 + 16)
                    .copy_from_slice(words);
            }
            ctx.shared_ops(512); // 256 threads × 2 staged words
            ctx.barrier();
            // Compare: every thread pair-compares its two 16-word
            // slices; lanes past a pair's own slice count are masked
            // (the SIMD hardware executes them regardless — cost is
            // charged unconditionally, matching lockstep execution).
            for (li, rs) in row_slices.iter().enumerate() {
                for (lj, cs) in col_slices.iter().enumerate() {
                    if s < (*rs).max(*cs) {
                        let mut c = 0u32;
                        for w in 0..16 {
                            c += self.kernel.count_word_u32(
                                ctx.shared().read(li * 16 + w),
                                ctx.shared().read(256 + lj * 16 + w),
                            );
                        }
                        counts[li][lj] += c as u64;
                    }
                }
            }
            ctx.shared_ops(256 * 32); // 2 shared reads per comparison
            ctx.ops(256 * (16 * self.kernel.ops_per_staged_word() + OPS_LOOP));
            ctx.barrier();
        }
        // Write the 16×16 result block, one coalesced row at a time.
        for (li, row) in counts.iter().enumerate() {
            let out_base = (g[1] * 16 + li) * self.tile.cols + g[0] * 16;
            ctx.store_seq(out_base, row);
        }
    }
}

/// Result of running one tile on the device.
#[derive(Debug, Clone)]
pub struct TileResult {
    /// The tile geometry this result belongs to.
    pub tile: Tile,
    /// Row-major `rows × cols` pair counts.
    pub counts: Vec<u64>,
    /// Launch report (stats + simulated timing).
    pub report: LaunchReport,
}

/// Execute one tile.
pub fn run_tile(device: &DeviceSpec, data: &DeviceData, tile: Tile) -> TileResult {
    struct RunTile<'a> {
        device: &'a DeviceSpec,
        data: &'a DeviceData,
        tile: Tile,
    }
    impl KernelDispatch for RunTile<'_> {
        type Output = LaunchReport;
        fn run<K: MatchKernel>(self, kernel: K) -> LaunchReport {
            let kernel = CompareKernel {
                data: self.data,
                tile: self.tile,
                kernel,
            };
            let range = NdRange::d2([self.tile.cols, self.tile.rows], [16, 16]);
            dispatch(self.device, &kernel, range)
        }
    }
    let report = data.kernel.dispatch(RunTile { device, data, tile });
    let mut counts = vec![0u64; tile.rows * tile.cols];
    report.scatter_into(&mut counts);
    TileResult {
        tile,
        counts,
        report,
    }
}

/// Execute one tile through a [`gpu_sim::CommandQueue`] (time and
/// counters fold into the queue's totals).
pub fn run_tile_queued(
    queue: &mut gpu_sim::CommandQueue<'_>,
    data: &DeviceData,
    tile: Tile,
) -> TileResult {
    struct RunTileQueued<'a, 'q, 'd> {
        queue: &'a mut gpu_sim::CommandQueue<'q>,
        data: &'d DeviceData,
        tile: Tile,
    }
    impl KernelDispatch for RunTileQueued<'_, '_, '_> {
        type Output = LaunchReport;
        fn run<K: MatchKernel>(self, kernel: K) -> LaunchReport {
            let kernel = CompareKernel {
                data: self.data,
                tile: self.tile,
                kernel,
            };
            let range = NdRange::d2([self.tile.cols, self.tile.rows], [16, 16]);
            self.queue.enqueue_kernel(&kernel, range)
        }
    }
    let report = data.kernel.dispatch(RunTileQueued { queue, data, tile });
    let mut counts = vec![0u64; tile.rows * tile.cols];
    report.scatter_into(&mut counts);
    TileResult {
        tile,
        counts,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use fim::{TransactionDb, VerticalDb};

    fn fixture(n_items: u32, m: usize, density_mod: u32) -> (VerticalDb, Preprocessed) {
        let db = TransactionDb::new(
            n_items,
            (0..m)
                .map(|t| {
                    (0..n_items)
                        .filter(|&i| (t as u32 + i).is_multiple_of(density_mod))
                        .collect()
                })
                .collect(),
        );
        let v = VerticalDb::from_horizontal(&db);
        let pre = preprocess(&v, 7, 128);
        (v, pre)
    }

    #[test]
    fn tile_counts_match_direct_intersection() {
        let (_, pre) = fixture(20, 300, 3);
        let data = DeviceData::upload(&pre);
        let device = DeviceSpec::gtx285();
        let tile = crate::schedule::schedule(pre.padded_items(), 2048)[0];
        let result = run_tile(&device, &data, tile);
        for i in 0..pre.padded_items() {
            for j in 0..pre.padded_items() {
                let expect = pre.batmap(i).intersect_count(&pre.batmap(j));
                let got = result.counts[i * tile.cols + j];
                assert_eq!(got, expect, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn mixed_widths_fold_correctly() {
        // Items with very different supports → different batmap widths
        // inside one 16-block.
        let mut tids: Vec<Vec<u32>> = Vec::new();
        for item in 0..18u32 {
            let step = 1 + item as usize % 7;
            tids.push((0..2000u32).step_by(step * 3).collect());
        }
        let v = VerticalDb::new(2000, tids);
        let pre = preprocess(&v, 11, 128);
        let data = DeviceData::upload(&pre);
        let tile = crate::schedule::schedule(pre.padded_items(), 32)[0];
        let result = run_tile(&DeviceSpec::gtx285(), &data, tile);
        for i in 0..tile.rows {
            for j in 0..tile.cols {
                assert_eq!(
                    result.counts[i * tile.cols + j],
                    pre.batmap(i).intersect_count(&pre.batmap(j)),
                    "pair ({i},{j}) widths {} {}",
                    pre.batmap(i).width_bytes(),
                    pre.batmap(j).width_bytes()
                );
            }
        }
    }

    #[test]
    fn kernel_is_fully_coalesced() {
        let (_, pre) = fixture(16, 500, 4);
        let data = DeviceData::upload(&pre);
        let tile = crate::schedule::schedule(pre.padded_items(), 16)[0];
        let result = run_tile(&DeviceSpec::gtx285(), &data, tile);
        // Every staging load is 16 aligned words = 1 transaction of
        // 64 B, fully useful: bus efficiency must be 1 for loads; the
        // only sub-unit efficiency can come from the result stores.
        assert!(
            result.report.stats.efficiency() > 0.9,
            "efficiency {}",
            result.report.stats.efficiency()
        );
    }

    #[test]
    fn simulated_time_scales_with_width() {
        let (_, small) = fixture(16, 200, 4);
        let (_, large) = fixture(16, 3200, 4);
        let ds = DeviceData::upload(&small);
        let dl = DeviceData::upload(&large);
        let t_small = run_tile(
            &DeviceSpec::gtx285(),
            &ds,
            crate::schedule::schedule(small.padded_items(), 16)[0],
        );
        let t_large = run_tile(
            &DeviceSpec::gtx285(),
            &dl,
            crate::schedule::schedule(large.padded_items(), 16)[0],
        );
        assert!(t_large.report.seconds() > t_small.report.seconds());
    }

    #[test]
    fn traffic_matches_analytic_formula() {
        // Same-width batmaps: every group runs σ slices; each slice
        // stages 32 aligned 16-word loads = 32 transactions × 64 B.
        // The §III-B accounting must land on those numbers exactly.
        let tids: Vec<Vec<u32>> = (0..16)
            .map(|i| (0..1000u32).step_by(2 + i as usize % 2).collect())
            .collect();
        let v = VerticalDb::new(1000, tids);
        let pre = preprocess(&v, 3, 128);
        let widths: std::collections::BTreeSet<usize> =
            pre.arena.iter().map(|b| b.width_bytes()).collect();
        assert_eq!(widths.len(), 1, "fixture must be same-width");
        let slices = pre.batmap(0).width_bytes() as u64 / 64;
        let data = DeviceData::upload(&pre);
        let tile = crate::schedule::schedule(pre.padded_items(), 16)[0];
        let result = run_tile(&DeviceSpec::gtx285(), &data, tile);
        let groups = result.report.stats.groups;
        assert_eq!(groups, 1); // 16×16 tile = one group
                               // Loads: 32 transactions/slice; stores: 16 rows × 16 u64 lanes
                               // → 16 half-warp stores of 16 4-byte counters = 16 transactions.
        let expect_load_tx = 32 * slices;
        let store_tx = result.report.stats.transactions - expect_load_tx;
        assert_eq!(store_tx, 16, "store transactions");
        assert_eq!(
            result.report.stats.bus_bytes,
            (expect_load_tx + store_tx) * 64
        );
        assert_eq!(result.report.stats.barriers, 2 * slices);
    }

    #[test]
    fn simulated_cost_scales_with_kernel_lane_width() {
        // The simulator charges each backend its own amortized ops per
        // staged word, so a wider backend must never simulate slower on
        // identical data. Counts must be identical regardless.
        use crate::preprocess::preprocess_with;
        use batmap::{EngineOptions, KernelBackend, ReprPolicy};
        let db = TransactionDb::new(
            16,
            (0..600usize)
                .map(|t| {
                    (0..16)
                        .filter(|&i| (t + i as usize).is_multiple_of(3))
                        .collect()
                })
                .collect(),
        );
        let v = VerticalDb::from_horizontal(&db);
        let device = DeviceSpec::gtx285();
        let mut prev: Option<(f64, Vec<u64>)> = None;
        for backend in [
            KernelBackend::SwarU32,
            KernelBackend::Sse2,
            KernelBackend::Avx2,
        ] {
            if !backend.is_available() {
                continue;
            }
            let pre = preprocess_with(
                &v,
                7,
                128,
                EngineOptions::auto()
                    .kernel(backend)
                    .repr(ReprPolicy::Batmap),
            );
            let data = DeviceData::upload(&pre);
            let tile = crate::schedule::schedule(pre.padded_items(), 16)[0];
            let result = run_tile(&device, &data, tile);
            let secs = result.report.seconds();
            if let Some((prev_secs, prev_counts)) = &prev {
                assert!(
                    secs <= *prev_secs,
                    "wider backend {} simulated slower: {secs} > {prev_secs}",
                    backend.name()
                );
                assert_eq!(&result.counts, prev_counts, "backend {}", backend.name());
            }
            prev = Some((secs, result.counts));
        }
    }

    #[test]
    fn transfer_time_positive() {
        let (_, pre) = fixture(16, 100, 4);
        let data = DeviceData::upload(&pre);
        assert!(data.transfer_seconds(&DeviceSpec::gtx285()) > 0.0);
    }
}
