//! Levelwise frequent k-itemset mining on d-of-(d+1) multiway batmaps
//! — the paper's §V program carried out for arbitrary depth.
//!
//! The paper closes by proposing d-of-(d+1) batmaps so that "itemsets
//! of size up to d would have at least one position witnessing their
//! intersection". [`LevelwiseMiner`] builds the full mining engine on
//! top of that guarantee:
//!
//! 1. **Level 2** comes from the ordinary tiled pair pipeline
//!    ([`crate::miner::mine`]) — or from caller-supplied frequent
//!    pairs, so any pair engine can seed it.
//! 2. **Candidates** for each level `k = 3..=d` come from the Apriori
//!    join ([`fim::apriori::generate_candidates`]): a k-itemset can
//!    only be frequent if all its (k−1)-subsets are. The join emits
//!    candidates sorted, with all extensions of one (k−1)-prefix
//!    consecutive.
//! 3. **Support counting** is positional: each item's tidlist is built
//!    once into a d-of-(d+1) [`MultiwayBatmap`] (lazily — only items
//!    that actually appear in a candidate), and a candidate's support
//!    is one k-way sweep. Candidates sharing a prefix are counted
//!    through the batched [`MultiwayBatmap::intersect_count_many`]
//!    driver, so the shared prefix is folded once per group instead of
//!    once per candidate.
//! 4. **Parallelism**: prefix-groups are partitioned across workers
//!    with the same longest-processing-time rule the tile executors
//!    use ([`crate::executor::balanced_partition`]), honouring the
//!    [`Parallelism`] knob (and therefore `BATMAP_THREADS`).
//! 5. **Fallback**: a multiway build that fails even after range
//!    growth (rare; see [`MultiwayBatmap::build_with_growth`]) marks
//!    its item, and every candidate containing a marked item is
//!    counted by an exact k-way sorted-tidlist merge instead — the
//!    generalization of the pairwise pipeline's failed-insertion path.
//!    Under a hybrid storage policy ([`batmap::ReprPolicy`], via the
//!    pair stage's `repr`) the same path is taken *deliberately* for
//!    items the policy stores as raw tidlists: the k-way batmap sweep
//!    doesn't apply to the sparse tail, and merging a handful of tids
//!    exactly is cheaper than building a d-of-(d+1) batmap for them.
//!
//! Levels that produce no candidates are still reported — as
//! zero-candidate [`LevelReport`]s — and short-circuit all the work
//! above (no candidate join re-derivation, no multiway construction),
//! so an empty level 2 costs nothing.
//!
//! [`crate::kitemsets::mine_triples`] is this engine pinned to
//! `depth = 3`.

use crate::executor::balanced_partition;
use crate::miner::{mine, MinerConfig, MiningReport};
use batmap::{BatmapParams, MultiwayBatmap, MultiwayParams, Parallelism, SetRepr};
use fim::apriori::{generate_candidates, Itemset};
use fim::pairs::PairMap;
use fim::{TransactionDb, VerticalDb};
use hpcutil::{FxHashMap, Stopwatch};
use rayon::prelude::*;
use std::sync::Arc;

/// Configuration of the levelwise engine.
#[derive(Debug, Clone)]
pub struct LevelwiseConfig {
    /// Largest itemset size to mine (`d`); the multiway batmaps are
    /// built with this `d`, so every level's count is one positional
    /// sweep. Must be in `2..=15`.
    pub depth: usize,
    /// Configuration of the level-2 pair stage; its `minsup`, `kernel`
    /// and `threads` govern the higher levels too.
    pub pair: MinerConfig,
    /// Seed of the multiway universe (independent of the pair stage's
    /// batmap seed).
    pub multiway_seed: u64,
    /// Cuckoo `MaxLoop` bound for multiway construction (exposed for
    /// failure-path tests; the default of 128 rarely fails).
    pub multiway_max_loop: u32,
    /// Range doublings [`MultiwayBatmap::build_with_growth`] may spend
    /// recovering a failed build before the engine falls back to exact
    /// merging for that item (0 = fail immediately, the historical
    /// `kitemsets` behaviour).
    pub growth_doublings: u32,
}

impl Default for LevelwiseConfig {
    fn default() -> Self {
        LevelwiseConfig {
            depth: 3,
            pair: MinerConfig::default(),
            multiway_seed: 0x3B47,
            multiway_max_loop: 128,
            growth_doublings: 1,
        }
    }
}

/// Per-level accounting. Every level `2..=depth` is reported, including
/// levels with zero candidates (a level the Apriori join exhausted is
/// data, not an omission).
#[derive(Debug, Clone, Default)]
pub struct LevelReport {
    /// Itemset size of this level.
    pub k: usize,
    /// Candidates the Apriori join generated (for level 2: the seeded
    /// frequent pairs themselves).
    pub candidates: usize,
    /// Candidates at or above `minsup`.
    pub frequent: usize,
    /// Candidates counted by the batched positional sweep.
    pub batched: usize,
    /// Candidates counted by the exact tidlist-merge fallback (some
    /// item's multiway build failed).
    pub fallback: usize,
    /// Wall seconds spent generating and counting this level.
    pub wall_s: f64,
}

/// Full result of a levelwise run.
#[derive(Debug, Clone)]
pub struct LevelwiseReport {
    /// All frequent itemsets of size `2..=depth`, sorted by (size,
    /// items).
    pub itemsets: Vec<Itemset>,
    /// One entry per level `k = 2..=depth`, in order.
    pub levels: Vec<LevelReport>,
    /// Items whose multiway build failed — or whose storage policy
    /// routed them straight to the exact merge (tidlist-repr items
    /// under a hybrid policy). Their candidates took the exact
    /// fallback path.
    pub fallback_items: usize,
    /// The pair stage's full report when this run mined level 2 itself
    /// ([`LevelwiseMiner::mine`]); `None` when seeded from caller
    /// pairs.
    pub pair_report: Option<MiningReport>,
}

impl LevelwiseReport {
    /// The report of level `k`, if `k` is within the mined depth.
    pub fn level(&self, k: usize) -> Option<&LevelReport> {
        self.levels.iter().find(|l| l.k == k)
    }

    /// The frequent itemsets of size `k`, in item order.
    pub fn itemsets_of_len(&self, k: usize) -> Vec<&Itemset> {
        self.itemsets
            .iter()
            .filter(|s| s.items.len() == k)
            .collect()
    }
}

/// The levelwise k-itemset mining engine. See the module docs for the
/// pipeline; construct with [`LevelwiseMiner::new`], run with
/// [`LevelwiseMiner::mine`] (pairs included) or
/// [`LevelwiseMiner::mine_from_pairs`] (seed level 2 externally).
#[derive(Debug, Clone, Default)]
pub struct LevelwiseMiner {
    config: LevelwiseConfig,
}

/// Multiway maps built so far: `None` marks an item whose build failed
/// even after growth — or that the storage policy deliberately left as
/// a raw tidlist (its candidates take the exact fallback either way).
type MapCache = FxHashMap<u32, Option<MultiwayBatmap>>;

impl LevelwiseMiner {
    /// Create an engine for the given configuration.
    ///
    /// # Panics
    /// Panics unless `2 ≤ depth ≤ 15` (the multiway structure's bound).
    pub fn new(config: LevelwiseConfig) -> Self {
        assert!(
            (2..=15).contains(&config.depth),
            "depth must be in 2..=15, got {}",
            config.depth
        );
        LevelwiseMiner { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &LevelwiseConfig {
        &self.config
    }

    /// Mine all frequent itemsets of size `2..=depth`: the tiled pair
    /// pipeline produces level 2, the multiway levels follow.
    pub fn mine(&self, db: &TransactionDb) -> LevelwiseReport {
        let pair_report = mine(db, &self.config.pair);
        let mut report = self.mine_from_pairs(db, &pair_report.pairs);
        report.pair_report = Some(pair_report);
        report
    }

    /// [`LevelwiseMiner::mine`] with an **already-built** pair corpus —
    /// e.g. one loaded from a snapshot
    /// (`Preprocessed::read_snapshot`) — so level 2 skips
    /// preprocessing entirely (`crate::miner::mine_preprocessed`).
    /// Produces the same itemsets as a full run over the database the
    /// corpus was built from (pinned by `tests/snapshot.rs`).
    pub fn mine_with_preprocessed(
        &self,
        db: &TransactionDb,
        pre: &crate::preprocess::Preprocessed,
    ) -> LevelwiseReport {
        let pair_report = crate::miner::mine_preprocessed(db, pre, &self.config.pair);
        let mut report = self.mine_from_pairs(db, &pair_report.pairs);
        report.pair_report = Some(pair_report);
        report
    }

    /// Mine levels `3..=depth` on top of caller-supplied frequent
    /// pairs. `frequent_pairs` must be the minsup-filtered pair
    /// supports of `db` (from any engine); level 2 is reported from
    /// them verbatim.
    pub fn mine_from_pairs(&self, db: &TransactionDb, frequent_pairs: &PairMap) -> LevelwiseReport {
        let minsup = self.config.pair.minsup.max(1);
        let mut itemsets: Vec<Itemset> = frequent_pairs
            .iter()
            .map(|(&(i, j), &support)| Itemset {
                items: vec![i, j],
                support,
            })
            .collect();
        itemsets.sort_unstable_by(|a, b| a.items.cmp(&b.items));
        let mut levels = vec![LevelReport {
            k: 2,
            candidates: frequent_pairs.len(),
            frequent: frequent_pairs.len(),
            ..Default::default()
        }];
        let mut current: Vec<Vec<u32>> = itemsets.iter().map(|s| s.items.clone()).collect();

        // Built lazily: the vertical view and the shared multiway
        // universe exist only once some level has candidates, and each
        // item's map only once it appears in one.
        let mut vertical: Option<VerticalDb> = None;
        let mut params: Option<Arc<MultiwayParams>> = None;
        let mut gate: Option<BatmapParams> = None;
        let mut maps: MapCache = MapCache::default();
        // The resolved storage policy decides which items get multiway
        // maps at all; resolved once so the env read happens up front.
        let repr = self.config.pair.options.repr.resolve();

        for k in 3..=self.config.depth {
            let mut sw = Stopwatch::start();
            // Short-circuit exhausted levels: no join re-derivation, no
            // multiway work — but still a (zero-candidate) report.
            let candidates = if current.is_empty() {
                Vec::new()
            } else {
                generate_candidates(&current)
            };
            let mut level = LevelReport {
                k,
                candidates: candidates.len(),
                ..Default::default()
            };
            if candidates.is_empty() {
                current.clear();
                level.wall_s = sw.lap().as_secs_f64();
                levels.push(level);
                continue;
            }
            let vertical = vertical.get_or_insert_with(|| VerticalDb::from_horizontal(db));
            let params = params.get_or_insert_with(|| {
                Arc::new(
                    MultiwayParams::new(
                        vertical.m().max(1) as u64,
                        self.config.depth,
                        self.config.multiway_seed,
                    )
                    .with_max_loop(self.config.multiway_max_loop)
                    .with_kernel(self.config.pair.options.kernel),
                )
            });
            // The gate reproduces the pair corpus' range geometry
            // (same r₀ floor as `crate::preprocess`), so "tidlist
            // item" below means exactly the items a hybrid pair
            // corpus stores as raw tidlists.
            let gate = gate.get_or_insert_with(|| {
                BatmapParams::with_options(
                    vertical.m().max(1) as u64,
                    self.config.pair.seed,
                    self.config.pair.max_loop,
                    crate::preprocess::GPU_MIN_SHIFT,
                )
            });
            for cand in &candidates {
                for &item in cand {
                    maps.entry(item).or_insert_with(|| {
                        let tidlist = vertical.tidlist(item);
                        // Items the storage policy keeps as raw
                        // tidlists skip the sweep machinery entirely:
                        // the exact merge is their native counter.
                        let chosen =
                            repr.choose(tidlist.len(), gate.m(), gate.range_for(tidlist.len()));
                        if chosen == SetRepr::Tidlist {
                            return None;
                        }
                        MultiwayBatmap::build_with_growth(
                            params.clone(),
                            tidlist,
                            self.config.growth_doublings,
                        )
                    });
                }
            }
            let supports = count_level(
                &candidates,
                &maps,
                vertical,
                self.config.pair.options.threads,
                &mut level,
            );
            current = Vec::new();
            for (cand, support) in candidates.into_iter().zip(supports) {
                if support >= minsup {
                    level.frequent += 1;
                    current.push(cand.clone());
                    itemsets.push(Itemset {
                        items: cand,
                        support,
                    });
                }
            }
            level.wall_s = sw.lap().as_secs_f64();
            levels.push(level);
        }
        itemsets.sort_unstable_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
        LevelwiseReport {
            itemsets,
            levels,
            fallback_items: maps.values().filter(|m| m.is_none()).count(),
            pair_report: None,
        }
    }
}

/// One prefix-group of a level's candidate list: `len` consecutive
/// candidates starting at `start`, all sharing their first `k − 1`
/// items.
#[derive(Debug, Clone, Copy)]
struct Group {
    start: usize,
    len: usize,
}

/// Count one level's candidates, prefix-group by prefix-group,
/// partitioned across workers with the executors' LPT rule. Returns
/// supports aligned with `candidates` and fills the level's
/// batched/fallback tallies.
fn count_level(
    candidates: &[Vec<u32>],
    maps: &MapCache,
    vertical: &VerticalDb,
    threads: Parallelism,
    level: &mut LevelReport,
) -> Vec<u64> {
    let groups = prefix_groups(candidates);
    let workers = threads.resolve_with(rayon::current_num_threads());
    let counted: Vec<(Group, Vec<u64>, usize)> = if workers <= 1 || groups.len() < 2 {
        groups
            .into_iter()
            .map(|g| count_group(g, candidates, maps, vertical))
            .collect()
    } else {
        let buckets = balanced_partition(groups, workers, |g| g.len);
        let run = || {
            let per_bucket: Vec<Vec<(Group, Vec<u64>, usize)>> = buckets
                .into_par_iter()
                .map(|bucket| {
                    bucket
                        .into_iter()
                        .map(|g| count_group(g, candidates, maps, vertical))
                        .collect::<Vec<_>>()
                })
                .collect();
            per_bucket.into_iter().flatten().collect::<Vec<_>>()
        };
        match threads.pinned() {
            Some(n) if n > 1 => hpcutil::scoped_pool(n, run),
            _ => run(),
        }
    };
    let mut supports = vec![0u64; candidates.len()];
    for (group, counts, fallback) in counted {
        level.fallback += fallback;
        level.batched += group.len - fallback;
        supports[group.start..group.start + group.len].copy_from_slice(&counts);
    }
    supports
}

/// Split a sorted candidate list into its runs of equal (k−1)-prefixes.
fn prefix_groups(candidates: &[Vec<u32>]) -> Vec<Group> {
    let mut groups: Vec<Group> = Vec::new();
    for (i, cand) in candidates.iter().enumerate() {
        let prefix = &cand[..cand.len() - 1];
        match groups.last_mut() {
            Some(g) if candidates[g.start][..prefix.len()] == *prefix => g.len += 1,
            _ => groups.push(Group { start: i, len: 1 }),
        }
    }
    groups
}

/// Count one prefix-group: the shared prefix is folded once and every
/// extension swept against it through the batched driver; extensions
/// (or prefixes) with a failed map take the exact merge. Returns the
/// group's supports plus how many of them fell back.
fn count_group(
    group: Group,
    candidates: &[Vec<u32>],
    maps: &MapCache,
    vertical: &VerticalDb,
) -> (Group, Vec<u64>, usize) {
    let cands = &candidates[group.start..group.start + group.len];
    let prefix = &cands[0][..cands[0].len() - 1];
    let base: Option<Vec<&MultiwayBatmap>> = prefix
        .iter()
        .map(|item| maps[item].as_ref())
        .collect::<Option<Vec<_>>>();
    let mut supports = vec![0u64; cands.len()];
    let mut fallback = 0usize;
    // Partition the group's extensions: positional batch where every
    // operand has a map, exact merge otherwise.
    let mut batch_idx: Vec<usize> = Vec::new();
    let mut batch_maps: Vec<&MultiwayBatmap> = Vec::new();
    for (i, cand) in cands.iter().enumerate() {
        let ext = *cand.last().expect("candidates are non-empty");
        match (&base, maps[&ext].as_ref()) {
            (Some(_), Some(map)) => {
                batch_idx.push(i);
                batch_maps.push(map);
            }
            _ => {
                let lists: Vec<&[u32]> = cand.iter().map(|&item| vertical.tidlist(item)).collect();
                supports[i] = k_way_merge(&lists);
                fallback += 1;
            }
        }
    }
    if let (Some(base), false) = (&base, batch_idx.is_empty()) {
        let counts = MultiwayBatmap::intersect_count_many(base, &batch_maps);
        for (&i, count) in batch_idx.iter().zip(counts) {
            supports[i] = count;
        }
    }
    (group, supports, fallback)
}

/// Exact k-way sorted-merge count — the fallback path's oracle-grade
/// counter (generalizes the pairwise pipeline's failed-insertion
/// merging).
fn k_way_merge(lists: &[&[u32]]) -> u64 {
    debug_assert!(!lists.is_empty());
    let mut idx = vec![0usize; lists.len()];
    let mut count = 0u64;
    'outer: loop {
        let mut max = 0u32;
        for (list, &i) in lists.iter().zip(&idx) {
            match list.get(i) {
                Some(&v) => max = max.max(v),
                None => break 'outer,
            }
        }
        let mut all_equal = true;
        for (list, i) in lists.iter().zip(&mut idx) {
            if list[*i] < max {
                *i += 1;
                all_equal = false;
            }
        }
        if all_equal {
            count += 1;
            for i in &mut idx {
                *i += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::Engine;
    use fim::apriori;

    fn db() -> TransactionDb {
        TransactionDb::new(
            12,
            (0..600usize)
                .map(|t| (0..12u32).filter(|&i| (t as u32 + i * 5) % 7 < 3).collect())
                .collect(),
        )
    }

    fn config(depth: usize, minsup: u64) -> LevelwiseConfig {
        LevelwiseConfig {
            depth,
            pair: MinerConfig {
                minsup,
                engine: Engine::Cpu,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Oracle comparison helper: the apriori levelwise miner over the
    /// same depth, sorted the same way.
    fn oracle(d: &TransactionDb, minsup: u64, depth: usize) -> Vec<Itemset> {
        let mut sets = apriori::mine(d, minsup, depth);
        sets.sort_unstable_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
        sets
    }

    #[test]
    fn matches_apriori_across_depths_and_minsups() {
        let d = db();
        for depth in [2usize, 3, 4, 5] {
            for minsup in [20u64, 60, 120] {
                let report = LevelwiseMiner::new(config(depth, minsup)).mine(&d);
                assert_eq!(
                    report.itemsets,
                    oracle(&d, minsup, depth),
                    "depth={depth} minsup={minsup}"
                );
                assert_eq!(report.levels.len(), depth - 1, "one report per level");
                for (i, level) in report.levels.iter().enumerate() {
                    assert_eq!(level.k, i + 2);
                    assert_eq!(
                        level.frequent,
                        report.itemsets_of_len(level.k).len(),
                        "depth={depth} minsup={minsup} k={}",
                        level.k
                    );
                }
                assert!(report.pair_report.is_some());
            }
        }
    }

    #[test]
    fn forced_fallback_still_exact() {
        // MaxLoop 1 forces failures — but only on *sparse* sets: when
        // m ≤ r the permutation hash is injective and collisions are
        // impossible, so the database must have many transactions
        // relative to each tidlist (≈13% density here).
        let d = TransactionDb::new(
            24,
            (0..3000usize)
                .map(|t| {
                    (0..24u32)
                        .filter(|&i| (t as u32 + i * 7) % 30 < 4)
                        .collect()
                })
                .collect(),
        );
        for depth in [3usize, 4] {
            let mut cfg = config(depth, 20);
            cfg.multiway_max_loop = 1;
            cfg.growth_doublings = 0;
            let report = LevelwiseMiner::new(cfg).mine(&d);
            assert_eq!(report.itemsets, oracle(&d, 20, depth), "depth={depth}");
            assert!(
                report.fallback_items > 0,
                "expected forced build failures at depth {depth}"
            );
            let fallbacks: usize = report.levels.iter().map(|l| l.fallback).sum();
            assert!(fallbacks > 0, "fallback candidates must be counted");
        }
    }

    #[test]
    fn empty_levels_are_reported_not_skipped() {
        // minsup above every pair support: level 2 is empty, levels
        // 3..=5 must still appear as zero-candidate reports.
        let d = db();
        let report = LevelwiseMiner::new(config(5, 1_000_000)).mine(&d);
        assert!(report.itemsets.is_empty());
        assert_eq!(report.levels.len(), 4);
        for level in &report.levels {
            assert_eq!(level.candidates, 0, "k={}", level.k);
            assert_eq!(level.frequent, 0);
        }
        // And no multiway machinery was touched.
        assert_eq!(report.fallback_items, 0);
    }

    #[test]
    fn seeded_pairs_match_full_run() {
        let d = db();
        let minsup = 40;
        let full = LevelwiseMiner::new(config(4, minsup)).mine(&d);
        let pairs = mine(
            &d,
            &MinerConfig {
                minsup,
                ..Default::default()
            },
        )
        .pairs;
        let seeded = LevelwiseMiner::new(config(4, minsup)).mine_from_pairs(&d, &pairs);
        assert_eq!(seeded.itemsets, full.itemsets);
        assert!(seeded.pair_report.is_none());
    }

    #[test]
    fn parallel_and_serial_agree() {
        let d = db();
        let mut serial_cfg = config(4, 20);
        serial_cfg.pair.options.threads = Parallelism::Serial;
        let serial = LevelwiseMiner::new(serial_cfg).mine(&d);
        for threads in [2usize, 4, 8] {
            let mut cfg = config(4, 20);
            cfg.pair.options.threads = Parallelism::threads(threads);
            let parallel = LevelwiseMiner::new(cfg).mine(&d);
            assert_eq!(parallel.itemsets, serial.itemsets, "threads={threads}");
        }
    }

    #[test]
    fn hybrid_policy_matches_batmap_and_routes_tidlists_to_exact_merge() {
        // Dense head (bitmap band) plus sparse co-occurring tails
        // (tidlist band at the r₀ = 64 floor: len 8 ≤ 12): the hybrid
        // policy must skip multiway builds for the sparse items,
        // count their candidates by the exact merge, and still report
        // exactly the pure-batmap itemsets.
        let d = TransactionDb::new(
            10,
            (0..800usize)
                .map(|t| {
                    (0..10u32)
                        .filter(|&i| {
                            if i < 3 {
                                (t as u32 + i) % 3 < 2
                            } else {
                                t as u32 % 100 == i % 2
                            }
                        })
                        .collect()
                })
                .collect(),
        );
        let mut batmap_cfg = config(4, 4);
        batmap_cfg.pair.options.repr = batmap::ReprPolicy::Batmap;
        let baseline = LevelwiseMiner::new(batmap_cfg).mine(&d);
        assert_eq!(baseline.itemsets, oracle(&d, 4, 4));
        assert_eq!(baseline.fallback_items, 0, "pure batmap never falls back");

        let mut hybrid_cfg = config(4, 4);
        hybrid_cfg.pair.options.repr = batmap::ReprPolicy::Hybrid;
        let hybrid = LevelwiseMiner::new(hybrid_cfg).mine(&d);
        assert_eq!(hybrid.itemsets, baseline.itemsets);
        assert!(
            hybrid.fallback_items >= 4,
            "sparse tidlist items must skip multiway builds, got {}",
            hybrid.fallback_items
        );
        let fallbacks: usize = hybrid.levels.iter().map(|l| l.fallback).sum();
        assert!(fallbacks > 0, "their candidates take the exact merge");
    }

    #[test]
    #[should_panic]
    fn depth_out_of_range_rejected() {
        let _ = LevelwiseMiner::new(config(1, 1));
    }

    #[test]
    fn k_way_merge_exact() {
        let a: Vec<u32> = (0..300).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..200).map(|i| i * 3).collect();
        let c: Vec<u32> = (0..120).map(|i| i * 5).collect();
        // Multiples of 30 below 600.
        assert_eq!(k_way_merge(&[&a, &b, &c]), 20);
        assert_eq!(k_way_merge(&[&a, &[], &c]), 0);
        assert_eq!(k_way_merge(&[&a, &b]), 100); // multiples of 6 < 600
        assert_eq!(k_way_merge(&[&a]), a.len() as u64);
    }

    #[test]
    fn prefix_groups_are_runs() {
        let cands = vec![
            vec![0, 1, 2],
            vec![0, 1, 5],
            vec![0, 2, 3],
            vec![4, 5, 6],
            vec![4, 5, 7],
        ];
        let groups = prefix_groups(&cands);
        let shape: Vec<(usize, usize)> = groups.iter().map(|g| (g.start, g.len)).collect();
        assert_eq!(shape, vec![(0, 2), (2, 1), (3, 2)]);
    }
}
