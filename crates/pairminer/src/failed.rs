//! Failed-insertion postprocessing (§III-C, "Failed insertions").
//!
//! When insertion of tid `b` into item `i`'s batmap fails, the batmap
//! comparison under-counts every pair `{i, c}` with `c` co-occurring in
//! transaction `b`. The paper's fix: let `F_b` be the items whose
//! insertion of `b` failed and `A_b` all items of transaction `b`; for
//! every `a ∈ F_b, c ∈ A_b` form the pair `(min, max)` and store it in a
//! set `M_{p,q}` keyed by the tile that owns the pair; when `Z_{p,q}`
//! returns from the GPU, extend it with `M_{p,q}`'s pairs.

use crate::schedule::Tile;
use fim::TransactionDb;
use hpcutil::{FxHashMap, FxHashSet};

/// Missing pair counts, bucketed per tile `(p, q)` in sorted-item space.
#[derive(Debug, Clone, Default)]
pub struct FailedPairs {
    /// `(p, q) → ((sᵢ, sⱼ) → missing count)`, `sᵢ < sⱼ` sorted indices.
    tiles: FxHashMap<(u32, u32), FxHashMap<(u32, u32), u64>>,
    /// Total missing pair-occurrences (for reporting).
    total: u64,
}

impl FailedPairs {
    /// Build from the preprocessing failure list.
    ///
    /// * `failed` — `(sorted item index, tid)` pairs from preprocessing.
    /// * `db` — the horizontal database (`A_b` comes from here).
    /// * `item_to_sorted` — original item id → sorted index.
    /// * `k` — tile side, for bucketing.
    pub fn build(
        failed: &[(u32, u32)],
        db: &TransactionDb,
        item_to_sorted: &[u32],
        k: usize,
    ) -> Self {
        let mut by_tid: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for &(s, tid) in failed {
            by_tid.entry(tid).or_default().push(s);
        }
        let mut out = FailedPairs::default();
        for (&tid, f_b) in &by_tid {
            let a_b: Vec<u32> = db.transactions()[tid as usize]
                .iter()
                .map(|&item| item_to_sorted[item as usize])
                .collect();
            // Set semantics per transaction: if both endpoints failed,
            // the pair appears from both sides of F_b × A_b — count it
            // once ("store each pair in a set").
            let mut pairs_of_b: FxHashSet<(u32, u32)> = FxHashSet::default();
            for &a in f_b {
                for &c in &a_b {
                    if a != c {
                        pairs_of_b.insert((a.min(c), a.max(c)));
                    }
                }
            }
            for (si, sj) in pairs_of_b {
                let key = ((si as usize / k) as u32, (sj as usize / k) as u32);
                *out.tiles
                    .entry(key)
                    .or_default()
                    .entry((si, sj))
                    .or_insert(0) += 1;
                out.total += 1;
            }
        }
        out
    }

    /// Missing counts belonging to one tile (None when the tile is
    /// clean — the common case).
    pub fn for_tile(&self, tile: &Tile) -> Option<&FxHashMap<(u32, u32), u64>> {
        self.tiles.get(&(tile.p, tile.q))
    }

    /// Total missing pair-occurrences across all tiles.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True when no insertion failed.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        TransactionDb::new(4, vec![vec![0, 1, 2], vec![1, 2, 3], vec![0, 3]])
    }

    #[test]
    fn empty_failures_empty_pairs() {
        let f = FailedPairs::build(&[], &db(), &[0, 1, 2, 3], 16);
        assert!(f.is_empty());
        assert_eq!(f.total(), 0);
    }

    #[test]
    fn single_failure_produces_cooccurrence_pairs() {
        // Identity sorted order; item 1 failed to store tid 0.
        // A_0 = {0,1,2} → pairs (0,1) and (1,2), each missing once.
        let f = FailedPairs::build(&[(1, 0)], &db(), &[0, 1, 2, 3], 16);
        assert_eq!(f.total(), 2);
        let tile = Tile {
            p: 0,
            q: 0,
            row_base: 0,
            col_base: 0,
            rows: 16,
            cols: 16,
        };
        let m = f.for_tile(&tile).unwrap();
        assert_eq!(m[&(0, 1)], 1);
        assert_eq!(m[&(1, 2)], 1);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn double_failure_counted_once_per_transaction() {
        // Both items 1 and 2 failed tid 0: pair (1,2) must appear once,
        // not twice (the paper's min/max set trick).
        let f = FailedPairs::build(&[(1, 0), (2, 0)], &db(), &[0, 1, 2, 3], 16);
        let tile = Tile {
            p: 0,
            q: 0,
            row_base: 0,
            col_base: 0,
            rows: 16,
            cols: 16,
        };
        let m = f.for_tile(&tile).unwrap();
        assert_eq!(m[&(1, 2)], 1);
        // (0,1), (0,2) also missing once each.
        assert_eq!(m[&(0, 1)], 1);
        assert_eq!(m[&(0, 2)], 1);
    }

    #[test]
    fn same_pair_from_two_transactions_accumulates() {
        // Item 1 failed tids 0 and 1; both transactions contain item 2.
        let f = FailedPairs::build(&[(1, 0), (1, 1)], &db(), &[0, 1, 2, 3], 16);
        let tile = Tile {
            p: 0,
            q: 0,
            row_base: 0,
            col_base: 0,
            rows: 16,
            cols: 16,
        };
        assert_eq!(f.for_tile(&tile).unwrap()[&(1, 2)], 2);
    }

    #[test]
    fn pairs_bucket_into_the_owning_tile() {
        // Sorted space reshuffled: item 0→17, 1→1, 2→2, 3→3 with k=16:
        // pair (1,17) lands in tile (0,1).
        let f = FailedPairs::build(&[(1, 0)], &db(), &[17, 1, 2, 3], 16);
        let t01 = Tile {
            p: 0,
            q: 1,
            row_base: 0,
            col_base: 16,
            rows: 16,
            cols: 16,
        };
        let m = f.for_tile(&t01).unwrap();
        assert_eq!(m[&(1, 17)], 1);
        let t00 = Tile {
            p: 0,
            q: 0,
            row_base: 0,
            col_base: 0,
            rows: 16,
            cols: 16,
        };
        assert_eq!(f.for_tile(&t00).unwrap()[&(1, 2)], 1);
    }
}
