//! Memory accounting of the mining pipeline (the GPU series of Fig. 5).
//!
//! The paper reports the *host* memory of its (unoptimized Python)
//! preprocessing. We report the footprint of every live structure per
//! phase; the figure harness sums what coexists at the peak.

use serde::Serialize;

/// Byte footprint of each pipeline structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct MemoryReport {
    /// Vertical tidlists (preprocessing input).
    pub tidlists_bytes: usize,
    /// All batmap slot arrays + order maps + failure list.
    pub preprocessed_bytes: usize,
    /// Device-resident buffer (same data as the batmaps, packed).
    pub device_bytes: usize,
    /// One tile's result matrix (`rows × cols × 8`).
    pub tile_buffer_bytes: usize,
    /// Failed-pair side structures.
    pub failed_bytes: usize,
}

impl MemoryReport {
    /// Peak live bytes: preprocessing holds tidlists + batmaps at once;
    /// mining holds batmaps + device copy + one tile buffer + failure
    /// sets. The maximum of the two phases is the figure's number.
    pub fn peak_bytes(&self) -> usize {
        let preprocessing = self.tidlists_bytes + self.preprocessed_bytes;
        let mining = self.preprocessed_bytes
            + self.device_bytes
            + self.tile_buffer_bytes
            + self.failed_bytes;
        preprocessing.max(mining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_max_of_phases() {
        let r = MemoryReport {
            tidlists_bytes: 100,
            preprocessed_bytes: 50,
            device_bytes: 10,
            tile_buffer_bytes: 5,
            failed_bytes: 0,
        };
        assert_eq!(r.peak_bytes(), 150);
        let r2 = MemoryReport {
            tidlists_bytes: 10,
            ..r
        };
        assert_eq!(r2.peak_bytes(), 65);
    }
}
