//! # pairminer — the paper's frequent-pair-mining system
//!
//! End-to-end implementation of §III: host-side preprocessing (tidlists
//! → batmaps, sorted by width), the k×k tile schedule with triangular
//! symmetry, the §III-B comparison kernel executed on the `gpu-sim`
//! substrate (or for real on host cores, serially or across all cores
//! through the shared [`executor`] subsystem), and the failed-insertion
//! postprocessing path.
//!
//! ```
//! use pairminer::{mine, MinerConfig};
//! use fim::TransactionDb;
//!
//! let db = TransactionDb::new(4, vec![
//!     vec![0, 1, 2],
//!     vec![1, 2, 3],
//!     vec![0, 1],
//! ]);
//! let report = mine(&db, &MinerConfig::default());
//! assert_eq!(report.pairs[&(1, 2)], 2);
//! ```

#![warn(missing_docs)]

pub mod cpu;
pub mod executor;
pub mod failed;
pub mod gpu;
pub mod ingest;
pub mod kitemsets;
pub mod levelwise;
pub mod memory;
pub mod miner;
pub mod preprocess;
pub mod schedule;

pub use batmap::{Parallelism, ReprPolicy, SetRepr};
pub use executor::{
    balanced_partition, ExecReport, GpuSimExecutor, ParallelCpuExecutor, SerialCpuExecutor,
    TileConsumer, TileExecutor, TilePlan,
};
pub use ingest::{CompactionJob, IngestError, LayeredCorpus, WindowedMiner};
pub use kitemsets::{mine_triples, TripleReport};
pub use levelwise::{LevelReport, LevelwiseConfig, LevelwiseMiner, LevelwiseReport};
pub use memory::MemoryReport;
pub use miner::{mine, mine_preprocessed, Engine, MinerConfig, MiningReport, Timings};
pub use preprocess::{preprocess, preprocess_with, Preprocessed, BLOCK, GPU_MIN_SHIFT};
#[allow(deprecated)] // the shims stay importable from their old paths
pub use preprocess::{preprocess_with_kernel, preprocess_with_options, preprocess_with_repr};
pub use schedule::{schedule, Tile};
