//! Incremental ingestion: a mutable [`LayeredCorpus`] over an immutable
//! preprocessed snapshot, background compaction, and a sliding-window
//! miner.
//!
//! The preprocessing pipeline ([`mod@crate::preprocess`]) builds a corpus
//! once; this module makes it *live*. A [`LayeredCorpus`] keeps the
//! base [`Preprocessed`] arena untouched — so every SIMD sweep and
//! mixed-representation kernel still runs over contiguous immutable
//! bytes — and layers a [`batmap::DeltaRegion`] of small owned mutable
//! sets on top (tidlist buffers promoting to [`batmap::Batmap`]s built
//! by `insert_mut`, per the hybrid thresholds). Queries merge base and
//! delta:
//!
//! * counts — base count + delta adds − delta removes;
//! * membership — one delta probe, then the base (stored ∪ failed);
//! * pair counts — the base×base kernel sweep, then the O(|delta|)
//!   inclusion–exclusion correction ([`batmap::layered_pair_count`]),
//!   stacked on the usual failed-insertion corrections.
//!
//! Writes are whole transactions: [`LayeredCorpus::insert_txn`] fills a
//! free transaction slot, [`LayeredCorpus::remove_txn`] clears a live
//! one. Both are **idempotent** (re-applying an already-applied write
//! answers `Ok(0)`), which is what makes the retrying network client
//! safe to re-issue them after an ambiguous transport failure. The
//! transaction-id universe `m` is fixed at build time — a stream of
//! fresh transactions recycles the slots of expired ones, which is
//! exactly what [`WindowedMiner`] does with its ring of `capacity`
//! slots over the last `window` transactions.
//!
//! [`LayeredCorpus::compact`] folds base+delta into a fresh arena via
//! the standard two-pass width-sorted build and swaps it in (the swap
//! is guarded by the `ingest.compact.swap` fault site; a failed swap
//! leaves the old state fully intact). [`LayeredCorpus::begin_compaction`]
//! / [`LayeredCorpus::try_finish_compaction`] split that into a
//! snapshot–build–swap sequence so the (expensive) build can run off
//! any lock, with the swap refused when writes raced it. Writes
//! themselves pass the `ingest.apply` fault site before touching
//! anything, so an injected fault is atomic: the corpus is either
//! unchanged or fully updated.
//!
//! ```
//! use batmap::EngineOptions;
//! use fim::TransactionDb;
//! use pairminer::ingest::LayeredCorpus;
//!
//! // Three items over eight transaction slots, three of them live.
//! let db = TransactionDb::new(
//!     3,
//!     vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![], vec![], vec![], vec![], vec![]],
//! );
//! let mut corpus = LayeredCorpus::new(&db, 0xFEED, 128, EngineOptions::auto());
//! assert_eq!(corpus.pair_count(0, 1), 1); // items 0 and 1 share transaction 0
//!
//! corpus.insert_txn(3, &[0, 1, 2]).unwrap(); // live write into a free slot
//! assert_eq!(corpus.pair_count(0, 1), 2);
//! assert!(corpus.member(2, 3));
//!
//! corpus.remove_txn(0).unwrap();
//! assert_eq!(corpus.pair_count(0, 1), 1);
//!
//! corpus.compact().unwrap(); // fold the delta into a fresh arena
//! assert!(!corpus.is_dirty());
//! assert_eq!(corpus.pair_count(0, 1), 1); // compaction is query-invisible
//! ```

use crate::preprocess::{preprocess_with, Preprocessed};
use crate::{LevelwiseConfig, LevelwiseMiner, LevelwiseReport};
use batmap::intersect::count_mixed_with;
use batmap::{layered_pair_count, DeltaRegion, EngineOptions, SetView};
use fim::{TransactionDb, VerticalDb};
use hpcutil::fault_point;
use std::collections::VecDeque;

/// A rejected or failed write-path operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The transaction id is outside the fixed universe `m`.
    OutOfUniverse {
        /// The offending transaction id.
        tid: u32,
        /// The universe size.
        m: u64,
    },
    /// An item id is outside the fixed vocabulary.
    UnknownItem {
        /// The offending item id.
        item: u32,
        /// The vocabulary size.
        n: u32,
    },
    /// The item list is not strictly ascending (or empty).
    BadItems(String),
    /// The slot is live with *different* items (a same-items re-insert
    /// is an idempotent no-op instead).
    Conflict {
        /// The contested transaction id.
        tid: u32,
    },
    /// An injected `ingest.*` fault (or a compaction refused because
    /// concurrent writes raced it).
    Fault(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::OutOfUniverse { tid, m } => {
                write!(f, "transaction id {tid} outside the universe of {m} slots")
            }
            IngestError::UnknownItem { item, n } => {
                write!(f, "item {item} outside the vocabulary of {n} items")
            }
            IngestError::BadItems(what) => write!(f, "bad item list: {what}"),
            IngestError::Conflict { tid } => {
                write!(f, "transaction slot {tid} is live with different items")
            }
            IngestError::Fault(message) => write!(f, "ingest fault: {message}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<IngestError> for std::io::Error {
    fn from(e: IngestError) -> std::io::Error {
        std::io::Error::other(e.to_string())
    }
}

/// A snapshotted compaction job: the ground-truth transactions plus the
/// version they were taken at. [`CompactionJob::build`] runs the
/// two-pass width-sorted rebuild without touching the live corpus, so a
/// server can hold no lock (or only a read lock) while it runs; the
/// result swaps in through [`LayeredCorpus::try_finish_compaction`],
/// which refuses if any write landed in between.
#[derive(Debug, Clone)]
pub struct CompactionJob {
    txns: Vec<Vec<u32>>,
    version: u64,
    n_items: u32,
    seed: u64,
    max_loop: u32,
    options: EngineOptions,
}

impl CompactionJob {
    /// The corpus version this job snapshotted (what the swap is
    /// validated against).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Rebuild base+delta into a fresh width-sorted arena. Pure
    /// function of the snapshot — run it anywhere.
    pub fn build(&self) -> Preprocessed {
        let db = TransactionDb::new(self.n_items, self.txns.clone());
        let v = VerticalDb::from_horizontal(&db);
        preprocess_with(&v, self.seed, self.max_loop, self.options)
    }
}

/// A live corpus: an immutable preprocessed base, a mutable delta
/// region, and the ground-truth transaction mirror that makes writes
/// validatable and compaction a pure rebuild. See the module docs.
#[derive(Debug)]
pub struct LayeredCorpus {
    pre: Preprocessed,
    /// Per-sorted-position deltas over the base payloads.
    delta: DeltaRegion,
    /// Failed (unstored) base elements per sorted position, ascending.
    /// Base membership is stored ∪ failed.
    failed_by_set: Vec<Vec<u32>>,
    /// The live transactions, `txns[tid]` strictly ascending (empty =
    /// free slot). Length is exactly the universe size `m`.
    txns: Vec<Vec<u32>>,
    /// Seed for compaction rebuilds.
    seed: u64,
    /// Bumped by every applied write and every compaction swap; the
    /// optimistic-concurrency token of the two-phase compaction.
    version: u64,
}

impl LayeredCorpus {
    /// Preprocess `db` and wrap it as a live corpus. `db.len()` fixes
    /// the transaction-slot universe; size it for the writes you expect
    /// (free slots cost nothing in the arena — empty sets).
    pub fn new(db: &TransactionDb, seed: u64, max_loop: u32, options: EngineOptions) -> Self {
        let v = VerticalDb::from_horizontal(db);
        let pre = preprocess_with(&v, seed, max_loop, options);
        let txns = db.transactions().to_vec();
        Self::assemble(pre, txns, seed)
    }

    /// Wrap an existing preprocessed corpus (e.g. one loaded from a
    /// snapshot) as a live corpus, reconstructing the transaction
    /// mirror from stored ∪ failed elements. `seed` feeds compaction
    /// rebuilds.
    pub fn from_preprocessed(pre: Preprocessed, seed: u64) -> Self {
        let mut txns: Vec<Vec<u32>> = vec![Vec::new(); pre.params.m() as usize];
        for s in 0..pre.n_items as usize {
            let item = pre.order[s];
            for tid in pre.payload(s).elements() {
                txns[tid as usize].push(item);
            }
        }
        for &(s, tid) in &pre.failed {
            txns[tid as usize].push(pre.order[s as usize]);
        }
        for txn in &mut txns {
            txn.sort_unstable();
            txn.dedup();
        }
        Self::assemble(pre, txns, seed)
    }

    fn assemble(pre: Preprocessed, txns: Vec<Vec<u32>>, seed: u64) -> Self {
        debug_assert_eq!(txns.len() as u64, pre.params.m());
        let mut failed_by_set = vec![Vec::new(); pre.n_items as usize];
        for &(s, tid) in &pre.failed {
            failed_by_set[s as usize].push(tid);
        }
        for list in &mut failed_by_set {
            list.sort_unstable();
        }
        let delta = DeltaRegion::new(pre.params.clone(), pre.n_items as usize);
        LayeredCorpus {
            pre,
            delta,
            failed_by_set,
            txns,
            seed,
            version: 0,
        }
    }

    // -- accessors -----------------------------------------------------

    /// The immutable base corpus (arena, order maps, params).
    pub fn pre(&self) -> &Preprocessed {
        &self.pre
    }

    /// Vocabulary size (original item ids are `0..n_items`).
    pub fn n_items(&self) -> u32 {
        self.pre.n_items
    }

    /// Transaction-slot universe size.
    pub fn m(&self) -> u64 {
        self.pre.params.m()
    }

    /// The optimistic-concurrency version: bumped by every applied
    /// write and every compaction swap.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// True when the delta region records any difference from the base
    /// (i.e. a compaction would change the arena).
    pub fn is_dirty(&self) -> bool {
        !self.delta.is_empty()
    }

    /// Membership differences from the base snapshot (delta adds +
    /// removes) — what a compaction would fold in.
    pub fn delta_memberships(&self) -> u64 {
        self.delta.memberships()
    }

    /// The live items of transaction slot `tid` (empty = free).
    pub fn transaction(&self, tid: u32) -> &[u32] {
        &self.txns[tid as usize]
    }

    /// Number of live (non-empty) transaction slots.
    pub fn live_transactions(&self) -> usize {
        self.txns.iter().filter(|t| !t.is_empty()).count()
    }

    /// Zero-copy view of the *base* payload at sorted position `s` (the
    /// kernels' input; delta corrections ride on top).
    pub fn payload(&self, s: usize) -> SetView<'_> {
        self.pre.payload(s)
    }

    /// Failed (unstored) base elements at sorted position `s`.
    pub fn failed_for(&self, s: usize) -> &[u32] {
        &self.failed_by_set[s]
    }

    // -- queries -------------------------------------------------------

    /// Base membership (stored ∪ failed) at sorted position `s`.
    fn base_contains(&self, s: usize, tid: u32) -> bool {
        self.pre.payload(s).contains(tid) || self.failed_by_set[s].binary_search(&tid).is_ok()
    }

    /// Live support of `item` (base + delta).
    pub fn count(&self, item: u32) -> u64 {
        let s = self.pre.item_to_sorted[item as usize] as usize;
        let base = self.pre.payload(s).len() + self.failed_by_set[s].len();
        (base as i64 + self.delta.count_delta(s)).max(0) as u64
    }

    /// Live membership: does `item`'s set contain `tid`?
    pub fn member(&self, item: u32, tid: u32) -> bool {
        if (tid as u64) >= self.m() {
            return false;
        }
        let s = self.pre.item_to_sorted[item as usize] as usize;
        self.member_sorted(s, tid)
    }

    /// Live membership by sorted position (the engine's path).
    pub fn member_sorted(&self, s: usize, tid: u32) -> bool {
        if (tid as u64) >= self.m() {
            return false;
        }
        self.delta
            .member_delta(s, tid)
            .unwrap_or_else(|| self.base_contains(s, tid))
    }

    /// Turn a raw stored-payload count between sorted positions into
    /// the exact live count: failed-insertion corrections first (the
    /// base is stored ∪ failed), then the layered delta correction.
    /// This is what the engine's coalesced one-vs-many sweeps call per
    /// candidate.
    pub fn corrected(&self, raw: u64, sa: usize, sb: usize) -> u64 {
        let fa = &self.failed_by_set[sa];
        let fb = &self.failed_by_set[sb];
        let mut base = raw;
        if !fa.is_empty() {
            let stored_b = self.pre.payload(sb);
            base += fa.iter().filter(|&&t| stored_b.contains(t)).count() as u64;
        }
        if !fb.is_empty() {
            let stored_a = self.pre.payload(sa);
            base += fb.iter().filter(|&&t| stored_a.contains(t)).count() as u64;
        }
        if !fa.is_empty() && !fb.is_empty() {
            base += sorted_intersection_count(fa, fb);
        }
        layered_pair_count(
            base,
            self.delta.get(sa),
            self.delta.get(sb),
            |x| self.base_contains(sa, x),
            |x| self.base_contains(sb, x),
        )
    }

    /// Exact live count between an ad-hoc probe (strictly ascending
    /// elements) and the set at sorted position `sb`, starting from the
    /// raw stored-payload count.
    pub fn corrected_adhoc(&self, raw: u64, elements: &[u32], sb: usize) -> u64 {
        let fb = &self.failed_by_set[sb];
        let base = raw
            + fb.iter()
                .filter(|&&t| elements.binary_search(&t).is_ok())
                .count() as u64;
        layered_pair_count(
            base,
            None,
            self.delta.get(sb),
            |x| elements.binary_search(&x).is_ok(),
            |x| self.base_contains(sb, x),
        )
    }

    /// Exact live pair count by original item ids: one kernel sweep
    /// over the base payloads plus the O(|delta|) corrections.
    pub fn pair_count(&self, a: u32, b: u32) -> u64 {
        let sa = self.pre.item_to_sorted[a as usize] as usize;
        let sb = self.pre.item_to_sorted[b as usize] as usize;
        let backend = self.pre.params.kernel_backend();
        let raw = count_mixed_with(backend, &self.pre.payload(sa), &self.pre.payload(sb));
        self.corrected(raw, sa, sb)
    }

    /// The `k` items most similar to `item` — largest exact live
    /// intersection count, ties by ascending item id; zero counts and
    /// the probe itself omitted. (Reference implementation; the serving
    /// engine shards and coalesces the same computation.)
    pub fn top_k(&self, item: u32, k: usize) -> Vec<(u32, u64)> {
        let mut hits: Vec<(u32, u64)> = (0..self.n_items())
            .filter(|&other| other != item)
            .map(|other| (other, self.pair_count(item, other)))
            .filter(|&(_, c)| c > 0)
            .collect();
        hits.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }

    /// The live corpus as a horizontal database (what mining and the
    /// differential oracle rebuild from).
    pub fn database(&self) -> TransactionDb {
        TransactionDb::new(self.pre.n_items, self.txns.clone())
    }

    // -- writes --------------------------------------------------------

    fn validate_items(&self, items: &[u32]) -> Result<(), IngestError> {
        if items.is_empty() {
            return Err(IngestError::BadItems("empty transaction".into()));
        }
        if !items.windows(2).all(|w| w[0] < w[1]) {
            return Err(IngestError::BadItems("items not strictly ascending".into()));
        }
        let n = self.n_items();
        if let Some(&item) = items.iter().find(|&&i| i >= n) {
            return Err(IngestError::UnknownItem { item, n });
        }
        Ok(())
    }

    /// Fill free transaction slot `tid` with `items` (strictly
    /// ascending item ids). Idempotent: re-inserting a live slot with
    /// identical items answers `Ok(0)`; different items are a
    /// [`IngestError::Conflict`]. Returns the number of memberships
    /// changed. The `ingest.apply` fault site fires before any state is
    /// touched, so an injected fault leaves the corpus unchanged.
    pub fn insert_txn(&mut self, tid: u32, items: &[u32]) -> Result<u64, IngestError> {
        if (tid as u64) >= self.m() {
            return Err(IngestError::OutOfUniverse { tid, m: self.m() });
        }
        self.validate_items(items)?;
        let live = &self.txns[tid as usize];
        if !live.is_empty() {
            return if live == items {
                Ok(0)
            } else {
                Err(IngestError::Conflict { tid })
            };
        }
        fault_point!("ingest.apply", |m: String| Err(IngestError::Fault(m)));
        for &item in items {
            let s = self.pre.item_to_sorted[item as usize] as usize;
            let in_base = self.base_contains(s, tid);
            self.delta.apply_add(s, tid, in_base);
        }
        self.txns[tid as usize] = items.to_vec();
        self.version += 1;
        Ok(items.len() as u64)
    }

    /// Clear live transaction slot `tid`. Idempotent: removing a free
    /// slot answers `Ok(0)`. Returns the number of memberships changed.
    pub fn remove_txn(&mut self, tid: u32) -> Result<u64, IngestError> {
        if (tid as u64) >= self.m() {
            return Err(IngestError::OutOfUniverse { tid, m: self.m() });
        }
        if self.txns[tid as usize].is_empty() {
            return Ok(0);
        }
        fault_point!("ingest.apply", |m: String| Err(IngestError::Fault(m)));
        let items = std::mem::take(&mut self.txns[tid as usize]);
        for &item in &items {
            let s = self.pre.item_to_sorted[item as usize] as usize;
            let in_base = self.base_contains(s, tid);
            self.delta.apply_remove(s, tid, in_base);
        }
        self.version += 1;
        Ok(items.len() as u64)
    }

    // -- compaction ----------------------------------------------------

    /// Snapshot the ground truth for an off-lock rebuild; pair with
    /// [`LayeredCorpus::try_finish_compaction`].
    pub fn begin_compaction(&self) -> CompactionJob {
        CompactionJob {
            txns: self.txns.clone(),
            version: self.version,
            n_items: self.pre.n_items,
            seed: self.seed,
            max_loop: self.pre.params.max_loop(),
            options: self.pre.params.engine_options(),
        }
    }

    /// Swap a built compaction in — iff no write landed since its
    /// [`CompactionJob`] was begun. Returns `Ok(false)` when writes
    /// raced the build (the caller may begin again, or fall back to the
    /// synchronous [`LayeredCorpus::compact`]).
    pub fn try_finish_compaction(
        &mut self,
        version: u64,
        built: Preprocessed,
    ) -> Result<bool, IngestError> {
        if version != self.version {
            return Ok(false);
        }
        self.swap_in(built)?;
        Ok(true)
    }

    /// Rebuild base+delta into a fresh width-sorted arena and swap it
    /// in, emptying the delta region. Queries are unaffected (the live
    /// contents do not change — pinned by the differential oracle); the
    /// sorted order generally permutes. The swap itself sits behind the
    /// `ingest.compact.swap` fault site: a failed swap leaves the
    /// previous base, delta, and any previously written snapshot file
    /// fully intact.
    pub fn compact(&mut self) -> Result<(), IngestError> {
        if !self.is_dirty() {
            return Ok(());
        }
        let built = self.begin_compaction().build();
        self.swap_in(built)
    }

    fn swap_in(&mut self, built: Preprocessed) -> Result<(), IngestError> {
        fault_point!("ingest.compact.swap", |m: String| Err(IngestError::Fault(
            m
        )));
        let mut failed_by_set = vec![Vec::new(); built.n_items as usize];
        for &(s, tid) in &built.failed {
            failed_by_set[s as usize].push(tid);
        }
        for list in &mut failed_by_set {
            list.sort_unstable();
        }
        self.delta = DeltaRegion::new(built.params.clone(), built.n_items as usize);
        self.failed_by_set = failed_by_set;
        self.pre = built;
        self.version += 1;
        Ok(())
    }

    /// Compact (if dirty) and persist the fresh base crash-safely via
    /// the shared tmp + fsync + atomic-rename path: a crash — or an
    /// injected `ingest.compact.swap` / `snapshot.write.*` fault —
    /// never clobbers the previous snapshot at `path`.
    pub fn compact_to_file<P: AsRef<std::path::Path>>(&mut self, path: P) -> std::io::Result<()> {
        self.compact()?;
        self.pre.write_snapshot_file(path)
    }

    // -- mining --------------------------------------------------------

    /// Mine the live corpus levelwise. Compacts first when dirty so
    /// level 2 runs the tiled pair pipeline over a clean arena; the
    /// report equals a from-scratch mine of [`LayeredCorpus::database`].
    pub fn mine(&mut self, config: LevelwiseConfig) -> Result<LevelwiseReport, IngestError> {
        self.compact()?;
        let db = self.database();
        Ok(LevelwiseMiner::new(config).mine_with_preprocessed(&db, &self.pre))
    }
}

fn sorted_intersection_count(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut n) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Frequent pairs/itemsets over the last `window` transactions of a
/// stream: a [`LayeredCorpus`] whose transaction slots form a ring of
/// `capacity ≥ window` slots, so pushing transaction `seq` reuses slot
/// `seq mod capacity` after the transaction `window` steps older was
/// expired. Mining reports ([`WindowedMiner::report`]) cover exactly
/// the live window and equal a from-scratch mine of those transactions.
#[derive(Debug)]
pub struct WindowedMiner {
    corpus: LayeredCorpus,
    window: usize,
    capacity: usize,
    /// Seqs currently in the window, ascending.
    live: VecDeque<u64>,
    next_seq: u64,
}

impl WindowedMiner {
    /// A miner over `n_items` items keeping the last `window`
    /// transactions, with `capacity` ring slots (`capacity ≥ window`;
    /// extra slack just means expired slots rest longer before reuse).
    ///
    /// # Panics
    /// Panics if `window == 0` or `capacity < window`.
    pub fn new(
        n_items: u32,
        window: usize,
        capacity: usize,
        seed: u64,
        max_loop: u32,
        options: EngineOptions,
    ) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(
            capacity >= window,
            "ring capacity {capacity} smaller than window {window}"
        );
        let db = TransactionDb::new(n_items, vec![Vec::new(); capacity]);
        WindowedMiner {
            corpus: LayeredCorpus::new(&db, seed, max_loop, options),
            window,
            capacity,
            live: VecDeque::with_capacity(window),
            next_seq: 0,
        }
    }

    /// Append one transaction (strictly ascending item ids), expiring
    /// the oldest one first when the window is full. Returns the
    /// transaction's sequence number.
    pub fn push(&mut self, items: &[u32]) -> Result<u64, IngestError> {
        if self.live.len() == self.window {
            // Expire before inserting: with capacity ≥ window the freed
            // slot is exactly the one `seq mod capacity` may reuse.
            let oldest = self.live.pop_front().expect("window non-empty");
            self.corpus
                .remove_txn((oldest % self.capacity as u64) as u32)?;
        }
        let seq = self.next_seq;
        self.corpus
            .insert_txn((seq % self.capacity as u64) as u32, items)?;
        self.live.push_back(seq);
        self.next_seq += 1;
        Ok(seq)
    }

    /// Transactions currently in the window.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The ring capacity (transaction-slot universe).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The layered corpus answering queries over the live window.
    pub fn corpus(&self) -> &LayeredCorpus {
        &self.corpus
    }

    /// Mutable access (e.g. to compact between reports).
    pub fn corpus_mut(&mut self) -> &mut LayeredCorpus {
        &mut self.corpus
    }

    /// Mine the live window levelwise (compacts the accumulated deltas
    /// first). The report equals a from-scratch mine of the window's
    /// transactions.
    pub fn report(&mut self, config: LevelwiseConfig) -> Result<LevelwiseReport, IngestError> {
        self.corpus.mine(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batmap::ReprPolicy;
    use std::collections::BTreeSet;

    fn options() -> EngineOptions {
        EngineOptions::auto().repr(ReprPolicy::Hybrid)
    }

    /// A levelwise config that runs on the host CPU over the hybrid
    /// corpus (the GPU-sim engine requires an all-batmap corpus).
    fn mine_config() -> LevelwiseConfig {
        LevelwiseConfig {
            depth: 3,
            pair: crate::MinerConfig {
                engine: crate::Engine::Cpu,
                options: options(),
                ..crate::MinerConfig::default()
            },
            ..LevelwiseConfig::default()
        }
    }

    fn fixture() -> TransactionDb {
        let mut txns: Vec<Vec<u32>> = (0..48u32)
            .map(|t| (0..6u32).filter(|&i| (t + i) % (i + 2) == 0).collect())
            .collect();
        txns.resize(64, Vec::new());
        TransactionDb::new(6, txns)
    }

    /// Brute-force pair count over the live transaction mirror.
    fn oracle_pair(corpus: &LayeredCorpus, a: u32, b: u32) -> u64 {
        corpus
            .txns
            .iter()
            .filter(|t| t.binary_search(&a).is_ok() && t.binary_search(&b).is_ok())
            .count() as u64
    }

    #[test]
    fn writes_track_the_oracle_and_compaction_is_invisible() {
        let mut corpus = LayeredCorpus::new(&fixture(), 0xA0, 128, options());
        let mut state = 0x1234u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..300 {
            let tid = (next() % 64) as u32;
            if corpus.transaction(tid).is_empty() {
                let items: Vec<u32> = (0..6).filter(|_| next() % 2 == 0).collect();
                if items.is_empty() {
                    continue;
                }
                corpus.insert_txn(tid, &items).unwrap();
            } else {
                corpus.remove_txn(tid).unwrap();
            }
            if step % 37 == 0 {
                corpus.compact().unwrap();
                assert!(!corpus.is_dirty());
            }
            if step % 11 == 0 {
                for a in 0..6 {
                    for b in 0..6 {
                        assert_eq!(
                            corpus.pair_count(a, b),
                            oracle_pair(&corpus, a, b),
                            "step {step} pair ({a},{b})"
                        );
                    }
                    let support = corpus
                        .txns
                        .iter()
                        .filter(|t| t.binary_search(&a).is_ok())
                        .count() as u64;
                    assert_eq!(corpus.count(a), support, "step {step} item {a}");
                }
            }
        }
    }

    #[test]
    fn membership_merges_base_and_delta() {
        let mut corpus = LayeredCorpus::new(&fixture(), 0xA1, 128, options());
        let tid = 50; // free slot in the fixture
        assert!(!corpus.member(1, tid));
        corpus.insert_txn(tid, &[1, 3]).unwrap();
        assert!(corpus.member(1, tid));
        assert!(corpus.member(3, tid));
        assert!(!corpus.member(2, tid));
        // Remove a base transaction: membership flips through the delta.
        let base_tid = 0;
        let items: Vec<u32> = corpus.transaction(base_tid).to_vec();
        assert!(!items.is_empty());
        corpus.remove_txn(base_tid).unwrap();
        for &item in &items {
            assert!(!corpus.member(item, base_tid));
        }
        // Out-of-universe probes answer false, not panic.
        assert!(!corpus.member(1, u32::MAX));
    }

    #[test]
    fn writes_are_idempotent_and_conflicts_are_typed() {
        let mut corpus = LayeredCorpus::new(&fixture(), 0xA2, 128, options());
        assert_eq!(corpus.insert_txn(60, &[0, 2, 4]).unwrap(), 3);
        assert_eq!(corpus.insert_txn(60, &[0, 2, 4]).unwrap(), 0);
        assert_eq!(
            corpus.insert_txn(60, &[0, 2]),
            Err(IngestError::Conflict { tid: 60 })
        );
        assert_eq!(corpus.remove_txn(60).unwrap(), 3);
        assert_eq!(corpus.remove_txn(60).unwrap(), 0);
        assert!(matches!(
            corpus.insert_txn(64, &[0]),
            Err(IngestError::OutOfUniverse { .. })
        ));
        assert!(matches!(
            corpus.insert_txn(61, &[6]),
            Err(IngestError::UnknownItem { .. })
        ));
        assert!(matches!(
            corpus.insert_txn(61, &[2, 1]),
            Err(IngestError::BadItems(_))
        ));
        assert!(matches!(
            corpus.insert_txn(61, &[]),
            Err(IngestError::BadItems(_))
        ));
    }

    #[test]
    fn two_phase_compaction_respects_racing_writes() {
        let mut corpus = LayeredCorpus::new(&fixture(), 0xA3, 128, options());
        corpus.insert_txn(55, &[0, 1]).unwrap();
        let job = corpus.begin_compaction();
        let built = job.build();
        // A write lands between build and swap: the swap must refuse.
        corpus.insert_txn(56, &[2, 3]).unwrap();
        assert!(!corpus.try_finish_compaction(job.version(), built).unwrap());
        assert!(corpus.is_dirty());
        // A clean retry succeeds and folds everything in.
        let job = corpus.begin_compaction();
        let built = job.build();
        assert!(corpus.try_finish_compaction(job.version(), built).unwrap());
        assert!(!corpus.is_dirty());
        assert_eq!(corpus.pair_count(0, 1), oracle_pair(&corpus, 0, 1));
        assert_eq!(corpus.pair_count(2, 3), oracle_pair(&corpus, 2, 3));
    }

    #[test]
    fn mining_equals_from_scratch() {
        let mut corpus = LayeredCorpus::new(&fixture(), 0xA4, 128, options());
        corpus.insert_txn(50, &[0, 1, 2]).unwrap();
        corpus.insert_txn(51, &[0, 1, 3]).unwrap();
        corpus.remove_txn(2).unwrap();
        let config = mine_config();
        let report = corpus.mine(config.clone()).unwrap();
        let scratch = LevelwiseMiner::new(config).mine(&corpus.database());
        assert_eq!(report.itemsets, scratch.itemsets);
        assert_eq!(report.levels.len(), scratch.levels.len());
    }

    #[test]
    fn windowed_miner_tracks_the_sliding_window() {
        let mut miner = WindowedMiner::new(5, 8, 8, 0xB0, 128, options());
        let mut history: Vec<Vec<u32>> = Vec::new();
        let mut state = 0xFEEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..40 {
            let items: Vec<u32> = (0..5).filter(|_| next() % 2 == 0).collect();
            let items = if items.is_empty() { vec![0] } else { items };
            miner.push(&items).unwrap();
            history.push(items);
            assert!(miner.len() <= 8);
            // Live window = last ≤ 8 pushes, as multisets of item sets.
            let start = history.len().saturating_sub(8);
            let expect: Vec<&Vec<u32>> = history[start..].iter().collect();
            for a in 0..5u32 {
                let support = expect.iter().filter(|t| t.contains(&a)).count() as u64;
                assert_eq!(miner.corpus().count(a), support, "step {step} item {a}");
            }
            for a in 0..5u32 {
                for b in (a + 1)..5u32 {
                    let pairs = expect
                        .iter()
                        .filter(|t| t.contains(&a) && t.contains(&b))
                        .count() as u64;
                    assert_eq!(
                        miner.corpus().pair_count(a, b),
                        pairs,
                        "step {step} pair ({a},{b})"
                    );
                }
            }
        }
        // A window report equals a from-scratch mine of the live window.
        let config = mine_config();
        let report = miner.report(config.clone()).unwrap();
        let start = history.len().saturating_sub(8);
        let mut txns: Vec<Vec<u32>> = history[start..].to_vec();
        txns.resize(8, Vec::new());
        let scratch = LevelwiseMiner::new(config).mine(&TransactionDb::new(5, txns));
        assert_eq!(report.itemsets, scratch.itemsets);
    }

    #[test]
    fn top_k_matches_brute_force_over_live_contents() {
        let mut corpus = LayeredCorpus::new(&fixture(), 0xA5, 128, options());
        corpus.insert_txn(58, &[0, 5]).unwrap();
        corpus.insert_txn(59, &[0, 5]).unwrap();
        corpus.remove_txn(1).unwrap();
        let probe = 0u32;
        let mut expect: Vec<(u32, u64)> = (0..6u32)
            .filter(|&b| b != probe)
            .map(|b| (b, oracle_pair(&corpus, probe, b)))
            .filter(|&(_, c)| c > 0)
            .collect();
        expect.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        expect.truncate(3);
        assert_eq!(corpus.top_k(probe, 3), expect);
    }

    #[test]
    fn from_preprocessed_reconstructs_the_mirror() {
        let db = fixture();
        let direct = LayeredCorpus::new(&db, 0xA6, 128, options());
        let v = VerticalDb::from_horizontal(&db);
        let pre = preprocess_with(&v, 0xA6, 128, options());
        let wrapped = LayeredCorpus::from_preprocessed(pre, 0xA6);
        assert_eq!(direct.txns, wrapped.txns);
        let live: BTreeSet<usize> = (0..64).filter(|&t| !wrapped.txns[t].is_empty()).collect();
        assert_eq!(live.len(), wrapped.live_transactions());
    }
}
