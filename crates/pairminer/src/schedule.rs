//! The k×k tiling of the all-pairs comparison (§III-C).
//!
//! Two reasons the paper splits the n×n comparison into k×k tiles
//! (`k = 2048` in their experiments):
//!
//! 1. display-watchdog limits on single kernel executions;
//! 2. symmetry — only tiles with `p ≤ q` need computing, halving work
//!    ("from n² to around (n choose 2)").

use serde::{Deserialize, Serialize};

/// One tile `Z_{p,q}` of the comparison matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile {
    /// Block-row index `p`.
    pub p: u32,
    /// Block-column index `q` (`p ≤ q`).
    pub q: u32,
    /// First sorted item index of the row range.
    pub row_base: usize,
    /// First sorted item index of the column range.
    pub col_base: usize,
    /// Rows in this tile (multiple of 16).
    pub rows: usize,
    /// Columns in this tile (multiple of 16).
    pub cols: usize,
}

impl Tile {
    /// Whether this tile lies on the diagonal (needs triangular
    /// filtering when reporting).
    pub fn is_diagonal(&self) -> bool {
        self.p == self.q
    }

    /// Number of batmap comparisons the kernel performs in this tile.
    pub fn comparisons(&self) -> usize {
        self.rows * self.cols
    }
}

/// Build the upper-triangle tile schedule for `n_padded` items (multiple
/// of 16) with tile side `k` (multiple of 16).
pub fn schedule(n_padded: usize, k: usize) -> Vec<Tile> {
    assert!(
        k > 0 && k.is_multiple_of(16),
        "tile side must be a positive multiple of 16"
    );
    assert!(
        n_padded.is_multiple_of(16),
        "item count must be padded to a multiple of 16"
    );
    let blocks = n_padded.div_ceil(k);
    let mut tiles = Vec::with_capacity(blocks * (blocks + 1) / 2);
    for p in 0..blocks {
        let row_base = p * k;
        let rows = k.min(n_padded - row_base);
        for q in p..blocks {
            let col_base = q * k;
            let cols = k.min(n_padded - col_base);
            tiles.push(Tile {
                p: p as u32,
                q: q as u32,
                row_base,
                col_base,
                rows,
                cols,
            });
        }
    }
    tiles
}

/// Total comparisons across a schedule — the "(n choose 2)-ish" count
/// the symmetry optimization achieves (diagonal tiles still compute
/// their full square; the report filters).
pub fn total_comparisons(tiles: &[Tile]) -> usize {
    tiles.iter().map(Tile::comparisons).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_upper_triangle_exactly_once() {
        let n = 96;
        let k = 32;
        let tiles = schedule(n, k);
        let mut covered = vec![vec![false; n]; n];
        #[allow(clippy::needless_range_loop)]
        for t in &tiles {
            for i in t.row_base..t.row_base + t.rows {
                for j in t.col_base..t.col_base + t.cols {
                    assert!(!covered[i][j], "tile overlap at ({i},{j})");
                    covered[i][j] = true;
                }
            }
        }
        for (i, row) in covered.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                // Every unordered pair must be covered in at least one
                // orientation; ordered (i<j) pairs always via p ≤ q.
                if i / k <= j / k {
                    assert!(c, "({i},{j}) uncovered");
                } else {
                    assert!(!c);
                }
            }
        }
    }

    #[test]
    fn halves_the_work() {
        let n = 4096;
        let k = 2048;
        let tiles = schedule(n, k);
        assert_eq!(tiles.len(), 3); // (0,0) (0,1) (1,1)
        let total = total_comparisons(&tiles);
        // 3·k² vs n² = 4·k²: the diagonal surplus is the k² overlap.
        assert_eq!(total, 3 * k * k);
        assert!(total < n * n);
    }

    #[test]
    fn ragged_final_block() {
        let tiles = schedule(80, 32);
        // blocks of 32,32,16.
        assert_eq!(tiles.len(), 6);
        let last = tiles.last().unwrap();
        assert_eq!(last.rows, 16);
        assert_eq!(last.cols, 16);
        assert!(tiles.iter().all(|t| t.rows % 16 == 0 && t.cols % 16 == 0));
    }

    #[test]
    fn single_tile_when_k_exceeds_n() {
        let tiles = schedule(64, 2048);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].rows, 64);
        assert!(tiles[0].is_diagonal());
    }

    #[test]
    #[should_panic]
    fn unaligned_k_rejected() {
        let _ = schedule(64, 20);
    }
}
