//! The k×k tiling of the all-pairs comparison (§III-C).
//!
//! Two reasons the paper splits the n×n comparison into k×k tiles
//! (`k = 2048` in their experiments):
//!
//! 1. display-watchdog limits on single kernel executions;
//! 2. symmetry — only tiles with `p ≤ q` need computing, halving work
//!    ("from n² to around (n choose 2)").

use serde::{Deserialize, Serialize};

/// One tile `Z_{p,q}` of the comparison matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile {
    /// Block-row index `p`.
    pub p: u32,
    /// Block-column index `q` (`p ≤ q`).
    pub q: u32,
    /// First sorted item index of the row range.
    pub row_base: usize,
    /// First sorted item index of the column range.
    pub col_base: usize,
    /// Rows in this tile (multiple of 16).
    pub rows: usize,
    /// Columns in this tile (multiple of 16).
    pub cols: usize,
}

impl Tile {
    /// Whether this tile lies on the diagonal (needs triangular
    /// filtering when reporting).
    pub fn is_diagonal(&self) -> bool {
        self.p == self.q
    }

    /// Number of pair comparisons this tile *reports*: the full
    /// `rows × cols` rectangle off the diagonal, but only the strict
    /// upper triangle on a diagonal tile — cells at or below the main
    /// diagonal are filtered before reporting (`p = q` implies
    /// `rows = cols` by construction). This is the executor's cost
    /// model: a diagonal tile is roughly half the useful work of an
    /// off-diagonal tile of the same size.
    pub fn comparisons(&self) -> usize {
        if self.is_diagonal() {
            // Strictly-above-diagonal cells of the rows × cols
            // rectangle (kept general for robustness; diagonal tiles
            // are square in every schedule this module builds).
            let side = self.rows.min(self.cols);
            let at_or_below =
                side * (side + 1) / 2 + self.rows.saturating_sub(self.cols) * self.cols;
            self.rows * self.cols - at_or_below
        } else {
            self.rows * self.cols
        }
    }

    /// Number of comparisons the lockstep GPU kernel *executes* in this
    /// tile: always the full `rows × cols` square (diagonal tiles
    /// compute their lower triangle too and discard it; §III-C).
    pub fn executed_comparisons(&self) -> usize {
        self.rows * self.cols
    }
}

/// Build the upper-triangle tile schedule for `n_padded` items (multiple
/// of 16) with tile side `k` (multiple of 16).
pub fn schedule(n_padded: usize, k: usize) -> Vec<Tile> {
    assert!(
        k > 0 && k.is_multiple_of(16),
        "tile side must be a positive multiple of 16"
    );
    assert!(
        n_padded.is_multiple_of(16),
        "item count must be padded to a multiple of 16"
    );
    let blocks = n_padded.div_ceil(k);
    let mut tiles = Vec::with_capacity(blocks * (blocks + 1) / 2);
    for p in 0..blocks {
        let row_base = p * k;
        let rows = k.min(n_padded - row_base);
        for q in p..blocks {
            let col_base = q * k;
            let cols = k.min(n_padded - col_base);
            tiles.push(Tile {
                p: p as u32,
                q: q as u32,
                row_base,
                col_base,
                rows,
                cols,
            });
        }
    }
    tiles
}

/// Total *reported* comparisons across a schedule — exactly the
/// "(n choose 2)" count the symmetry optimization achieves (diagonal
/// tiles contribute their strict upper triangle only).
pub fn total_comparisons(tiles: &[Tile]) -> usize {
    tiles.iter().map(Tile::comparisons).sum()
}

/// Total comparisons the lockstep kernel *executes* across a schedule
/// (diagonal tiles compute their full square; the report filters — the
/// "around (n choose 2)" framing of §III-C).
pub fn total_executed_comparisons(tiles: &[Tile]) -> usize {
    tiles.iter().map(Tile::executed_comparisons).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_upper_triangle_exactly_once() {
        let n = 96;
        let k = 32;
        let tiles = schedule(n, k);
        let mut covered = vec![vec![false; n]; n];
        #[allow(clippy::needless_range_loop)]
        for t in &tiles {
            for i in t.row_base..t.row_base + t.rows {
                for j in t.col_base..t.col_base + t.cols {
                    assert!(!covered[i][j], "tile overlap at ({i},{j})");
                    covered[i][j] = true;
                }
            }
        }
        for (i, row) in covered.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                // Every unordered pair must be covered in at least one
                // orientation; ordered (i<j) pairs always via p ≤ q.
                if i / k <= j / k {
                    assert!(c, "({i},{j}) uncovered");
                } else {
                    assert!(!c);
                }
            }
        }
    }

    #[test]
    fn halves_the_work() {
        let n = 4096;
        let k = 2048;
        let tiles = schedule(n, k);
        assert_eq!(tiles.len(), 3); // (0,0) (0,1) (1,1)
                                    // Executed: 3·k² vs n² = 4·k² (the diagonal surplus is the k²
                                    // overlap); reported: exactly (n choose 2).
        assert_eq!(total_executed_comparisons(&tiles), 3 * k * k);
        let total = total_comparisons(&tiles);
        assert_eq!(total, n * (n - 1) / 2);
        assert!(total < total_executed_comparisons(&tiles));
    }

    #[test]
    fn reported_comparisons_are_exactly_n_choose_2() {
        for (n, k) in [(96usize, 32usize), (80, 16), (64, 64), (4096, 2048)] {
            let tiles = schedule(n, k);
            assert_eq!(total_comparisons(&tiles), n * (n - 1) / 2, "n={n} k={k}");
        }
    }

    #[test]
    fn diagonal_tiles_report_strict_upper_triangle() {
        let t = schedule(64, 64)[0];
        assert!(t.is_diagonal());
        assert_eq!(t.comparisons(), 64 * 63 / 2);
        assert_eq!(t.executed_comparisons(), 64 * 64);
        let off = schedule(128, 64)[1];
        assert!(!off.is_diagonal());
        assert_eq!(off.comparisons(), off.executed_comparisons());
    }

    #[test]
    fn ragged_final_block() {
        let tiles = schedule(80, 32);
        // blocks of 32,32,16.
        assert_eq!(tiles.len(), 6);
        let last = tiles.last().unwrap();
        assert_eq!(last.rows, 16);
        assert_eq!(last.cols, 16);
        assert!(tiles.iter().all(|t| t.rows % 16 == 0 && t.cols % 16 == 0));
    }

    #[test]
    fn single_tile_when_k_exceeds_n() {
        let tiles = schedule(64, 2048);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].rows, 64);
        assert!(tiles[0].is_diagonal());
    }

    #[test]
    #[should_panic]
    fn unaligned_k_rejected() {
        let _ = schedule(64, 20);
    }
}
