//! Frequent k-itemset mining with multiway batmaps — the §V program
//! carried out for k = 3.
//!
//! The paper closes by proposing d-of-(d+1) batmaps so that "itemsets
//! of size up to d would have at least one position witnessing their
//! intersection". This module uses exactly that: frequent pairs come
//! from the ordinary pipeline, candidate triples from the Apriori join
//! over frequent pairs (a triple can only be frequent if all three of
//! its pairs are), and each candidate's support is one 3-way positional
//! count on d = 3 batmaps — no tidlist re-materialization, no
//! horizontal rescan.

use batmap::{MultiwayBatmap, MultiwayParams};
use fim::apriori::Itemset;
use fim::pairs::PairMap;
use fim::{TransactionDb, VerticalDb};
use hpcutil::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// Result of triple mining.
#[derive(Debug, Clone)]
pub struct TripleReport {
    /// Frequent triples with supports, sorted by items.
    pub triples: Vec<Itemset>,
    /// Candidates generated (for reporting the join's selectivity).
    pub candidates: usize,
    /// Items that had at least one failed multiway insertion; their
    /// triples were counted by the exact fallback path.
    pub fallback_items: usize,
}

/// Mine frequent triples: `frequent_pairs` must be the minsup-filtered
/// pair supports of `db` (from any engine).
pub fn mine_triples(db: &TransactionDb, frequent_pairs: &PairMap, minsup: u64) -> TripleReport {
    let candidates = candidate_triples(frequent_pairs);
    let n_candidates = candidates.len();
    if candidates.is_empty() {
        return TripleReport {
            triples: Vec::new(),
            candidates: 0,
            fallback_items: 0,
        };
    }
    // Build d = 3 multiway batmaps only for items that appear in some
    // candidate.
    let vertical = VerticalDb::from_horizontal(db);
    let params = Arc::new(MultiwayParams::new(vertical.m().max(1) as u64, 3, 0x3B47));
    let items: FxHashSet<u32> = candidates.iter().flat_map(|c| c.iter().copied()).collect();
    let mut maps: FxHashMap<u32, Option<MultiwayBatmap>> = FxHashMap::default();
    let mut fallback_items = 0usize;
    for &item in &items {
        let built = MultiwayBatmap::build(params.clone(), vertical.tidlist(item));
        if built.is_none() {
            fallback_items += 1;
        }
        maps.insert(item, built);
    }
    let mut triples = Vec::new();
    for cand in candidates {
        let [a, b, c] = cand;
        let support = match (&maps[&a], &maps[&b], &maps[&c]) {
            (Some(ma), Some(mb), Some(mc)) => MultiwayBatmap::intersect_count(&[ma, mb, mc]),
            // Rare fallback (a multiway insertion failed): exact 3-way
            // merge over the tidlists.
            _ => three_way_merge(
                vertical.tidlist(a),
                vertical.tidlist(b),
                vertical.tidlist(c),
            ),
        };
        if support >= minsup {
            triples.push(Itemset {
                items: vec![a, b, c],
                support,
            });
        }
    }
    triples.sort_unstable_by(|x, y| x.items.cmp(&y.items));
    TripleReport {
        triples,
        candidates: n_candidates,
        fallback_items,
    }
}

/// Apriori candidate generation specialized for triples: `{a,b,c}` is a
/// candidate iff `{a,b}`, `{a,c}`, `{b,c}` are all frequent.
fn candidate_triples(pairs: &PairMap) -> Vec<[u32; 3]> {
    // Adjacency of the frequent-pair graph.
    let mut adj: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    for &(i, j) in pairs.keys() {
        adj.entry(i).or_default().push(j);
    }
    for list in adj.values_mut() {
        list.sort_unstable();
    }
    let mut out = Vec::new();
    for (&a, exts) in &adj {
        for (idx, &b) in exts.iter().enumerate() {
            for &c in &exts[idx + 1..] {
                // a < b < c by construction; check the third edge.
                if pairs.contains_key(&(b, c)) {
                    out.push([a, b, c]);
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Exact three-way sorted-merge count (fallback path).
fn three_way_merge(a: &[u32], b: &[u32], c: &[u32]) -> u64 {
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    let mut count = 0u64;
    while i < a.len() && j < b.len() && k < c.len() {
        let (x, y, z) = (a[i], b[j], c[k]);
        let max = x.max(y).max(z);
        if x == y && y == z {
            count += 1;
            i += 1;
            j += 1;
            k += 1;
        } else {
            if x < max {
                i += 1;
            }
            if y < max {
                j += 1;
            }
            if z < max {
                k += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mine, MinerConfig};
    use fim::apriori;

    fn db() -> TransactionDb {
        TransactionDb::new(
            12,
            (0..600usize)
                .map(|t| (0..12u32).filter(|&i| (t as u32 + i * 5) % 7 < 3).collect())
                .collect(),
        )
    }

    #[test]
    fn triples_match_apriori_level3() {
        let d = db();
        for minsup in [20u64, 60, 120] {
            let pairs = mine(
                &d,
                &MinerConfig {
                    minsup,
                    ..Default::default()
                },
            )
            .pairs;
            let got = mine_triples(&d, &pairs, minsup);
            let mut expect: Vec<Itemset> = apriori::mine(&d, minsup, 3)
                .into_iter()
                .filter(|s| s.items.len() == 3)
                .collect();
            expect.sort_unstable_by(|x, y| x.items.cmp(&y.items));
            assert_eq!(got.triples, expect, "minsup={minsup}");
        }
    }

    #[test]
    fn no_frequent_pairs_no_triples() {
        let d = db();
        let report = mine_triples(&d, &PairMap::default(), 1);
        assert!(report.triples.is_empty());
        assert_eq!(report.candidates, 0);
    }

    #[test]
    fn candidate_join_requires_all_three_edges() {
        let mut pairs = PairMap::default();
        pairs.insert((0, 1), 10);
        pairs.insert((0, 2), 10);
        // Missing (1,2): no candidate.
        assert!(candidate_triples(&pairs).is_empty());
        pairs.insert((1, 2), 10);
        assert_eq!(candidate_triples(&pairs), vec![[0, 1, 2]]);
    }

    #[test]
    fn three_way_merge_exact() {
        let a: Vec<u32> = (0..300).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..200).map(|i| i * 3).collect();
        let c: Vec<u32> = (0..120).map(|i| i * 5).collect();
        // Multiples of 30 below min(600, 600, 600).
        assert_eq!(three_way_merge(&a, &b, &c), 20);
        assert_eq!(three_way_merge(&a, &[], &c), 0);
    }
}
