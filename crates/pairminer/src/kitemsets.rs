//! Frequent triple mining — the levelwise engine pinned to d = 3.
//!
//! Historically this module carried out the paper's §V d-of-(d+1)
//! program for k = 3 with its own candidate join and counting loop;
//! that machinery is now the general [`crate::levelwise`] engine, and
//! [`mine_triples`] is a thin depth-3 configuration of it kept for the
//! triple-mining call sites: frequent pairs come from any pair engine,
//! candidate triples from the Apriori join over them, and each
//! candidate's support is one 3-way positional count on d = 3 batmaps —
//! no tidlist re-materialization, no horizontal rescan (except the
//! exact-merge fallback for items whose multiway insertion failed).

use crate::levelwise::{LevelwiseConfig, LevelwiseMiner};
use crate::miner::MinerConfig;
use fim::apriori::Itemset;
use fim::pairs::PairMap;
use fim::TransactionDb;

/// Result of triple mining.
#[derive(Debug, Clone)]
pub struct TripleReport {
    /// Frequent triples with supports, sorted by items.
    pub triples: Vec<Itemset>,
    /// Candidates generated (for reporting the join's selectivity).
    pub candidates: usize,
    /// Items that had at least one failed multiway insertion; their
    /// triples were counted by the exact fallback path.
    pub fallback_items: usize,
}

/// Mine frequent triples: `frequent_pairs` must be the minsup-filtered
/// pair supports of `db` (from any engine). Equivalent to running
/// [`LevelwiseMiner`] at `depth = 3` seeded with the same pairs and
/// keeping the level-3 results.
pub fn mine_triples(db: &TransactionDb, frequent_pairs: &PairMap, minsup: u64) -> TripleReport {
    let miner = LevelwiseMiner::new(LevelwiseConfig {
        depth: 3,
        pair: MinerConfig {
            minsup,
            ..Default::default()
        },
        ..Default::default()
    });
    let report = miner.mine_from_pairs(db, frequent_pairs);
    let candidates = report.level(3).map_or(0, |l| l.candidates);
    TripleReport {
        triples: report
            .itemsets
            .into_iter()
            .filter(|s| s.items.len() == 3)
            .collect(),
        candidates,
        fallback_items: report.fallback_items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelwise::LevelwiseReport;
    use crate::{mine, MinerConfig};
    use fim::apriori;

    fn db() -> TransactionDb {
        TransactionDb::new(
            12,
            (0..600usize)
                .map(|t| (0..12u32).filter(|&i| (t as u32 + i * 5) % 7 < 3).collect())
                .collect(),
        )
    }

    fn frequent_pairs(d: &TransactionDb, minsup: u64) -> PairMap {
        mine(
            d,
            &MinerConfig {
                minsup,
                ..Default::default()
            },
        )
        .pairs
    }

    #[test]
    fn triples_match_apriori_level3() {
        let d = db();
        for minsup in [20u64, 60, 120] {
            let pairs = frequent_pairs(&d, minsup);
            let got = mine_triples(&d, &pairs, minsup);
            let mut expect: Vec<Itemset> = apriori::mine(&d, minsup, 3)
                .into_iter()
                .filter(|s| s.items.len() == 3)
                .collect();
            expect.sort_unstable_by(|x, y| x.items.cmp(&y.items));
            assert_eq!(got.triples, expect, "minsup={minsup}");
        }
    }

    #[test]
    fn matches_levelwise_depth3_exactly() {
        let d = db();
        for minsup in [20u64, 60] {
            let pairs = frequent_pairs(&d, minsup);
            let triples = mine_triples(&d, &pairs, minsup);
            let levelwise: LevelwiseReport = LevelwiseMiner::new(LevelwiseConfig {
                depth: 3,
                pair: MinerConfig {
                    minsup,
                    ..Default::default()
                },
                ..Default::default()
            })
            .mine_from_pairs(&d, &pairs);
            let expect: Vec<Itemset> = levelwise
                .itemsets
                .iter()
                .filter(|s| s.items.len() == 3)
                .cloned()
                .collect();
            assert_eq!(triples.triples, expect, "minsup={minsup}");
            assert_eq!(
                triples.candidates,
                levelwise.level(3).unwrap().candidates,
                "minsup={minsup}"
            );
        }
    }

    #[test]
    fn no_frequent_pairs_no_triples() {
        let d = db();
        let report = mine_triples(&d, &PairMap::default(), 1);
        assert!(report.triples.is_empty());
        assert_eq!(report.candidates, 0);
        assert_eq!(report.fallback_items, 0, "no multiway maps built");
    }
}
