//! Multicore CPU execution of the batmap comparisons.
//!
//! The same tile schedule as the GPU path, executed for real on host
//! cores with rayon — this is the "running the algorithm on the 8 CPU
//! cores on our system" comparison (§IV-A finds the GPU ~5× faster) and
//! the measurement engine behind Fig. 11.

use crate::preprocess::Preprocessed;
use crate::schedule::Tile;
use batmap::intersect;
use batmap::{BatmapRef, KernelBackend, SetView};
use rayon::prelude::*;

/// Counts for one tile computed on the CPU: row-major `rows × cols`,
/// identical layout to the GPU path (diagonal tiles compute their full
/// square, exactly as the lockstep kernel does — this is the
/// GPU-parity reference; the mining executors use the triangular
/// variants below).
///
/// All row/column operands are zero-copy views into the preprocessed
/// arena — the column block is materialized once per tile (a `Vec` of
/// few-word views), never the payload bytes themselves. An all-batmap
/// corpus takes the legacy register-blocked sweep; a hybrid corpus
/// routes every row through the mixed-representation kernels.
pub fn run_tile_cpu(pre: &Preprocessed, tile: &Tile) -> Vec<u64> {
    let mut counts = vec![0u64; tile.rows * tile.cols];
    if pre.arena.is_all_batmap() {
        let cols = pre.arena.views(tile.col_base..tile.col_base + tile.cols);
        counts
            .par_chunks_mut(tile.cols)
            .enumerate()
            .for_each(|(r, row_out)| {
                let a = pre.batmap(tile.row_base + r);
                intersect::count_one_vs_many_into(&a, &cols, row_out);
            });
    } else {
        let cols = pre
            .arena
            .payload_views(tile.col_base..tile.col_base + tile.cols);
        counts
            .par_chunks_mut(tile.cols)
            .enumerate()
            .for_each(|(r, row_out)| {
                let a = pre.payload(tile.row_base + r);
                intersect::count_mixed_one_vs_many_into(&a, &cols, row_out);
            });
    }
    counts
}

/// First tile-local column a row of this tile actually reports: `0` off
/// the diagonal, `r + 1` on a diagonal tile (cells at or below the main
/// diagonal are never reported, so the CPU engines skip computing
/// them — the §III-C symmetry saving, applied *inside* the tile).
#[inline]
fn first_useful_col(tile: &Tile, r: usize) -> usize {
    if tile.is_diagonal() {
        r + 1
    } else {
        0
    }
}

/// One row of tile counts, written into `row_out` (length `tile.cols`).
///
/// Routes through the batched one-vs-many driver
/// ([`intersect::count_one_vs_many_into`]): the backend is dispatched
/// once for the whole row and the row batmap's words stay hot in
/// registers/L1 while the candidate block is swept. `cols` is the
/// tile's column block of arena views, shared across rows.
#[inline]
fn fill_row(
    pre: &Preprocessed,
    cols: &[BatmapRef<'_>],
    tile: &Tile,
    r: usize,
    row_out: &mut [u64],
) {
    let a = pre.batmap(tile.row_base + r);
    let first = first_useful_col(tile, r);
    if first >= tile.cols {
        return; // last row of a diagonal tile reports nothing
    }
    intersect::count_one_vs_many_into(&a, &cols[first..], &mut row_out[first..]);
}

/// [`fill_row`] for hybrid corpora: same triangular skip, routed
/// through the mixed-representation row driver.
#[inline]
fn fill_row_mixed(
    pre: &Preprocessed,
    cols: &[SetView<'_>],
    tile: &Tile,
    r: usize,
    row_out: &mut [u64],
) {
    let a = pre.payload(tile.row_base + r);
    let first = first_useful_col(tile, r);
    if first >= tile.cols {
        return; // last row of a diagonal tile reports nothing
    }
    intersect::count_mixed_one_vs_many_into(&a, &cols[first..], &mut row_out[first..]);
}

/// Strictly sequential tile counts (no worker threads): row-major
/// `rows × cols`, with the skipped at-or-below-diagonal cells of a
/// diagonal tile left at zero. This is the serial baseline of the
/// speedup story and the oracle of the parallel-equivalence tests.
pub fn run_tile_cpu_serial(pre: &Preprocessed, tile: &Tile) -> Vec<u64> {
    let mut counts = vec![0u64; tile.rows * tile.cols];
    if pre.arena.is_all_batmap() {
        let cols = pre.arena.views(tile.col_base..tile.col_base + tile.cols);
        for r in 0..tile.rows {
            fill_row(
                pre,
                &cols,
                tile,
                r,
                &mut counts[r * tile.cols..(r + 1) * tile.cols],
            );
        }
    } else {
        let cols = pre
            .arena
            .payload_views(tile.col_base..tile.col_base + tile.cols);
        for r in 0..tile.rows {
            fill_row_mixed(
                pre,
                &cols,
                tile,
                r,
                &mut counts[r * tile.cols..(r + 1) * tile.cols],
            );
        }
    }
    counts
}

/// Row-parallel tile counts with the same triangular skip as
/// [`run_tile_cpu_serial`]: used by the parallel engine when a plan has
/// fewer tiles than workers, so parallelism comes from inside the tile.
pub fn run_tile_cpu_rows(pre: &Preprocessed, tile: &Tile) -> Vec<u64> {
    let mut counts = vec![0u64; tile.rows * tile.cols];
    if pre.arena.is_all_batmap() {
        let cols = pre.arena.views(tile.col_base..tile.col_base + tile.cols);
        counts
            .par_chunks_mut(tile.cols)
            .enumerate()
            .for_each(|(r, row_out)| fill_row(pre, &cols, tile, r, row_out));
    } else {
        let cols = pre
            .arena
            .payload_views(tile.col_base..tile.col_base + tile.cols);
        counts
            .par_chunks_mut(tile.cols)
            .enumerate()
            .for_each(|(r, row_out)| fill_row_mixed(pre, &cols, tile, r, row_out));
    }
    counts
}

/// The Fig. 11 micro-measurement with the paper's u32 SWAR backend:
/// see [`swar_throughput_with`].
pub fn swar_throughput(words: usize, reps: usize) -> f64 {
    swar_throughput_with(KernelBackend::SwarU32, words, reps)
}

/// The Fig. 11 micro-measurement: positional comparison of two slot
/// arrays of `words` 32-bit words (four slots each), repeated `reps`
/// times, partitioned across the current rayon pool, dispatched through
/// the given match-count backend. Returns the total number of bytes
/// processed per second of wall time (both arrays count, as in the
/// paper's "size 20 Mbyte" = 2 × 10 MB framing).
///
/// Call inside `hpcutil::scoped_pool(cores, …)` to pin the core count.
pub fn swar_throughput_with(backend: KernelBackend, words: usize, reps: usize) -> f64 {
    // Fill with a pattern that produces some matches (content does not
    // affect timing — the SWAR kernels are branch-free — but keep it
    // honest).
    let a: Vec<u8> = (0..words)
        .flat_map(|i| (i as u32).wrapping_mul(2654435761).to_le_bytes())
        .collect();
    let b: Vec<u8> = (0..words)
        .flat_map(|i| {
            if i % 3 == 0 {
                (i as u32).wrapping_mul(2654435761).to_le_bytes()
            } else {
                (i as u32).wrapping_mul(40503).to_le_bytes()
            }
        })
        .collect();
    let kernel = backend.kernel();
    let threads = rayon::current_num_threads();
    // Per-thread chunk, kept register-aligned for the widest kernel
    // (32-byte AVX2 lanes) so no chunk boundary pushes bytes through
    // the tail path inside the timed loop.
    let chunk = (a.len().div_ceil(threads)).next_multiple_of(32);
    let t0 = std::time::Instant::now();
    let mut total = 0u64;
    for _ in 0..reps {
        total += a
            .par_chunks(chunk)
            .zip(b.par_chunks(chunk))
            .map(|(ca, cb)| kernel.count_equal_width(ca, cb))
            .sum::<u64>();
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(total);
    (words as f64 * 4.0 * 2.0 * reps as f64) / secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{run_tile, DeviceData};
    use crate::preprocess::preprocess;
    use crate::schedule::schedule;
    use fim::{TransactionDb, VerticalDb};
    use gpu_sim::DeviceSpec;

    #[test]
    fn cpu_and_gpu_tiles_agree() {
        let db = TransactionDb::new(
            24,
            (0..400usize)
                .map(|t| {
                    (0..24)
                        .filter(|&i| (t + i as usize).is_multiple_of(5))
                        .collect()
                })
                .collect(),
        );
        let v = VerticalDb::from_horizontal(&db);
        let pre = preprocess(&v, 13, 128);
        let data = DeviceData::upload(&pre);
        for tile in schedule(pre.padded_items(), 16) {
            let gpu = run_tile(&DeviceSpec::gtx285(), &data, tile);
            let cpu = run_tile_cpu(&pre, &tile);
            assert_eq!(gpu.counts, cpu, "tile ({},{})", tile.p, tile.q);
        }
    }

    #[test]
    fn triangular_tile_runners_agree_with_full_square() {
        let db = TransactionDb::new(
            20,
            (0..300usize)
                .map(|t| {
                    (0..20)
                        .filter(|&i| (t + i as usize).is_multiple_of(4))
                        .collect()
                })
                .collect(),
        );
        let v = VerticalDb::from_horizontal(&db);
        let pre = preprocess(&v, 5, 128);
        for tile in schedule(pre.padded_items(), 16) {
            let full = run_tile_cpu(&pre, &tile);
            let serial = run_tile_cpu_serial(&pre, &tile);
            let rows = run_tile_cpu_rows(&pre, &tile);
            assert_eq!(serial, rows, "tile ({},{})", tile.p, tile.q);
            for r in 0..tile.rows {
                for c in 0..tile.cols {
                    let i = r * tile.cols + c;
                    if tile.is_diagonal() && c <= r {
                        assert_eq!(serial[i], 0, "skipped cell must stay zero");
                    } else {
                        assert_eq!(serial[i], full[i], "useful cell ({r},{c})");
                    }
                }
            }
        }
    }

    #[test]
    fn throughput_is_positive_and_scales_sanely() {
        let rate = hpcutil::scoped_pool(2, || swar_throughput(1 << 16, 4));
        assert!(rate > 1e6, "implausibly low rate {rate}");
    }

    #[test]
    fn hybrid_tile_runners_agree_and_match_oracle() {
        use crate::preprocess::preprocess_with;
        use batmap::{EngineOptions, ReprPolicy};
        // Skewed density so the hybrid policy genuinely mixes layouts.
        let db = TransactionDb::new(
            12,
            (0..800u32)
                .map(|t| {
                    (0..12u32)
                        .filter(|&i| match i {
                            0 => true,
                            1..=3 => t % 50 == i,
                            _ => t % 211 == i % 7,
                        })
                        .collect()
                })
                .collect(),
        );
        let v = VerticalDb::from_horizontal(&db);
        let pre = preprocess_with(&v, 5, 128, EngineOptions::auto().repr(ReprPolicy::Hybrid));
        assert!(!pre.arena.is_all_batmap(), "fixture must be hybrid");
        let oracle = |a: usize, b: usize| -> u64 {
            let mut ea = pre.payload(a).elements();
            ea.sort_unstable();
            pre.payload(b)
                .elements()
                .iter()
                .filter(|x| ea.binary_search(x).is_ok())
                .count() as u64
        };
        for tile in schedule(pre.padded_items(), 16) {
            let full = run_tile_cpu(&pre, &tile);
            let serial = run_tile_cpu_serial(&pre, &tile);
            let rows = run_tile_cpu_rows(&pre, &tile);
            assert_eq!(serial, rows, "tile ({},{})", tile.p, tile.q);
            for r in 0..tile.rows {
                for c in 0..tile.cols {
                    let i = r * tile.cols + c;
                    let expect = oracle(tile.row_base + r, tile.col_base + c);
                    assert_eq!(full[i], expect, "full cell ({r},{c})");
                    if tile.is_diagonal() && c <= r {
                        assert_eq!(serial[i], 0, "skipped cell must stay zero");
                    } else {
                        assert_eq!(serial[i], expect, "useful cell ({r},{c})");
                    }
                }
            }
        }
    }
}
