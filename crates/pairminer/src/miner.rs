//! The top-level pair miner: preprocessing → tiling → kernel →
//! postprocessing, with full timing and memory accounting.

use crate::executor::{
    GpuSimExecutor, ParallelCpuExecutor, SerialCpuExecutor, TileConsumer, TileExecutor, TilePlan,
};
use crate::failed::FailedPairs;
use crate::memory::MemoryReport;
use crate::preprocess::{preprocess_with, Preprocessed};
use crate::schedule::Tile;
use batmap::{EngineOptions, Parallelism, ReprPolicy};
use fim::pairs::{pair_key, PairMap};
use fim::{TransactionDb, VerticalDb};
use gpu_sim::{DeviceSpec, KernelStats};
use hpcutil::{MemoryFootprint, Stopwatch};

/// Which engine executes the tile comparisons.
#[derive(Debug, Clone)]
pub enum Engine {
    /// The simulated GPU (§III-B kernel on `gpu-sim`); tile times are
    /// simulated seconds from the device model.
    Gpu(DeviceSpec),
    /// Real multicore execution on the host (measured wall time). Wrap
    /// the call in `hpcutil::scoped_pool` to pin the core count.
    Cpu,
}

/// Miner configuration.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Tile side `k` (multiple of 16; the paper used 2048).
    pub k: usize,
    /// Minimum support for reported pairs (1 = all co-occurring pairs).
    pub minsup: u64,
    /// Hash seed for the batmap universe.
    pub seed: u64,
    /// Cuckoo `MaxLoop` bound.
    pub max_loop: u32,
    /// Execution engine.
    pub engine: Engine,
    /// The three engine tuning knobs — match-count backend, host
    /// parallelism, storage representation — as one
    /// [`EngineOptions`] value with the documented resolution order
    /// (explicit > `BATMAP_*` environment > auto). The kernel drives
    /// both engines' dispatch; the threads knob drives batmap
    /// construction for both engines and tile execution for the CPU
    /// engine ([`Parallelism::Serial`] selects the strictly sequential
    /// tile walk, `Auto` follows the ambient rayon pool so
    /// `hpcutil::scoped_pool(cores, …)` sweeps keep working); the repr
    /// policy shapes the preprocessed corpus (`Hybrid` picks
    /// batmap/bitmap/tidlist per set by density — the GPU engine needs
    /// an all-batmap corpus, so it pins `Batmap` regardless, with a
    /// one-time warning if the configuration asked for something else).
    pub options: EngineOptions,
}

impl Default for MinerConfig {
    fn default() -> Self {
        // The default tile side comes from the autotuned profile
        // (`BATMAP_TUNING`, built-in 2048 = the paper's choice),
        // rounded up to the 16-wide block the schedule requires. An
        // explicit `k` always wins — this only sets the default.
        let tuned = batmap::TuningProfile::current().tile_side;
        MinerConfig {
            k: tuned.next_multiple_of(crate::preprocess::BLOCK).max(16),
            minsup: 1,
            seed: 0xBA7_A11,
            max_loop: 128,
            engine: Engine::Gpu(DeviceSpec::gtx285()),
            options: EngineOptions::auto(),
        }
    }
}

/// Phase timings in seconds. GPU kernel time is *simulated*; everything
/// else is measured host wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Timings {
    /// Vertical conversion + batmap construction + sorting.
    pub preprocess_s: f64,
    /// One-time host→device transfer (simulated; 0 for CPU engine).
    pub transfer_s: f64,
    /// Tile comparison time: simulated device seconds for the GPU
    /// engine, summed per-tile wall time for the serial CPU engine, and
    /// wall time of the whole parallel region (in-worker harvesting
    /// included) for the parallel CPU engine.
    pub kernel_s: f64,
    /// Result harvesting + failed-pair merging + remapping, where the
    /// engine can observe it separately from `kernel_s`.
    pub postprocess_s: f64,
}

impl Timings {
    /// Total of all phases.
    pub fn total_s(&self) -> f64 {
        self.preprocess_s + self.transfer_s + self.kernel_s + self.postprocess_s
    }
}

/// Full mining report.
#[derive(Debug, Clone)]
pub struct MiningReport {
    /// Pair supports in **original item ids**, filtered by `minsup`.
    pub pairs: PairMap,
    /// Phase timings.
    pub timings: Timings,
    /// Memory accounting.
    pub memory: MemoryReport,
    /// Folded GPU counters (None for the CPU engine).
    pub gpu_stats: Option<KernelStats>,
    /// Pair-occurrences recovered through the failed-insertion path.
    pub failed_pair_occurrences: u64,
    /// Number of pair comparisons *reported* by the schedule — exactly
    /// "(padded items choose 2)"; diagonal tiles count their strict
    /// upper triangle only (see [`Tile::comparisons`]).
    pub comparisons: usize,
    /// Worker threads the tile engine used (1 for the serial CPU
    /// engine and for the simulated GPU's host loop).
    pub threads: usize,
    /// Number of tiles whose simulated time exceeded the device
    /// watchdog (should be 0 with a sane `k`; §III-C).
    pub watchdog_violations: usize,
}

/// The miner's [`TileConsumer`]: folds each tile's counts straight into
/// a sparse sorted-space pair map via [`harvest_tile`]. One instance per
/// worker thread; workers own disjoint tiles, so merging is a plain
/// union.
struct HarvestConsumer<'a> {
    pre: &'a Preprocessed,
    failed: &'a FailedPairs,
    minsup: u64,
    out: PairMap,
}

impl TileConsumer for HarvestConsumer<'_> {
    fn consume(&mut self, tile: &Tile, counts: &[u64]) {
        harvest_tile(
            tile,
            counts,
            self.pre,
            self.failed,
            self.minsup,
            &mut self.out,
        );
    }

    fn absorb(&mut self, other: Self) {
        // Tiles partition the pair space, so keys never collide across
        // workers; `+=` keeps the merge robust regardless.
        for (key, support) in other.out {
            *self.out.entry(key).or_insert(0) += support;
        }
    }
}

/// Mine all frequent pairs of `db`: preprocess into an arena-backed
/// corpus, then run the tile pipeline over it.
pub fn mine(db: &TransactionDb, config: &MinerConfig) -> MiningReport {
    let mut sw = Stopwatch::start();
    let vertical = VerticalDb::from_horizontal(db);
    let repr = match &config.engine {
        Engine::Cpu => config.options.repr,
        Engine::Gpu(_) => {
            // The simulated device kernel walks fixed-width slot rows,
            // so the corpus must be all-batmap.
            if !matches!(config.options.repr.resolve(), ReprPolicy::Batmap) {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: the GPU engine requires an all-batmap corpus; \
                         ignoring repr policy {} and using batmap",
                        config.options.repr.resolve()
                    );
                });
            }
            ReprPolicy::Batmap
        }
    };
    let pre = preprocess_with(
        &vertical,
        config.seed,
        config.max_loop,
        config.options.repr(repr),
    );
    let preprocess_s = sw.lap().as_secs_f64();
    mine_over(db, &pre, vertical.heap_bytes(), preprocess_s, config)
}

/// Mine with an **already-built** corpus — e.g. one loaded from a
/// snapshot ([`Preprocessed::read_snapshot`]) — skipping preprocessing
/// entirely. Produces the same pairs as [`mine`] would for the database
/// the corpus was built from (pinned by `tests/snapshot.rs`).
///
/// `db` must be the database `pre` was preprocessed from (it backs the
/// failed-insertion recovery path and the final id remap). Of the
/// configuration, only `k`, `minsup`, `engine`, and `options.threads`
/// apply here; `seed`, `max_loop`, and the kernel/repr knobs were fixed
/// at preprocessing time and travel inside `pre.params` / the arena's
/// per-set representation tags. (A hybrid snapshot can only be served
/// by the CPU engine — the GPU engine needs an all-batmap corpus.)
///
/// # Panics
/// Panics if `pre` was visibly built from a different database
/// (mismatched item count or universe size).
pub fn mine_preprocessed(
    db: &TransactionDb,
    pre: &Preprocessed,
    config: &MinerConfig,
) -> MiningReport {
    assert_eq!(
        pre.n_items,
        db.n_items(),
        "corpus was preprocessed from a different database (item count)"
    );
    assert_eq!(
        pre.params.m(),
        (db.len() as u64).max(1),
        "corpus was preprocessed from a different database (universe size)"
    );
    // `timings.preprocess_s` is 0 by definition here: serving a
    // snapshot is exactly the act of not paying that phase again. The
    // tidlist bytes the memory report would normally charge were never
    // materialized either.
    mine_over(db, pre, 0, 0.0, config)
}

/// The engine-independent tile pipeline over a built corpus.
fn mine_over(
    db: &TransactionDb,
    pre: &Preprocessed,
    tidlists_bytes: usize,
    preprocess_s: f64,
    config: &MinerConfig,
) -> MiningReport {
    let plan = TilePlan::new(pre.padded_items(), config.k);
    let failed = FailedPairs::build(&pre.failed, db, &pre.item_to_sorted, config.k);
    let comparisons = plan.reported_comparisons();

    let make = || HarvestConsumer {
        pre,
        failed: &failed,
        minsup: config.minsup,
        out: PairMap::default(),
    };
    let (harvested, exec) = match &config.engine {
        Engine::Gpu(device) => GpuSimExecutor { device }.execute(pre, &plan, make),
        Engine::Cpu => match config.options.threads {
            Parallelism::Serial => SerialCpuExecutor.execute(pre, &plan, make),
            parallelism => ParallelCpuExecutor { parallelism }.execute(pre, &plan, make),
        },
    };
    let sorted_pairs = harvested.out;
    let mut postprocess_s = exec.consume_s;

    // Remap to original item ids (thresholding already happened per
    // tile, as the paper does when each Z_{p,q} returns).
    let mut post = Stopwatch::start();
    let mut pairs = PairMap::default();
    for ((si, sj), support) in sorted_pairs {
        let a = pre.order[si as usize];
        let b = pre.order[sj as usize];
        pairs.insert(pair_key(a, b), support);
    }
    postprocess_s += post.lap().as_secs_f64();

    let memory = MemoryReport {
        tidlists_bytes,
        preprocessed_bytes: pre.heap_bytes(),
        device_bytes: exec.device_bytes,
        tile_buffer_bytes: exec.max_tile_buffer_bytes,
        failed_bytes: pre.failed.capacity() * 8,
    };
    MiningReport {
        pairs,
        timings: Timings {
            preprocess_s,
            transfer_s: exec.transfer_s,
            kernel_s: exec.kernel_s,
            postprocess_s,
        },
        memory,
        gpu_stats: exec.gpu_stats,
        failed_pair_occurrences: failed.total(),
        comparisons,
        threads: exec.threads,
        watchdog_violations: exec.watchdog_violations,
    }
}

/// Fold one tile's dense counts into the sparse sorted-space pair map:
/// apply the diagonal triangle filter, drop padding items, merge the
/// tile's `M_{p,q}` missing pairs, and threshold by `minsup` — all in
/// one pass, mirroring the paper's "extend Z_{p,q} with M_{p,q} before
/// reporting" streaming postprocess.
fn harvest_tile(
    tile: &Tile,
    counts: &[u64],
    pre: &Preprocessed,
    failed: &FailedPairs,
    minsup: u64,
    out: &mut PairMap,
) {
    let n = pre.n_items as usize;
    let minsup = minsup.max(1);
    // The tile's missing pairs (rare): cloned so consumed entries can
    // be removed, leaving only pairs whose kernel count was zero.
    let mut extras = failed.for_tile(tile).cloned().unwrap_or_default();
    for i in 0..tile.rows {
        let gi = tile.row_base + i;
        if gi >= n {
            break; // padding rows are at the end of the sorted order
        }
        let row = &counts[i * tile.cols..(i + 1) * tile.cols];
        for (j, &c) in row.iter().enumerate() {
            let gj = tile.col_base + j;
            if gj >= n {
                break;
            }
            if tile.is_diagonal() && gj <= gi {
                continue;
            }
            let key = (gi as u32, gj as u32);
            let c = if extras.is_empty() {
                c
            } else {
                c + extras.remove(&key).unwrap_or(0)
            };
            if c >= minsup {
                out.insert(key, c);
            }
        }
    }
    // Pairs every one of whose co-occurrences went through the failure
    // path (kernel count 0): still subject to the same threshold.
    for ((si, sj), c) in extras {
        if (si as usize) < n && (sj as usize) < n && c >= minsup {
            *out.entry((si, sj)).or_insert(0) += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim::pairs::brute_force_pairs;

    fn test_db(n: u32, m: usize, modulus: u32) -> TransactionDb {
        TransactionDb::new(
            n,
            (0..m)
                .map(|t| {
                    (0..n)
                        .filter(|&i| (t as u32 + i * 7) % modulus < 2)
                        .collect()
                })
                .collect(),
        )
    }

    fn config_gpu(k: usize) -> MinerConfig {
        MinerConfig {
            k,
            ..Default::default()
        }
    }

    #[test]
    fn gpu_matches_brute_force() {
        let db = test_db(30, 500, 9);
        let report = mine(&db, &config_gpu(2048));
        assert_eq!(report.pairs, brute_force_pairs(&db, 1));
        assert_eq!(report.watchdog_violations, 0);
        assert!(report.gpu_stats.is_some());
        assert!(report.timings.kernel_s > 0.0);
    }

    #[test]
    fn cpu_matches_brute_force() {
        let db = test_db(30, 500, 9);
        let report = mine(
            &db,
            &MinerConfig {
                engine: Engine::Cpu,
                ..Default::default()
            },
        );
        assert_eq!(report.pairs, brute_force_pairs(&db, 1));
        assert!(report.gpu_stats.is_none());
        assert!(report.threads >= 1);
    }

    #[test]
    fn serial_and_parallel_cpu_engines_agree() {
        let db = test_db(40, 600, 7);
        let serial = mine(
            &db,
            &MinerConfig {
                engine: Engine::Cpu,
                options: EngineOptions::auto().threads(Parallelism::Serial),
                k: 16,
                ..Default::default()
            },
        );
        assert_eq!(serial.threads, 1);
        assert_eq!(serial.pairs, brute_force_pairs(&db, 1));
        for threads in [2usize, 4, 8] {
            let parallel = mine(
                &db,
                &MinerConfig {
                    engine: Engine::Cpu,
                    options: EngineOptions::auto().threads(Parallelism::threads(threads)),
                    k: 16,
                    ..Default::default()
                },
            );
            assert_eq!(parallel.threads, threads);
            assert_eq!(parallel.pairs, serial.pairs, "threads={threads}");
        }
    }

    #[test]
    fn small_tiles_agree_with_single_tile() {
        let db = test_db(40, 300, 7);
        let single = mine(&db, &config_gpu(2048));
        let tiled = mine(&db, &config_gpu(16));
        assert_eq!(single.pairs, tiled.pairs);
        assert!(tiled.comparisons <= 48 * 48, "triangular schedule");
    }

    #[test]
    fn minsup_filters() {
        let db = test_db(20, 400, 5);
        let all = mine(&db, &config_gpu(2048));
        let thresholded = mine(
            &db,
            &MinerConfig {
                minsup: 50,
                ..config_gpu(2048)
            },
        );
        let expect = brute_force_pairs(&db, 50);
        assert_eq!(thresholded.pairs, expect);
        assert!(thresholded.pairs.len() <= all.pairs.len());
    }

    #[test]
    fn failed_insertions_are_recovered() {
        // MaxLoop 1 forces failures — but only on *sparse* sets: when
        // m ≤ r the permutation hash is injective and collisions are
        // impossible, so the database must have m ≫ r (≈6% density).
        let db = test_db(24, 3000, 30);
        let report = mine(
            &db,
            &MinerConfig {
                max_loop: 1,
                ..config_gpu(2048)
            },
        );
        assert!(
            report.failed_pair_occurrences > 0,
            "expected forced failures with MaxLoop=1"
        );
        assert_eq!(report.pairs, brute_force_pairs(&db, 1));
    }

    #[test]
    fn every_kernel_backend_mines_identically() {
        let db = test_db(24, 400, 7);
        let oracle = brute_force_pairs(&db, 1);
        for backend in batmap::ALL_BACKENDS {
            for engine in [Engine::Gpu(DeviceSpec::gtx285()), Engine::Cpu] {
                let report = mine(
                    &db,
                    &MinerConfig {
                        options: EngineOptions::auto().kernel(backend),
                        engine: engine.clone(),
                        ..Default::default()
                    },
                );
                assert_eq!(report.pairs, oracle, "backend {backend} engine {engine:?}");
            }
        }
    }

    #[test]
    fn report_accounts_memory_and_time() {
        let db = test_db(30, 500, 9);
        let report = mine(&db, &config_gpu(2048));
        assert!(report.memory.peak_bytes() > 0);
        assert!(report.memory.device_bytes > 0);
        assert!(report.timings.total_s() >= report.timings.kernel_s);
        assert!(report.timings.transfer_s > 0.0);
        assert!(report.comparisons > 0);
    }

    #[test]
    fn hybrid_repr_mines_identically_on_cpu() {
        // Dense enough for some bitmap picks and sparse enough for
        // tidlist picks, so the hybrid corpus genuinely mixes layouts.
        let db = test_db(30, 3000, 9);
        let oracle = brute_force_pairs(&db, 1);
        let batmap_report = mine(
            &db,
            &MinerConfig {
                engine: Engine::Cpu,
                options: EngineOptions::auto().repr(ReprPolicy::Batmap),
                ..Default::default()
            },
        );
        assert_eq!(batmap_report.pairs, oracle);
        for repr in batmap::ALL_REPR_POLICIES {
            for threads in [Parallelism::Serial, Parallelism::threads(3)] {
                let report = mine(
                    &db,
                    &MinerConfig {
                        engine: Engine::Cpu,
                        options: EngineOptions::auto().repr(repr).threads(threads),
                        k: 16,
                        ..Default::default()
                    },
                );
                assert_eq!(report.pairs, oracle, "repr {repr} threads {threads:?}");
            }
        }
    }

    #[test]
    fn gpu_engine_pins_batmap_under_hybrid_repr() {
        let db = test_db(24, 400, 7);
        let report = mine(
            &db,
            &MinerConfig {
                options: EngineOptions::auto().repr(ReprPolicy::Hybrid),
                ..config_gpu(2048)
            },
        );
        assert_eq!(report.pairs, brute_force_pairs(&db, 1));
        assert!(report.gpu_stats.is_some());
    }

    #[test]
    fn empty_db_mines_nothing() {
        let db = TransactionDb::new(5, vec![]);
        let report = mine(&db, &config_gpu(2048));
        assert!(report.pairs.is_empty());
    }
}
