//! Backend-agnostic tile execution — the one scheduler both mining
//! engines share.
//!
//! [`TilePlan`] wraps the §III-C k×k upper-triangle schedule with its
//! cost model; a [`TileExecutor`] walks the plan and feeds each tile's
//! row-major counts to a [`TileConsumer`]. Three executors implement
//! the seam:
//!
//! * [`SerialCpuExecutor`] — strictly sequential host execution, the
//!   baseline of the paper's CPU-vs-GPU comparison and of the
//!   parallel-equivalence tests;
//! * [`ParallelCpuExecutor`] — multicore host execution: tiles are
//!   balanced across workers by reported-comparison cost (longest
//!   processing time first), each worker folds its results into a
//!   thread-local consumer, and the locals are merged at the end.
//!   Plans with fewer than twice as many tiles as workers parallelize
//!   across rows *inside* each tile instead (too few tiles to balance
//!   well), so a single-tile run still uses every core. Both CPU paths
//!   skip the at-or-below-diagonal cells of
//!   diagonal tiles entirely (the §III-C symmetry saving, applied
//!   inside the tile);
//! * [`GpuSimExecutor`] — the §III-B kernel on the `gpu-sim` substrate
//!   (simulated device timing; diagonal tiles execute their full
//!   square in lockstep, as real SIMD hardware would).
//!
//! The contract consumers rely on: every tile of the plan is consumed
//! exactly once, and on a diagonal tile only the strict-upper-triangle
//! cells carry meaningful counts (the rest are unspecified — the CPU
//! executors leave them zero, the GPU executor computes them).
//!
//! Both CPU tile runners (`pairminer::cpu`) feed each tile row through
//! the batched one-vs-many intersection driver
//! (`batmap::intersect::count_one_vs_many_into`): the match-count
//! backend is dispatched once per row, the row's batmap stays hot in
//! registers/L1 across the column block, and equal-width column runs
//! (common — preprocessing sorts batmaps by width) take the kernels'
//! register-blocked sweep. All operands are zero-copy payload views
//! into the preprocessed corpus's contiguous `BatmapArena` —
//! `BatmapRef`s for an all-batmap corpus, typed `SetView`s (batmap /
//! bitmap / tidlist, routed through the mixed-representation kernels)
//! for a hybrid one (width-sorted sets sit width-adjacent in one
//! buffer, so a tile walk streams linearly instead of chasing per-set
//! boxes).

use crate::cpu;
use crate::gpu::{self, DeviceData};
use crate::preprocess::Preprocessed;
use crate::schedule::{schedule, Tile};
use batmap::Parallelism;
use gpu_sim::{DeviceSpec, KernelStats};
use hpcutil::Stopwatch;
use rayon::prelude::*;

/// A tile schedule plus its cost model.
#[derive(Debug, Clone)]
pub struct TilePlan {
    n_padded: usize,
    k: usize,
    tiles: Vec<Tile>,
}

impl TilePlan {
    /// Plan the k×k upper-triangle schedule for `n_padded` items
    /// (multiple of 16) with tile side `k` (multiple of 16).
    pub fn new(n_padded: usize, k: usize) -> Self {
        TilePlan {
            n_padded,
            k,
            tiles: schedule(n_padded, k),
        }
    }

    /// Tile side `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Padded item count the plan covers.
    pub fn n_padded(&self) -> usize {
        self.n_padded
    }

    /// The scheduled tiles, in `(p, q)` row-major order.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Total *reported* pair comparisons — diagonal tiles count their
    /// strict upper triangle only (exactly "(n_padded choose 2)").
    pub fn reported_comparisons(&self) -> usize {
        crate::schedule::total_comparisons(&self.tiles)
    }

    /// Total comparisons a lockstep kernel *executes* (diagonal tiles
    /// compute their full square).
    pub fn executed_comparisons(&self) -> usize {
        crate::schedule::total_executed_comparisons(&self.tiles)
    }

    /// Partition the tiles into `workers` cost-balanced buckets using
    /// the reported-comparison cost model (longest-processing-time
    /// greedy: heaviest tile first, always into the lightest bucket).
    /// Buckets are never empty unless there are fewer tiles than
    /// workers.
    pub fn balanced_buckets(&self, workers: usize) -> Vec<Vec<Tile>> {
        balanced_partition(self.tiles.clone(), workers, |t| t.comparisons())
    }
}

/// Partition `items` into at most `workers` cost-balanced buckets by
/// the longest-processing-time greedy rule: heaviest item first (input
/// order breaks ties, so the result is deterministic), always into the
/// currently lightest bucket. Buckets are never empty unless there are
/// fewer items than workers.
///
/// This is the work-partitioning rule every parallel phase of the
/// mining engines shares: [`TilePlan::balanced_buckets`] applies it to
/// tiles with the comparison-count cost model, and the levelwise
/// miner's candidate counting (`crate::levelwise`) applies it to
/// prefix-groups of Apriori candidates.
pub fn balanced_partition<T>(
    items: Vec<T>,
    workers: usize,
    cost: impl Fn(&T) -> usize,
) -> Vec<Vec<T>> {
    let workers = workers.max(1);
    let mut order: Vec<(usize, usize, T)> = items
        .into_iter()
        .enumerate()
        .map(|(i, t)| (cost(&t), i, t))
        .collect();
    // Heaviest first; equal costs keep their input order.
    order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut buckets: Vec<(usize, Vec<T>)> = Vec::with_capacity(workers);
    buckets.resize_with(workers, || (0, Vec::new()));
    for (cost, _, item) in order {
        let lightest = buckets
            .iter_mut()
            .min_by_key(|(load, _)| *load)
            .expect("workers >= 1");
        lightest.0 += cost;
        lightest.1.push(item);
    }
    buckets
        .into_iter()
        .map(|(_, items)| items)
        .filter(|b| !b.is_empty())
        .collect()
}

/// Where tile results land. One consumer per worker thread; the
/// executor merges the locals at the end via [`TileConsumer::absorb`].
pub trait TileConsumer: Send {
    /// Fold one tile's row-major `rows × cols` counts. On a diagonal
    /// tile only the strict-upper-triangle cells are meaningful.
    fn consume(&mut self, tile: &Tile, counts: &[u64]);

    /// Merge another worker's accumulator into this one. Tiles are
    /// partitioned across workers, so the two accumulators never share
    /// a tile.
    fn absorb(&mut self, other: Self)
    where
        Self: Sized;
}

/// Execution metadata common to every backend.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Stable engine name (`cpu-serial`, `cpu-parallel`, `gpu-sim`).
    pub engine: &'static str,
    /// Worker threads used (1 for serial and for the simulated GPU's
    /// host loop).
    pub threads: usize,
    /// Tile-comparison time in seconds: summed per-tile wall time for
    /// the serial engine, wall time of the whole parallel region
    /// (in-worker consumption included) for the parallel engine,
    /// *simulated* device seconds for the GPU engine.
    pub kernel_s: f64,
    /// One-time host→device transfer (simulated; 0 for CPU engines).
    pub transfer_s: f64,
    /// Host seconds spent in [`TileConsumer::consume`], where the
    /// executor can observe it separately (serial CPU and GPU paths;
    /// folded into `kernel_s` for the parallel engine).
    pub consume_s: f64,
    /// Simulated device-resident bytes (0 for CPU engines).
    pub device_bytes: usize,
    /// Largest per-tile result buffer, in bytes.
    pub max_tile_buffer_bytes: usize,
    /// Folded GPU counters (`None` for CPU engines).
    pub gpu_stats: Option<KernelStats>,
    /// Tiles whose simulated time exceeded the device watchdog.
    pub watchdog_violations: usize,
}

impl ExecReport {
    fn new(engine: &'static str, threads: usize) -> Self {
        ExecReport {
            engine,
            threads,
            kernel_s: 0.0,
            transfer_s: 0.0,
            consume_s: 0.0,
            device_bytes: 0,
            max_tile_buffer_bytes: 0,
            gpu_stats: None,
            watchdog_violations: 0,
        }
    }
}

/// A backend that can execute a [`TilePlan`].
pub trait TileExecutor {
    /// Run every tile of `plan`, feeding counts to consumers created by
    /// `make` (one per worker), and return the merged consumer plus
    /// execution metadata.
    fn execute<C, F>(&self, pre: &Preprocessed, plan: &TilePlan, make: F) -> (C, ExecReport)
    where
        C: TileConsumer,
        F: Fn() -> C + Sync + Send;
}

/// Strictly sequential CPU execution (no worker threads).
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialCpuExecutor;

impl TileExecutor for SerialCpuExecutor {
    fn execute<C, F>(&self, pre: &Preprocessed, plan: &TilePlan, make: F) -> (C, ExecReport)
    where
        C: TileConsumer,
        F: Fn() -> C + Sync + Send,
    {
        let mut report = ExecReport::new("cpu-serial", 1);
        let mut consumer = make();
        for tile in plan.tiles() {
            let mut sw = Stopwatch::start();
            let counts = cpu::run_tile_cpu_serial(pre, tile);
            report.kernel_s += sw.lap().as_secs_f64();
            report.max_tile_buffer_bytes = report.max_tile_buffer_bytes.max(counts.len() * 8);
            consumer.consume(tile, &counts);
            report.consume_s += sw.lap().as_secs_f64();
        }
        (consumer, report)
    }
}

/// Multicore CPU execution over the shared tile plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelCpuExecutor {
    /// Worker-count knob ([`Parallelism::Auto`] follows `BATMAP_THREADS`
    /// or the ambient rayon pool — so `hpcutil::scoped_pool` sweeps
    /// keep working).
    pub parallelism: Parallelism,
}

impl ParallelCpuExecutor {
    /// Parallel body, run inside whichever pool `execute` selected.
    fn run_tiles<C, F>(pre: &Preprocessed, plan: &TilePlan, make: &F, threads: usize) -> (C, usize)
    where
        C: TileConsumer,
        F: Fn() -> C + Sync + Send,
    {
        if plan.tiles().len() < 2 * threads {
            // Too few tiles to keep every worker busy: parallelize the
            // rows inside each tile instead.
            let mut consumer = make();
            let mut max_buf = 0usize;
            for tile in plan.tiles() {
                let counts = cpu::run_tile_cpu_rows(pre, tile);
                max_buf = max_buf.max(counts.len() * 8);
                consumer.consume(tile, &counts);
            }
            (consumer, max_buf)
        } else {
            // Work-balanced tile buckets, one thread-local consumer
            // per worker, merged at the end.
            let locals: Vec<(C, usize)> = plan
                .balanced_buckets(threads)
                .into_par_iter()
                .map(|bucket| {
                    let mut consumer = make();
                    let mut max_buf = 0usize;
                    for tile in &bucket {
                        let counts = cpu::run_tile_cpu_serial(pre, tile);
                        max_buf = max_buf.max(counts.len() * 8);
                        consumer.consume(tile, &counts);
                    }
                    (consumer, max_buf)
                })
                .collect();
            let mut locals = locals.into_iter();
            let (mut merged, mut max_buf) = locals.next().expect("at least one bucket");
            for (local, buf) in locals {
                merged.absorb(local);
                max_buf = max_buf.max(buf);
            }
            (merged, max_buf)
        }
    }
}

impl TileExecutor for ParallelCpuExecutor {
    fn execute<C, F>(&self, pre: &Preprocessed, plan: &TilePlan, make: F) -> (C, ExecReport)
    where
        C: TileConsumer,
        F: Fn() -> C + Sync + Send,
    {
        let threads = self.parallelism.resolve_with(rayon::current_num_threads());
        if threads <= 1 || plan.tiles().is_empty() {
            let (consumer, mut report) = SerialCpuExecutor.execute(pre, plan, make);
            report.engine = "cpu-parallel";
            return (consumer, report);
        }
        let mut report = ExecReport::new("cpu-parallel", threads);
        let mut sw = Stopwatch::start();
        let (consumer, max_buf) = match self.parallelism.pinned() {
            Some(n) => hpcutil::scoped_pool(n, || Self::run_tiles(pre, plan, &make, threads)),
            None => Self::run_tiles(pre, plan, &make, threads),
        };
        report.kernel_s = sw.lap().as_secs_f64();
        report.max_tile_buffer_bytes = max_buf;
        (consumer, report)
    }
}

/// The §III-B comparison kernel on the simulated device: one upload,
/// one launch per tile, timing and counters folded through a
/// [`gpu_sim::CommandQueue`].
#[derive(Debug, Clone, Copy)]
pub struct GpuSimExecutor<'a> {
    /// The simulated device model.
    pub device: &'a DeviceSpec,
}

impl TileExecutor for GpuSimExecutor<'_> {
    fn execute<C, F>(&self, pre: &Preprocessed, plan: &TilePlan, make: F) -> (C, ExecReport)
    where
        C: TileConsumer,
        F: Fn() -> C + Sync + Send,
    {
        let mut report = ExecReport::new("gpu-sim", 1);
        let data = DeviceData::upload(pre);
        report.device_bytes = data.buffer.bytes();
        // One queue for the whole run: batmaps transferred once
        // (§III-B), then one launch per tile.
        let mut queue = gpu_sim::CommandQueue::new(self.device);
        queue.enqueue_transfer(&data.buffer);
        let mut consumer = make();
        for tile in plan.tiles() {
            let result = gpu::run_tile_queued(&mut queue, &data, *tile);
            report.max_tile_buffer_bytes =
                report.max_tile_buffer_bytes.max(result.counts.len() * 8);
            let mut sw = Stopwatch::start();
            consumer.consume(tile, &result.counts);
            report.consume_s += sw.lap().as_secs_f64();
        }
        report.transfer_s = queue.transfer_seconds();
        report.kernel_s = queue.elapsed_seconds() - queue.transfer_seconds();
        report.watchdog_violations = queue.watchdog_violations();
        report.gpu_stats = Some(*queue.stats());
        (consumer, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::preprocess;
    use fim::{TransactionDb, VerticalDb};

    /// Collects every useful (strict-upper-triangle, non-zero-eligible)
    /// cell as a global `(row, col) → count` pair list.
    #[derive(Default)]
    struct CellSink {
        cells: Vec<((u32, u32), u64)>,
    }

    impl TileConsumer for CellSink {
        fn consume(&mut self, tile: &Tile, counts: &[u64]) {
            for r in 0..tile.rows {
                let first = if tile.is_diagonal() { r + 1 } else { 0 };
                for c in first..tile.cols {
                    let gi = (tile.row_base + r) as u32;
                    let gj = (tile.col_base + c) as u32;
                    self.cells.push(((gi, gj), counts[r * tile.cols + c]));
                }
            }
        }
        fn absorb(&mut self, other: Self) {
            self.cells.extend(other.cells);
        }
    }

    fn fixture() -> Preprocessed {
        let db = TransactionDb::new(
            30,
            (0..500usize)
                .map(|t| {
                    (0..30)
                        .filter(|&i| (t + i as usize).is_multiple_of(6))
                        .collect()
                })
                .collect(),
        );
        preprocess(&VerticalDb::from_horizontal(&db), 17, 128)
    }

    fn sorted_cells(mut sink: CellSink) -> Vec<((u32, u32), u64)> {
        sink.cells.sort_unstable();
        sink.cells
    }

    #[test]
    fn plan_costs_and_buckets() {
        let plan = TilePlan::new(96, 32);
        assert_eq!(plan.tiles().len(), 6);
        assert_eq!(plan.reported_comparisons(), 96 * 95 / 2);
        assert_eq!(
            plan.executed_comparisons(),
            plan.tiles().iter().map(|t| t.rows * t.cols).sum::<usize>()
        );
        for workers in 1..8 {
            let buckets = plan.balanced_buckets(workers);
            assert!(buckets.len() <= workers);
            let total: usize = buckets.iter().map(Vec::len).sum();
            assert_eq!(total, plan.tiles().len(), "every tile exactly once");
            assert!(buckets.iter().all(|b| !b.is_empty()));
        }
    }

    #[test]
    fn executors_agree_cell_for_cell() {
        let pre = fixture();
        for k in [16usize, 32, 2048] {
            let plan = TilePlan::new(pre.padded_items(), k);
            let (serial, s_rep) = SerialCpuExecutor.execute(&pre, &plan, CellSink::default);
            let expect = sorted_cells(serial);
            assert_eq!(s_rep.engine, "cpu-serial");
            assert_eq!(s_rep.threads, 1);
            for threads in [2usize, 3, 5, 8] {
                let exec = ParallelCpuExecutor {
                    parallelism: Parallelism::threads(threads),
                };
                let (par, p_rep) = exec.execute(&pre, &plan, CellSink::default);
                assert_eq!(p_rep.engine, "cpu-parallel");
                assert_eq!(p_rep.threads, threads);
                assert_eq!(
                    sorted_cells(par),
                    expect,
                    "k={k} threads={threads} must match serial"
                );
            }
            let gpu = GpuSimExecutor {
                device: &DeviceSpec::gtx285(),
            };
            let (gpu_sink, g_rep) = gpu.execute(&pre, &plan, CellSink::default);
            assert_eq!(sorted_cells(gpu_sink), expect, "k={k} gpu-sim");
            assert!(g_rep.gpu_stats.is_some());
            assert!(g_rep.transfer_s > 0.0);
        }
    }

    #[test]
    fn no_duplicate_or_mirrored_cells() {
        let pre = fixture();
        let plan = TilePlan::new(pre.padded_items(), 16);
        let exec = ParallelCpuExecutor {
            parallelism: Parallelism::threads(4),
        };
        let (sink, _) = exec.execute(&pre, &plan, CellSink::default);
        let cells = sorted_cells(sink);
        // Exactly the strict upper triangle, each cell once.
        assert_eq!(cells.len(), plan.reported_comparisons());
        for w in cells.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate cell {:?}", w[0].0);
        }
        assert!(
            cells.iter().all(|((i, j), _)| i < j),
            "mirrored cell leaked"
        );
    }

    #[test]
    fn serial_fallback_for_single_thread_knob() {
        let pre = fixture();
        let plan = TilePlan::new(pre.padded_items(), 32);
        let exec = ParallelCpuExecutor {
            parallelism: Parallelism::Serial,
        };
        let (_, report) = exec.execute(&pre, &plan, CellSink::default);
        assert_eq!(report.engine, "cpu-parallel");
        assert_eq!(report.threads, 1);
    }
}
