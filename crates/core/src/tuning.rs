//! Autotuned performance profiles: the machine-specific constants the
//! hot paths consult, measured once per host by the `batmap-tune`
//! binary and loaded through `BATMAP_TUNING`.
//!
//! Three knobs matter in practice and none of them changes counts:
//!
//! * **tile side** — the square tile edge the mining engines sweep
//!   (the `k` the `ablation_tilesize` bench scans). Too small wastes
//!   staging work, too large spills the probe column out of cache.
//! * **sweep block** — how many candidate sets the one-vs-many driver
//!   hands the kernel's batched entry point per call (its stack block
//!   is compile-time [`SWEEP_BLOCK_MAX`]; the profile can only shrink
//!   it, e.g. for very wide sets).
//! * **prefetch distance** — how many candidate blocks ahead the
//!   one-vs-many sweep issues software prefetches for. `0` disables
//!   prefetching (the right answer when candidates fit in L2).
//!
//! A profile is a tiny JSON file (see [`TuningProfile::save`]) so it
//! can be inspected, versioned, and shipped next to a snapshot. Loads
//! are forgiving: a missing or unparseable file warns once and falls
//! back to the defaults, and every loaded value is clamped to its safe
//! range by [`TuningProfile::sanitized`] — a hand-edited profile can
//! make things slower, never wrong.

use serde::{Deserialize, Serialize};

/// Compile-time upper bound on the one-vs-many sweep block: the hot
/// loop keeps one `&[u8]` per block entry in a stack array, so the cap
/// must be a constant. The profile's `sweep_block` is clamped to it.
pub const SWEEP_BLOCK_MAX: usize = 8;

/// The persisted autotuning profile (module docs). `Copy`, three
/// words; obtained from [`TuningProfile::current`] on the hot paths.
///
/// In a profile file, `tile_side`/`sweep_block` may be omitted or
/// written as `0` to mean "use the built-in default" (the
/// `batmap-tune` writer always records concrete values, so this is a
/// hand-editing affordance). `prefetch_dist: 0` is meaningful —
/// prefetching off — so an omitted `prefetch_dist` also disables it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuningProfile {
    /// Square tile edge for the mining engines' pair sweeps.
    #[serde(default)]
    pub tile_side: usize,
    /// Candidate sets per batched kernel call in the one-vs-many
    /// driver (clamped to [`SWEEP_BLOCK_MAX`]).
    #[serde(default)]
    pub sweep_block: usize,
    /// Software-prefetch lookahead in candidate *blocks* for the
    /// one-vs-many sweep; `0` disables prefetching.
    #[serde(default)]
    pub prefetch_dist: usize,
}

impl Default for TuningProfile {
    fn default() -> Self {
        TuningProfile {
            tile_side: 2048,
            sweep_block: SWEEP_BLOCK_MAX,
            prefetch_dist: 2,
        }
    }
}

impl TuningProfile {
    /// Clamp every knob to its safe range: `tile_side` in
    /// `[16, 1 << 20]`, `sweep_block` in `[1, SWEEP_BLOCK_MAX]`,
    /// `prefetch_dist` in `[0, 64]`; `0` for the first two means
    /// "default" (see the type docs). Applied to every loaded profile
    /// so a hand-edited file cannot push a driver outside its contract.
    pub fn sanitized(self) -> Self {
        let d = TuningProfile::default();
        TuningProfile {
            tile_side: match self.tile_side {
                0 => d.tile_side,
                t => t.clamp(16, 1 << 20),
            },
            sweep_block: match self.sweep_block {
                0 => d.sweep_block,
                b => b.min(SWEEP_BLOCK_MAX),
            },
            prefetch_dist: self.prefetch_dist.min(64),
        }
    }

    /// Serialize as the JSON document `save` writes.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("profile serializes")
    }

    /// Parse (and sanitize) a profile from JSON; missing fields take
    /// their defaults.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str::<TuningProfile>(json)
            .map(TuningProfile::sanitized)
            .map_err(|e| format!("tuning profile does not parse: {e}"))
    }

    /// Load (and sanitize) a profile from a JSON file.
    pub fn load<P: AsRef<std::path::Path>>(path: P) -> Result<Self, String> {
        let json = std::fs::read_to_string(path.as_ref()).map_err(|e| {
            format!(
                "cannot read tuning profile {}: {e}",
                path.as_ref().display()
            )
        })?;
        Self::from_json(&json)
    }

    /// Write the profile as JSON (the format `BATMAP_TUNING` points
    /// at). Crash-safe via the same atomic rename the snapshots use.
    pub fn save<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        crate::arena::atomic_write(path.as_ref(), |w| {
            use std::io::Write;
            w.write_all(self.to_json().as_bytes())
        })
    }

    /// The process-wide profile: the file `BATMAP_TUNING` names, or the
    /// defaults when the variable is unset. A set-but-broken profile
    /// (missing file, bad JSON) warns once and falls back to the
    /// defaults — tuning must never turn into a startup failure.
    /// Resolved once per process and cached.
    pub fn current() -> TuningProfile {
        static CURRENT: std::sync::OnceLock<TuningProfile> = std::sync::OnceLock::new();
        *CURRENT.get_or_init(|| match crate::options::tuning_env() {
            None => TuningProfile::default(),
            Some(path) => match TuningProfile::load(path) {
                Ok(profile) => profile,
                Err(e) => {
                    eprintln!("warning: BATMAP_TUNING ignored ({e}); using default profile");
                    TuningProfile::default()
                }
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_already_sane() {
        let d = TuningProfile::default();
        assert_eq!(d, d.sanitized());
        assert!(d.sweep_block <= SWEEP_BLOCK_MAX);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let p = TuningProfile {
            tile_side: 512,
            sweep_block: 4,
            prefetch_dist: 3,
        };
        let back = TuningProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn omitted_sizing_fields_take_defaults() {
        let p = TuningProfile::from_json("{\"tile_side\":256}").unwrap();
        assert_eq!(p.tile_side, 256);
        assert_eq!(p.sweep_block, TuningProfile::default().sweep_block);
        // Omitted prefetch_dist reads as 0: prefetching off.
        assert_eq!(p.prefetch_dist, 0);
    }

    #[test]
    fn loaded_values_are_clamped_to_safe_ranges() {
        let p = TuningProfile::from_json(
            "{\"tile_side\":1,\"sweep_block\":4096,\"prefetch_dist\":1000000}",
        )
        .unwrap();
        assert_eq!(p.tile_side, 16);
        assert_eq!(p.sweep_block, SWEEP_BLOCK_MAX);
        assert_eq!(p.prefetch_dist, 64);
    }

    #[test]
    fn bad_json_is_an_error_not_a_panic() {
        assert!(TuningProfile::from_json("not json").is_err());
        assert!(TuningProfile::load("/nonexistent/profile.json").is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("batmap-tuning-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        let p = TuningProfile {
            tile_side: 64,
            sweep_block: 2,
            prefetch_dist: 0,
        };
        p.save(&path).unwrap();
        assert_eq!(TuningProfile::load(&path).unwrap(), p);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
