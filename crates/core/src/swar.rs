//! Branch-free SWAR match-count kernels (§III-A).
//!
//! The workhorse of the whole paper: given two 32-bit words holding four
//! slot bytes each, count the lanes where the 7 key bits agree *and* at
//! least one of the two indicator bits is set — with no conditional code.
//!
//! The paper's exact formulation:
//!
//! ```text
//! p  = ((x ⊕ y) ∨ 0x80808080) − 0x01010101
//! p' = (p ⊕ 0xffffffff) ∧ ((x ∨ y) ∧ 0x80808080)
//! matches = ((p'≫7) + (p'≫15) + (p'≫23) + (p'≫31)) ∧ 7
//! ```
//!
//! `p` gets a 0 in each lane's bit 7 iff the lane's key bits are equal
//! (the `∨ 0x80` guarantees the per-lane subtraction cannot borrow into
//! the neighbouring lane); `p'` then isolates "equal and counted" lanes.
//!
//! We provide the faithful u32 kernel, a u64 widening (used by the CPU
//! pipeline; benchmarked in `benches/swar.rs`), and a byte-at-a-time
//! scalar reference that the property tests compare against. The true
//! 16/32-lane SIMD formulations live in `crate::simd` (`x86_64` only);
//! they reuse [`match_count_slices`] as the shared tail path for widths
//! that are not register multiples, so every wide backend degrades
//! through the same u64-then-scalar edge handling.

/// Per-lane indicator-bit mask, 4 lanes.
const HI32: u32 = 0x8080_8080;
/// Per-lane LSB mask, 4 lanes.
const LO32: u32 = 0x0101_0101;
/// Per-lane indicator-bit mask, 8 lanes.
const HI64: u64 = 0x8080_8080_8080_8080;
/// Per-lane LSB mask, 8 lanes.
const LO64: u64 = 0x0101_0101_0101_0101;

/// Count matching lanes in two 32-bit words of four slots each, exactly
/// as printed in the paper.
///
/// ```
/// use batmap::swar::match_count_u32;
/// // Lane 0: keys equal (5,5), indicators 1|0 -> counted.
/// // Lane 1: keys equal (9,9), indicators 0|0 -> not counted.
/// // Lane 2: keys differ -> not counted.
/// // Lane 3: empty (0x7F) vs empty -> not counted.
/// let x = u32::from_le_bytes([0x85, 0x09, 0x11, 0x7F]);
/// let y = u32::from_le_bytes([0x05, 0x09, 0x12, 0x7F]);
/// assert_eq!(match_count_u32(x, y), 1);
/// ```
#[inline]
pub fn match_count_u32(x: u32, y: u32) -> u32 {
    let p = ((x ^ y) | HI32).wrapping_sub(LO32);
    let pp = !p & ((x | y) & HI32);
    ((pp >> 7)
        .wrapping_add(pp >> 15)
        .wrapping_add(pp >> 23)
        .wrapping_add(pp >> 31))
        & 7
}

/// Count matching lanes in two 64-bit words of eight slots each.
///
/// Same derivation as [`match_count_u32`]; the horizontal add uses a
/// popcount on the isolated indicator bits (8 lanes no longer fit the
/// 3-bit trick).
#[inline]
pub fn match_count_u64(x: u64, y: u64) -> u32 {
    let p = ((x ^ y) | HI64).wrapping_sub(LO64);
    let pp = !p & ((x | y) & HI64);
    pp.count_ones()
}

/// Ablation variant: count lanes whose 7 key bits agree, ignoring the
/// indicator bits entirely.
///
/// This is what a naive 2-of-3 comparison would compute: an element
/// stored in the same two tables by both batmaps is counted **twice**,
/// and empty-lane pairs (⊥ = ⊥) all count. Exists to let the
/// `ablation_indicator` bench demonstrate that the paper's exactness
/// trick costs no extra instructions worth measuring — never use it for
/// real counting.
#[inline]
pub fn match_count_u32_keys_only(x: u32, y: u32) -> u32 {
    let p = ((x ^ y) | HI32).wrapping_sub(LO32);
    let pp = !p & HI32;
    ((pp >> 7)
        .wrapping_add(pp >> 15)
        .wrapping_add(pp >> 23)
        .wrapping_add(pp >> 31))
        & 7
}

/// Scalar reference: the same predicate evaluated per byte with ordinary
/// control flow. Used as the test oracle and as the "branchy CPU"
/// ablation point.
#[inline]
pub fn match_count_bytes(xs: &[u8], ys: &[u8]) -> u64 {
    debug_assert_eq!(xs.len(), ys.len());
    let mut count = 0u64;
    for (&a, &b) in xs.iter().zip(ys) {
        let keys_equal = (a & 0x7F) == (b & 0x7F);
        let counted = (a | b) & 0x80 != 0;
        if keys_equal && counted {
            count += 1;
        }
    }
    count
}

/// Count matches over two equal-length byte slices using the u64 kernel
/// on the aligned middle and the scalar kernel on the edges.
pub fn match_count_slices(xs: &[u8], ys: &[u8]) -> u64 {
    assert_eq!(xs.len(), ys.len(), "batmap slices must have equal width");
    let mut count = 0u64;
    let mut chunks_x = xs.chunks_exact(8);
    let mut chunks_y = ys.chunks_exact(8);
    for (cx, cy) in (&mut chunks_x).zip(&mut chunks_y) {
        let wx = u64::from_le_bytes(cx.try_into().unwrap());
        let wy = u64::from_le_bytes(cy.try_into().unwrap());
        count += match_count_u64(wx, wy) as u64;
    }
    count + match_count_bytes(chunks_x.remainder(), chunks_y.remainder())
}

// The §II "batmaps of different sizes" wrap-around comparison lives in
// `kernel::MatchKernel::count_wrapped` (one copy, shared by every
// backend); this module keeps only the word-level formulations.

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a slot byte from key + indicator.
    fn sl(key: u8, ind: bool) -> u8 {
        key | if ind { 0x80 } else { 0 }
    }

    #[test]
    fn u32_kernel_counts_each_case() {
        // All four lanes match with indicator set -> 4.
        let x = u32::from_le_bytes([sl(1, true); 4]);
        assert_eq!(match_count_u32(x, x), 4);
        // Keys equal, both indicators clear -> 0 (the "same two tables,
        // first occurrence" suppression).
        let x = u32::from_le_bytes([sl(1, false); 4]);
        assert_eq!(match_count_u32(x, x), 0);
        // Keys differ, indicators set -> 0.
        let x = u32::from_le_bytes([sl(1, true); 4]);
        let y = u32::from_le_bytes([sl(2, true); 4]);
        assert_eq!(match_count_u32(x, y), 0);
    }

    #[test]
    fn one_indicator_suffices() {
        let x = u32::from_le_bytes([sl(9, true), sl(9, false), 0x7F, 0x7F]);
        let y = u32::from_le_bytes([sl(9, false), sl(9, true), 0x7F, 0x7F]);
        assert_eq!(match_count_u32(x, y), 2);
    }

    #[test]
    fn no_borrow_between_lanes() {
        // Lane 0 keys equal at 0x00 — the subtraction in lane 0 must not
        // borrow from lane 1 and corrupt its verdict.
        let x = u32::from_le_bytes([sl(0, true), sl(3, true), 0x7F, 0x7F]);
        let y = u32::from_le_bytes([sl(0, false), sl(4, true), 0x7F, 0x7F]);
        assert_eq!(match_count_u32(x, y), 1);
    }

    #[test]
    fn empty_lanes_never_count() {
        // Empty vs empty: keys equal (127) but both indicators clear.
        assert_eq!(match_count_u32(0x7F7F_7F7F, 0x7F7F_7F7F), 0);
        // Empty vs a live slot: keys can never both be 127 for live data,
        // so no count even with an indicator set.
        let x = u32::from_le_bytes([0x7F; 4]);
        let y = u32::from_le_bytes([sl(5, true); 4]);
        assert_eq!(match_count_u32(x, y), 0);
    }

    #[test]
    fn u64_matches_u32_composition() {
        let bytes_x: [u8; 8] = [
            sl(1, true),
            sl(2, false),
            0x7F,
            sl(3, true),
            sl(4, true),
            0x7F,
            sl(5, false),
            sl(6, true),
        ];
        let bytes_y: [u8; 8] = [
            sl(1, false),
            sl(2, false),
            0x7F,
            sl(9, true),
            sl(4, false),
            0x7F,
            sl(5, true),
            sl(6, false),
        ];
        let x64 = u64::from_le_bytes(bytes_x);
        let y64 = u64::from_le_bytes(bytes_y);
        let lo_x = u32::from_le_bytes(bytes_x[..4].try_into().unwrap());
        let lo_y = u32::from_le_bytes(bytes_y[..4].try_into().unwrap());
        let hi_x = u32::from_le_bytes(bytes_x[4..].try_into().unwrap());
        let hi_y = u32::from_le_bytes(bytes_y[4..].try_into().unwrap());
        assert_eq!(
            match_count_u64(x64, y64),
            match_count_u32(lo_x, lo_y) + match_count_u32(hi_x, hi_y)
        );
    }

    #[test]
    fn slices_handle_unaligned_tails() {
        // 11 bytes: 8-byte body + 3-byte tail.
        let xs: Vec<u8> = (0..11).map(|i| sl(i as u8 % 0x7F, i % 2 == 0)).collect();
        let ys = xs.clone();
        let expected = match_count_bytes(&xs, &ys);
        assert_eq!(match_count_slices(&xs, &ys), expected);
    }

    #[test]
    fn exhaustive_u32_vs_scalar_random() {
        // Pseudo-random cross-check of the kernels against the scalar
        // reference over many word pairs.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10_000 {
            let x = next() as u32;
            let y = next() as u32;
            let xs = x.to_le_bytes();
            let ys = y.to_le_bytes();
            assert_eq!(
                match_count_u32(x, y) as u64,
                match_count_bytes(&xs, &ys),
                "x={x:08x} y={y:08x}"
            );
            let x64 = next();
            let y64 = next();
            assert_eq!(
                match_count_u64(x64, y64) as u64,
                match_count_bytes(&x64.to_le_bytes(), &y64.to_le_bytes()),
                "x={x64:016x} y={y64:016x}"
            );
        }
    }
}
