//! In-place updates on built batmaps.
//!
//! The paper builds batmaps once and never mutates them; the layout,
//! however, supports dynamic sets naturally — every slot byte plus its
//! position decodes to the full permuted value, so an occupant can be
//! identified and evicted without side tables. This module adds:
//!
//! * [`Batmap::insert_mut`] — cuckoo insertion directly on the
//!   compressed slots, with automatic growth (rebuild at the next
//!   power-of-two range) when the load or an eviction failure demands;
//! * [`Batmap::remove_mut`] — clear the element's two slots.
//!
//! Indicator-bit maintenance: eviction chains move copies between
//! tables, which invalidates the cyclic-order bits of every element
//! touched. The chain records the affected elements and re-derives
//! their two indicator bits at the end — O(chain length) extra work.

use crate::params::{EMPTY_SLOT, TABLES};
use crate::slot;
use crate::Batmap;

/// Result of a mutable insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// Element inserted.
    Inserted,
    /// Element was already present; no change.
    AlreadyPresent,
    /// Insertion triggered a growth rebuild (element is inserted; the
    /// batmap's width increased).
    InsertedWithGrowth,
}

impl Batmap {
    /// Insert `x` into this batmap in place.
    ///
    /// Grows (rebuilds at a doubled range) when the set outgrows the
    /// sizing policy or an eviction chain exceeds `MaxLoop` — so the
    /// call always succeeds. Counts against other batmaps remain exact
    /// after any number of updates (growth preserves the shared hash
    /// functions; only the fold width changes).
    pub fn insert_mut(&mut self, x: u32) -> UpdateOutcome {
        assert!(
            (x as u64) < self.params().m(),
            "element {x} outside universe"
        );
        if self.contains(x) {
            return UpdateOutcome::AlreadyPresent;
        }
        // Growth check up front: keep the load within the build policy.
        if self.params().range_for(self.len() + 1) > self.range() {
            let mut elements = self.elements();
            elements.push(x);
            // `rebuild` inserts x along with everything else.
            self.rebuild(elements, self.params().range_for(self.len() + 1));
            return UpdateOutcome::InsertedWithGrowth;
        }
        match self.try_insert_copies(x) {
            Ok(touched) => {
                self.fix_indicators(&touched);
                self.set_len(self.len() + 1);
                UpdateOutcome::Inserted
            }
            Err(()) => {
                // Eviction failure mid-chain: indicator bits are stale
                // and one victim has a single placed copy, so recover
                // the element set straight from the slots (key +
                // position decode every occupant exactly) and rebuild
                // one size up with x included.
                let mut elements = self.decode_occupants();
                elements.push(x);
                self.rebuild(elements, self.range() * 2);
                UpdateOutcome::InsertedWithGrowth
            }
        }
    }

    /// Remove `x`; returns whether it was present.
    pub fn remove_mut(&mut self, x: u32) -> bool {
        let r = self.range();
        let mut found = false;
        for t in 0..TABLES {
            let pi = self.params().perms().apply(t, x as u64);
            let idx = self.params().slot_of(t, pi, r);
            let b = self.as_bytes()[idx];
            if !slot::is_empty(b) && slot::key(b) == self.params().key_of(pi) {
                self.bytes_mut()[idx] = EMPTY_SLOT;
                found = true;
            }
        }
        if found {
            self.set_len(self.len() - 1);
        }
        found
    }

    /// Place two copies of `x` by cuckoo eviction on the compressed
    /// slots; returns the elements whose copies moved (for indicator
    /// repair), or `Err` if `MaxLoop` was exceeded (state left
    /// consistent enough for the growth rebuild, which re-derives
    /// everything from the decoded elements).
    fn try_insert_copies(&mut self, x: u32) -> Result<Vec<u32>, ()> {
        let r = self.range();
        let max_loop = self.params().max_loop();
        let mut touched = vec![x];
        for _copy in 0..2 {
            let mut tau = x;
            let mut placed = false;
            'chain: for _ in 0..max_loop {
                for t in 0..TABLES {
                    let pi = self.params().perms().apply(t, tau as u64);
                    let idx = self.params().slot_of(t, pi, r);
                    let prev = self.as_bytes()[idx];
                    // Write tau's key (indicator fixed later).
                    let key = self.params().key_of(pi);
                    self.bytes_mut()[idx] = slot::pack(key, false);
                    if slot::is_empty(prev) {
                        placed = true;
                        break 'chain;
                    }
                    // Decode the evicted occupant.
                    let prev_pi = self
                        .params()
                        .decode_slot(idx, slot::key(prev), r)
                        .expect("live slot decodes");
                    let evicted = self.params().perms().invert(t, prev_pi) as u32;
                    if evicted != tau {
                        touched.push(evicted);
                        tau = evicted;
                    }
                    // evicted == tau: we displaced our own other copy —
                    // continue pushing the same element (the §II-B
                    // "moved to the location of the other copy" case).
                }
            }
            if !placed {
                return Err(());
            }
        }
        Ok(touched)
    }

    /// Re-derive the indicator bits of the given elements from their
    /// current copy positions (each must be fully placed).
    fn fix_indicators(&mut self, elements: &[u32]) {
        let r = self.range();
        for &e in elements {
            let mut tables = [usize::MAX; 2];
            let mut n = 0;
            let mut slots = [0usize; 2];
            for t in 0..TABLES {
                let pi = self.params().perms().apply(t, e as u64);
                let idx = self.params().slot_of(t, pi, r);
                let b = self.as_bytes()[idx];
                if !slot::is_empty(b) && slot::key(b) == self.params().key_of(pi) {
                    // Guard against a *different* element whose key
                    // matches? Impossible: key+position identify π
                    // uniquely, so a match is e's copy.
                    if n < 2 {
                        tables[n] = t;
                        slots[n] = idx;
                    }
                    n += 1;
                }
            }
            assert_eq!(n, 2, "element {e} must have exactly two copies, has {n}");
            for k in 0..2 {
                let here = tables[k];
                let other = tables[1 - k];
                let b = self.as_bytes()[slots[k]];
                self.bytes_mut()[slots[k]] =
                    slot::pack(slot::key(b), slot::indicator_for(here, other));
            }
        }
    }

    /// Every element with at least one placed copy, decoded directly
    /// from the slot array (does not rely on indicator bits, so it is
    /// safe mid-recovery).
    fn decode_occupants(&self) -> Vec<u32> {
        let r = self.range();
        let mut out = Vec::with_capacity(self.len() * 2);
        for (idx, &b) in self.as_bytes().iter().enumerate() {
            if slot::is_empty(b) {
                continue;
            }
            let t = self.params().table_of_slot(idx);
            let pi = self
                .params()
                .decode_slot(idx, slot::key(b), r)
                .expect("live slot decodes");
            out.push(self.params().perms().invert(t, pi) as u32);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Rebuild this batmap over `elements` with range at least
    /// `min_range` (doubling further if a rebuild itself fails —
    /// vanishingly unlikely but handled).
    fn rebuild(&mut self, mut elements: Vec<u32>, mut min_range: u64) {
        elements.sort_unstable();
        elements.dedup();
        loop {
            // `range_for(s) = max(r0, 2·2^⌈log₂ s⌉)`, so a size hint of
            // min_range/2 yields exactly min_range (both powers of two).
            let size_hint = elements.len().max((min_range / 2) as usize);
            let mut builder =
                crate::builder::BatmapBuilder::with_capacity(self.params().clone(), size_hint);
            let mut ok = true;
            for &e in &elements {
                if builder.insert(e) == crate::builder::InsertOutcome::Failed {
                    ok = false;
                    break;
                }
            }
            if ok {
                self.replace_with(builder.finish().batmap);
                return;
            }
            min_range *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BatmapParams;
    use crate::ParamsHandle;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn params(m: u64) -> ParamsHandle {
        Arc::new(BatmapParams::new(m, 0x0DD))
    }

    #[test]
    fn insert_then_query() {
        let p = params(50_000);
        let mut bm = Batmap::build(p, &[]).batmap;
        for x in (0..2000u32).map(|i| i * 7 % 50_000) {
            bm.insert_mut(x);
        }
        let expect: BTreeSet<u32> = (0..2000u32).map(|i| i * 7 % 50_000).collect();
        assert_eq!(bm.len(), expect.len());
        for &x in &expect {
            assert!(bm.contains(x));
        }
        let mut got = bm.elements();
        got.sort_unstable();
        assert_eq!(got, expect.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let p = params(1_000);
        let mut bm = Batmap::build(p, &[5, 6]).batmap;
        assert_eq!(bm.insert_mut(5), UpdateOutcome::AlreadyPresent);
        assert_eq!(bm.len(), 2);
        assert_eq!(bm.intersect_count(&bm), 2);
    }

    #[test]
    fn remove_clears_both_copies() {
        let p = params(10_000);
        let elements: Vec<u32> = (0..500).map(|i| i * 3).collect();
        let mut bm = Batmap::build(p, &elements).batmap;
        assert!(bm.remove_mut(9));
        assert!(!bm.contains(9));
        assert_eq!(bm.len(), 499);
        assert!(!bm.remove_mut(9), "double remove");
        assert_eq!(bm.intersect_count(&bm), 499);
    }

    #[test]
    fn updates_preserve_intersection_exactness() {
        let p = params(20_000);
        let other: Vec<u32> = (0..1500).map(|i| i * 4 % 20_000).collect();
        let bo = Batmap::build(p.clone(), &other).batmap;
        let other_set: BTreeSet<u32> = other.into_iter().collect();

        let mut bm = Batmap::build(p, &[]).batmap;
        let mut live: BTreeSet<u32> = BTreeSet::new();
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..3000 {
            let x = (next() % 20_000) as u32;
            if next() % 3 == 0 {
                bm.remove_mut(x);
                live.remove(&x);
            } else {
                bm.insert_mut(x);
                live.insert(x);
            }
            if step % 500 == 0 {
                let expect = live.intersection(&other_set).count() as u64;
                assert_eq!(bm.intersect_count(&bo), expect, "step {step}");
                assert_eq!(bm.len(), live.len(), "step {step}");
            }
        }
        let expect = live.intersection(&other_set).count() as u64;
        assert_eq!(bm.intersect_count(&bo), expect);
    }

    #[test]
    fn growth_happens_and_stays_exact() {
        let p = params(100_000);
        let mut bm = Batmap::build(p.clone(), &(0..64).collect::<Vec<_>>()).batmap;
        let w0 = bm.width_bytes();
        let mut grew = false;
        for x in 64..5000u32 {
            if bm.insert_mut(x) == UpdateOutcome::InsertedWithGrowth {
                grew = true;
            }
        }
        assert!(grew, "expected at least one growth");
        assert!(bm.width_bytes() > w0);
        assert_eq!(bm.len(), 5000);
        // Fold-compat against a freshly built batmap of another width.
        let probe = Batmap::build(p, &(0..200u32).map(|i| i * 30).collect::<Vec<_>>()).batmap;
        let expect = (0..200u32).map(|i| i * 30).filter(|&v| v < 5000).count() as u64;
        assert_eq!(bm.intersect_count(&probe), expect);
    }

    #[test]
    fn indicator_invariant_maintained() {
        let p = params(30_000);
        let mut bm = Batmap::build(p, &[]).batmap;
        for x in (0..3000u32).map(|i| (i * 97) % 30_000) {
            bm.insert_mut(x);
        }
        let ones = bm
            .as_bytes()
            .iter()
            .filter(|&&b| slot::indicator(b) && !slot::is_empty(b))
            .count();
        assert_eq!(ones, bm.len(), "exactly one indicator per element");
        assert_eq!(bm.intersect_count(&bm), bm.len() as u64);
    }
}
