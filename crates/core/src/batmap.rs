//! The [`Batmap`] type: an immutable, compressed, intersectable set.

use crate::builder::{self, BuildOutcome};
use crate::intersect;
use crate::params::{ParamsHandle, TABLES};
use crate::slot;
use crate::BatmapError;
use hpcutil::MemoryFootprint;

/// Storage-agnostic view of one batmap: the slot words, the universe
/// parameters they were built from, and the stored cardinality.
///
/// This is the seam that makes the hot paths independent of *where* the
/// slot bytes live: [`Batmap`] owns its bytes in a private `Box<[u8]>`,
/// while [`crate::arena::BatmapRef`] borrows a window of a
/// [`crate::arena::BatmapArena`]'s contiguous backing store. Everything
/// downstream — [`crate::intersect`], the kernel dispatch, the
/// [`crate::multiway`] probe sweep, and the `pairminer` tile engines —
/// is generic over this trait, so owned and arena-backed sets flow
/// through the same monomorphized loops and produce identical counts.
///
/// The provided decode helpers ([`AsSlots::contains`],
/// [`AsSlots::elements`]) work purely from the accessors, so any
/// implementor gets exact membership and enumeration for free.
pub trait AsSlots {
    /// The universe parameters this set was built from.
    fn params(&self) -> &ParamsHandle;

    /// Per-table hash range `r` (power of two, ≥ `r₀`).
    fn range(&self) -> u64;

    /// The raw slot bytes (`3·r` of them, four slots per 32-bit word).
    fn slot_bytes(&self) -> &[u8];

    /// Number of elements stored.
    fn len(&self) -> usize;

    /// Width of the representation in bytes (`3·r`, the paper's `|Bᵢ|`).
    fn width_bytes(&self) -> usize {
        self.slot_bytes().len()
    }

    /// True when the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test — exact (no false positives): a slot's position
    /// plus its 7 stored key bits uniquely identify the permuted value,
    /// and the permuted value uniquely identifies the element.
    fn contains(&self, x: u32) -> bool {
        let params = self.params();
        let r = self.range();
        let bytes = self.slot_bytes();
        debug_assert!((x as u64) < params.m());
        (0..TABLES).any(|t| {
            let pi = params.perms().apply(t, x as u64);
            let idx = params.slot_of(t, pi, r);
            let b = bytes[idx];
            !slot::is_empty(b) && slot::key(b) == params.key_of(pi)
        })
    }

    /// Enumerate the stored elements, in unspecified order.
    ///
    /// Exactly one of an element's two copies carries the indicator bit
    /// (the copy whose sibling is in the *next* table), so scanning for
    /// set indicator bits yields each element once.
    fn elements(&self) -> Vec<u32> {
        let params = self.params();
        let r = self.range();
        let mut out = Vec::with_capacity(self.len());
        for (idx, &b) in self.slot_bytes().iter().enumerate() {
            if !slot::indicator(b) {
                continue;
            }
            let t = params.table_of_slot(idx);
            let pi = params
                .decode_slot(idx, slot::key(b), r)
                .expect("live slot must decode");
            out.push(params.perms().invert(t, pi) as u32);
        }
        debug_assert_eq!(out.len(), self.len());
        out
    }
}

/// A set of elements from `{0..m-1}` in the paper's compressed 2-of-3
/// layout: `3·r` one-byte slots, four to a machine word, intersectable
/// against any other batmap built from the same [`crate::BatmapParams`]
/// by pure positional comparison.
///
/// ```
/// use batmap::{BatmapParams, Batmap};
/// use std::sync::Arc;
///
/// let params = Arc::new(BatmapParams::new(10_000, 42));
/// let a = Batmap::build(params.clone(), &[1, 2, 3, 500, 900]).batmap;
/// let b = Batmap::build(params, &[2, 3, 4, 900, 901]).batmap;
/// assert_eq!(a.intersect_count(&b), 3); // {2, 3, 900}
/// ```
#[derive(Debug, Clone)]
pub struct Batmap {
    params: ParamsHandle,
    /// Per-table range `r` (power of two, ≥ r₀).
    r: u64,
    /// The `3·r` slot bytes.
    bytes: Box<[u8]>,
    /// Number of elements stored.
    len: usize,
}

impl Batmap {
    /// Build a batmap from a slice of elements (duplicates are ignored).
    ///
    /// Returns the full [`BuildOutcome`] so callers can observe failed
    /// insertions (§III-C); use `.batmap` when failures don't matter
    /// (they are absent at the paper's load factors).
    pub fn build(params: ParamsHandle, elements: &[u32]) -> BuildOutcome {
        builder::build(params, elements)
    }

    /// Build from elements known to be sorted and duplicate-free.
    pub fn build_sorted(params: ParamsHandle, elements: &[u32]) -> BuildOutcome {
        builder::build_sorted_dedup(params, elements)
    }

    /// Assemble from parts (crate-internal; used by the builder).
    pub(crate) fn from_raw_parts(
        params: ParamsHandle,
        r: u64,
        bytes: Box<[u8]>,
        len: usize,
    ) -> Self {
        debug_assert_eq!(bytes.len() as u64, TABLES as u64 * r);
        Batmap {
            params,
            r,
            bytes,
            len,
        }
    }

    /// The universe parameters this batmap was built from.
    pub fn params(&self) -> &ParamsHandle {
        &self.params
    }

    /// Per-table hash range `r`.
    pub fn range(&self) -> u64 {
        self.r
    }

    /// Width of the representation in bytes (`3·r`, the quantity the
    /// paper calls `|Bᵢ|`).
    pub fn width_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw slot bytes (what the GPU kernel reads, 4 slots per word).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Membership test.
    ///
    /// Exact (no false positives): a slot's position plus its 7 stored
    /// key bits uniquely identify the permuted value, and the permuted
    /// value uniquely identifies the element.
    pub fn contains(&self, x: u32) -> bool {
        AsSlots::contains(self, x)
    }

    /// Enumerate the stored elements, in unspecified order (see
    /// [`AsSlots::elements`]).
    pub fn elements(&self) -> Vec<u32> {
        AsSlots::elements(self)
    }

    /// `|self ∩ other|` by positional comparison (§II / §III-A), against
    /// any storage ([`Batmap`] or an arena-backed
    /// [`crate::arena::BatmapRef`]).
    ///
    /// # Panics
    /// Panics if the two batmaps come from different universes; use
    /// [`Self::try_intersect_count`] for a fallible variant.
    pub fn intersect_count(&self, other: &impl AsSlots) -> u64 {
        self.try_intersect_count(other)
            .expect("batmaps from different universes")
    }

    /// Fallible [`Self::intersect_count`].
    pub fn try_intersect_count(&self, other: &impl AsSlots) -> Result<u64, BatmapError> {
        intersect::try_count(self, other)
    }

    /// [`Self::intersect_count`] with an explicit match-count backend,
    /// overriding the one configured on the universe parameters.
    ///
    /// # Panics
    /// Panics if the two batmaps come from different universes.
    pub fn intersect_count_with(
        &self,
        kernel: &dyn crate::kernel::MatchKernel,
        other: &impl AsSlots,
    ) -> u64 {
        assert_eq!(
            self.params.fingerprint(),
            other.params().fingerprint(),
            "batmaps from different universes"
        );
        intersect::count_with(kernel, self, other)
    }

    /// Density of the represented set relative to the universe.
    pub fn density(&self) -> f64 {
        self.len as f64 / self.params.m() as f64
    }

    /// Bits per stored element of this representation (∞-free: returns
    /// the total width for an empty set).
    pub fn bits_per_element(&self) -> f64 {
        (self.width_bytes() * 8) as f64 / self.len.max(1) as f64
    }

    /// Mutable slot access for the in-place update path (`update.rs`).
    pub(crate) fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Adjust the stored cardinality (update path).
    pub(crate) fn set_len(&mut self, len: usize) {
        self.len = len;
    }

    /// Replace the whole representation (update path: growth rebuild).
    pub(crate) fn replace_with(&mut self, other: Batmap) {
        debug_assert_eq!(self.params.fingerprint(), other.params.fingerprint());
        *self = other;
    }
}

impl AsSlots for Batmap {
    fn params(&self) -> &ParamsHandle {
        &self.params
    }
    fn range(&self) -> u64 {
        self.r
    }
    fn slot_bytes(&self) -> &[u8] {
        &self.bytes
    }
    fn len(&self) -> usize {
        self.len
    }
}

impl MemoryFootprint for Batmap {
    fn heap_bytes(&self) -> usize {
        // Params are shared across all batmaps of a universe; charge the
        // slot array only (dominant and per-set).
        self.bytes.len()
    }
}

/// Serialized form: parameters by value (re-`Arc`ed on load — sharing
/// across batmaps is a runtime optimization, not a format concern).
#[derive(serde::Serialize, serde::Deserialize)]
struct BatmapRepr {
    params: crate::params::BatmapParams,
    r: u64,
    bytes: Vec<u8>,
    len: usize,
}

impl serde::Serialize for Batmap {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        BatmapRepr {
            params: (*self.params).clone(),
            r: self.r,
            bytes: self.bytes.to_vec(),
            len: self.len,
        }
        .serialize(s)
    }
}

impl<'de> serde::Deserialize<'de> for Batmap {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let repr = BatmapRepr::deserialize(d)?;
        if !repr.r.is_power_of_two() || repr.r < repr.params.r0() {
            return Err(serde::de::Error::custom("invalid batmap range"));
        }
        if repr.bytes.len() as u64 != TABLES as u64 * repr.r {
            return Err(serde::de::Error::custom("slot array width mismatch"));
        }
        Ok(Batmap {
            params: std::sync::Arc::new(repr.params),
            r: repr.r,
            bytes: repr.bytes.into_boxed_slice(),
            len: repr.len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BatmapParams;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn params(m: u64) -> ParamsHandle {
        Arc::new(BatmapParams::new(m, 0xABCD))
    }

    fn set(elements: &[u32]) -> BTreeSet<u32> {
        elements.iter().copied().collect()
    }

    #[test]
    fn membership_exact() {
        let p = params(10_000);
        let elements: Vec<u32> = (0..500u32).map(|i| i * 19 % 10_000).collect();
        let bm = Batmap::build(p, &elements).batmap;
        let s = set(&elements);
        for x in 0..10_000u32 {
            assert_eq!(bm.contains(x), s.contains(&x), "x={x}");
        }
    }

    #[test]
    fn elements_roundtrip() {
        let p = params(25_000);
        let elements: Vec<u32> = (0..1200u32).map(|i| (i * 13 + 5) % 25_000).collect();
        let bm = Batmap::build(p, &elements).batmap;
        let got = set(&bm.elements());
        assert_eq!(got, set(&elements));
    }

    #[test]
    fn empty_set() {
        let p = params(1_000);
        let bm = Batmap::build(p, &[]).batmap;
        assert!(bm.is_empty());
        assert_eq!(bm.elements(), Vec::<u32>::new());
        assert!(!bm.contains(0));
        assert_eq!(bm.width_bytes() as u64, 3 * bm.range());
    }

    #[test]
    fn intersect_same_size() {
        let p = params(50_000);
        let a: Vec<u32> = (0..2000).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..2000).map(|i| i * 3).collect();
        let expect = set(&a).intersection(&set(&b)).count() as u64;
        let ba = Batmap::build(p.clone(), &a).batmap;
        let bb = Batmap::build(p, &b).batmap;
        assert_eq!(ba.range(), bb.range());
        assert_eq!(ba.intersect_count(&bb), expect);
        assert_eq!(bb.intersect_count(&ba), expect);
    }

    #[test]
    fn intersect_different_sizes_folds() {
        let p = params(60_000);
        let small: Vec<u32> = (0..300).map(|i| i * 7).collect();
        let large: Vec<u32> = (0..9000).map(|i| i * 5).collect();
        let expect = set(&small).intersection(&set(&large)).count() as u64;
        let bs = Batmap::build(p.clone(), &small).batmap;
        let bl = Batmap::build(p, &large).batmap;
        assert!(bs.range() < bl.range());
        assert_eq!(bs.intersect_count(&bl), expect);
        assert_eq!(bl.intersect_count(&bs), expect);
    }

    #[test]
    fn intersect_with_empty_is_zero() {
        let p = params(5_000);
        let a = Batmap::build(p.clone(), &(0..100).collect::<Vec<_>>()).batmap;
        let e = Batmap::build(p, &[]).batmap;
        assert_eq!(a.intersect_count(&e), 0);
        assert_eq!(e.intersect_count(&a), 0);
        assert_eq!(e.intersect_count(&e), 0);
    }

    #[test]
    fn self_intersection_is_cardinality() {
        let p = params(30_000);
        let elements: Vec<u32> = (0..1234).map(|i| i * 11 % 30_000).collect();
        let bm = Batmap::build(p, &elements).batmap;
        assert_eq!(bm.intersect_count(&bm), set(&elements).len() as u64);
    }

    #[test]
    fn universe_mismatch_rejected() {
        let a = Batmap::build(params(1000), &[1, 2, 3]).batmap;
        let b = Batmap::build(Arc::new(BatmapParams::new(1000, 0xEEEE)), &[1, 2, 3]).batmap;
        assert!(a.try_intersect_count(&b).is_err());
    }

    #[test]
    fn width_matches_paper_formula() {
        // §IV-A: sets of 2500 elements in a 50k universe occupy
        // 3·2^13 bytes.
        let p = params(50_000);
        let elements: Vec<u32> = (0..2500).collect();
        let bm = Batmap::build(p, &elements).batmap;
        assert_eq!(bm.width_bytes(), 3 * (1 << 13));
    }

    #[test]
    fn serde_roundtrip_preserves_behaviour() {
        let p = params(20_000);
        let a = Batmap::build(
            p.clone(),
            &(0..700).map(|i| i * 13 % 20_000).collect::<Vec<_>>(),
        )
        .batmap;
        let b = Batmap::build(p, &(0..300).map(|i| i * 7 % 20_000).collect::<Vec<_>>()).batmap;
        let json = serde_json::to_string(&a).unwrap();
        let restored: Batmap = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.len(), a.len());
        assert_eq!(restored.as_bytes(), a.as_bytes());
        // A restored batmap interoperates with live ones from the same
        // universe (fingerprints survive the round trip).
        assert_eq!(restored.intersect_count(&b), a.intersect_count(&b));
    }

    #[test]
    fn serde_reads_payloads_predating_kernel_field() {
        // Universes serialized before the `kernel` field existed have
        // no "kernel" key; they must still load (defaulting to Auto).
        let p = params(5_000);
        let a = Batmap::build(p, &[1, 2, 3]).batmap;
        let json = serde_json::to_string(&a).unwrap();
        let old = json.replace("\"kernel\":\"auto\",", "");
        assert!(!old.contains("kernel"), "kernel field not stripped");
        let restored: Batmap = serde_json::from_str(&old).unwrap();
        assert_eq!(
            restored.params().kernel_backend(),
            crate::kernel::KernelBackend::Auto
        );
        assert_eq!(restored.intersect_count(&a), 3);
    }

    #[test]
    fn serde_rejects_corrupt_width() {
        let p = params(5_000);
        let a = Batmap::build(p, &[1, 2, 3]).batmap;
        let mut v = serde_json::to_value(&a).unwrap();
        v["r"] = serde_json::json!(12345); // not a power of two
        assert!(serde_json::from_value::<Batmap>(v).is_err());
    }

    #[test]
    fn footprint_counts_slots() {
        let p = params(50_000);
        let bm = Batmap::build(p, &(0..100).collect::<Vec<_>>()).batmap;
        assert_eq!(bm.heap_bytes(), bm.width_bytes());
    }
}
