//! Arena-backed set storage: one contiguous, word-aligned backing
//! store for all sets of a corpus — each in its own typed
//! representation — with zero-copy views and versioned snapshot
//! persistence.
//!
//! Every representation here is pure positional data — `3·r` one-byte
//! slots for a batmap, `⌈m/64⌉` words for an uncompressed bitmap,
//! `4·len` bytes for a sorted tidlist — so nothing about any of them
//! requires per-set heap allocations. [`BatmapArena`] packs every set's
//! payload bytes into a single `u64` backing buffer (each set's window
//! starts on a 64-byte boundary, the §III-B slice unit) plus an
//! offset/range/len/representation directory, and hands out borrowed
//! views: [`BatmapRef`] for batmap sets (three words on the stack,
//! intersecting, decoding, and sweeping exactly like an owned
//! [`Batmap`] because every hot path is generic over [`AsSlots`]), and
//! the typed [`SetView`] for corpora that mix representations (the
//! hybrid storage seam — see [`crate::repr`]).
//!
//! Two ways to build one:
//!
//! * [`ArenaBuilder`] — push existing sets (owned or views) one at a
//!   time; the arena copies their bytes. The convenience path
//!   ([`crate::BatmapCollection`] uses it).
//! * [`BatmapArena::with_ranges`] — reserve the full layout up front
//!   (ranges are deterministic from set sizes, so preprocessing knows
//!   them before building) and cuckoo-build **in place** through
//!   [`ArenaStage::set_slices`]. This is the mining pipeline's
//!   allocation-free bulk path: per-worker bump segments of the final
//!   buffer, no per-set boxes, no compaction copy.
//!
//! On top of the contiguous layout, [`BatmapArena::write_to`] /
//! [`BatmapArena::read_from`] persist a corpus as a versioned snapshot
//! with a checked header (magic, version, full universe parameters,
//! fingerprint, directory bounds, checksum), so a corpus can be built
//! once and served by later processes without rebuilding. Counts are
//! kernel-backend-independent, so a snapshot written on an AVX2 host is
//! served byte-identically by a SWAR-only one; the header records that
//! invariant explicitly and the loader enforces it.
//!
//! ## Backing stores and the two load paths
//!
//! An arena's payload lives behind an internal backing abstraction
//! with two variants:
//!
//! * **heap** — an owned `Box<[u64]>` (every built arena, and
//!   snapshots loaded through [`BatmapArena::read_from`]). The
//!   buffered load reads the whole payload and verifies the
//!   directory/payload checksum *eagerly*, so a loaded arena is known
//!   good before the first query.
//! * **mmap** — a read-only, page-faulted window of the snapshot file
//!   ([`BatmapArena::open_mmap_file`], 64-bit Unix only). Open cost is
//!   O(header + directory): the envelope, parameters, and every
//!   directory entry are validated eagerly, but the payload bytes are
//!   only touched when queries sweep them, so a cold multi-GiB corpus
//!   serves its first query in milliseconds. The payload checksum is
//!   deferred — [`BatmapArena::verify`] runs it on demand (and
//!   [`BatmapArena::verification_pending`] tells whether such a
//!   deferred check exists). Structural corruption a query could trip
//!   over (bad offsets, overlapping windows, implausible
//!   cardinalities) is still caught at open time; deferred
//!   verification only delays detection of *payload* bit-rot, which
//!   can change counts but never memory safety.
//!
//! Which path a load-aware opener takes is the [`SnapshotLoad`] knob
//! ([`crate::EngineOptions::load`](crate::EngineOptions#structfield.load),
//! `BATMAP_LOAD`, `--load`), threaded through
//! [`BatmapArena::read_from_file_with`], the `pairminer` corpus open,
//! and the server's corpus loading. Version-4 snapshots pad the
//! payload to a [`SET_ALIGN`] boundary within the envelope so mapped
//! set windows keep the same 64-byte alignment heap arenas enjoy.

use crate::batmap::AsSlots;
use crate::error::SnapshotError;
use crate::params::{BatmapParams, ParamsHandle, EMPTY_SLOT, TABLES};
use crate::repr::{
    bitmap_width_bytes, encode_bitmap_into, encode_tidlist_into, tidlist_width_bytes, BitmapRef,
    SetRepr, SetView, TidlistRef, REPR_COUNT,
};
use crate::{intersect, Batmap, BatmapError};
use hpcutil::MemoryFootprint;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::sync::Arc;

/// Every set's window starts on this byte boundary: the 64-byte slice
/// the §III-B kernel stages through shared memory, and a cache line on
/// every CPU we target. GPU-shift widths are multiples of 64, so the
/// mining pipeline wastes no padding at all.
pub const SET_ALIGN: usize = 64;

/// Magic bytes opening every arena snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"BATMAPAR";

/// Snapshot format version ([`BatmapArena::read_from`] refuses others).
/// Version 2 added the per-set representation tag to the directory
/// (24-byte entries became 32-byte entries); version 3 added a header
/// checksum to the envelope so bit-rot inside the params JSON is
/// caught as [`SnapshotError::Corrupted`] instead of silently changing
/// a parameter; version 4 zero-pads the envelope after the directory
/// so the payload starts on a [`SET_ALIGN`] boundary relative to the
/// envelope start — the property that lets a memory-mapped snapshot
/// hand out set windows with the same 64-byte alignment heap arenas
/// have. Older files are refused with a clear [`SnapshotError`], not
/// misparsed.
pub const SNAPSHOT_VERSION: u32 = 4;

/// How a snapshot file is brought into memory by the load-aware open
/// paths ([`BatmapArena::read_from_file_with`], the `pairminer` corpus
/// open, the server's corpus loading). See the module docs for the
/// trade-off; resolution rules mirror [`crate::KernelBackend`]
/// (explicit > `BATMAP_LOAD` > default, one-time warnings for
/// unavailable or unparseable requests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SnapshotLoad {
    /// Defer to `BATMAP_LOAD`, falling back to [`SnapshotLoad::Buffered`].
    #[default]
    Auto,
    /// Eager read: the whole payload is read and checksummed before the
    /// arena is handed out. Slow to open a cold multi-GiB corpus, but
    /// every loaded byte is known good.
    Buffered,
    /// Zero-copy map: headers and directories are validated eagerly,
    /// payload bytes are faulted in on first touch and the payload
    /// checksum is deferred to [`BatmapArena::verify`]. 64-bit Unix
    /// only; downgrades to [`SnapshotLoad::Buffered`] elsewhere with a
    /// one-time warning.
    Mmap,
}

impl SnapshotLoad {
    /// Parse a knob value (`auto`, `buffered`, `mmap`). `None` for
    /// anything else.
    pub fn from_name(name: &str) -> Option<SnapshotLoad> {
        match name.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(SnapshotLoad::Auto),
            "buffered" => Some(SnapshotLoad::Buffered),
            "mmap" => Some(SnapshotLoad::Mmap),
            _ => None,
        }
    }

    /// Canonical knob name.
    pub fn name(self) -> &'static str {
        match self {
            SnapshotLoad::Auto => "auto",
            SnapshotLoad::Buffered => "buffered",
            SnapshotLoad::Mmap => "mmap",
        }
    }

    /// Whether this load path exists on the current platform (the mmap
    /// backing is compiled only on 64-bit Unix).
    pub fn is_available(self) -> bool {
        match self {
            SnapshotLoad::Auto | SnapshotLoad::Buffered => true,
            #[cfg(all(unix, target_pointer_width = "64"))]
            SnapshotLoad::Mmap => true,
            #[cfg(not(all(unix, target_pointer_width = "64")))]
            SnapshotLoad::Mmap => false,
        }
    }

    /// Pure resolution of an override string (the `BATMAP_LOAD` value,
    /// already fetched): a valid, available request wins; everything
    /// else — no override, `auto`, an unavailable path, an unparseable
    /// value — resolves to [`SnapshotLoad::Buffered`], the verify-first
    /// default. Warnings for the degenerate cases are emitted once per
    /// process.
    pub fn resolve_override(var: Option<&str>) -> SnapshotLoad {
        match var.map(SnapshotLoad::from_name) {
            None | Some(Some(SnapshotLoad::Auto)) => SnapshotLoad::Buffered,
            Some(Some(requested)) if requested.is_available() => requested,
            Some(Some(requested)) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: BATMAP_LOAD={} is not available on this platform; \
                         using buffered",
                        requested.name()
                    );
                });
                SnapshotLoad::Buffered
            }
            Some(None) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: unrecognized BATMAP_LOAD value {:?} \
                         (expected auto|buffered|mmap); using buffered",
                        var.unwrap_or_default()
                    );
                });
                SnapshotLoad::Buffered
            }
        }
    }

    /// Resolve to a concrete, available load path. [`SnapshotLoad::Auto`]
    /// consults `BATMAP_LOAD` (once per process); an explicit but
    /// unavailable request downgrades to [`SnapshotLoad::Buffered`]
    /// with a one-time warning.
    pub fn resolve(self) -> SnapshotLoad {
        match self {
            SnapshotLoad::Auto => {
                static RESOLVED: std::sync::OnceLock<SnapshotLoad> = std::sync::OnceLock::new();
                *RESOLVED.get_or_init(|| SnapshotLoad::resolve_override(crate::options::load_env()))
            }
            concrete if concrete.is_available() => concrete,
            concrete => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: snapshot load path {} is not available on this platform; \
                         using buffered",
                        concrete.name()
                    );
                });
                SnapshotLoad::Buffered
            }
        }
    }
}

impl std::fmt::Display for SnapshotLoad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for SnapshotLoad {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.name())
    }
}

impl<'de> Deserialize<'de> for SnapshotLoad {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let name = String::deserialize(deserializer)?;
        SnapshotLoad::from_name(&name)
            .ok_or_else(|| serde::de::Error::custom(format!("unknown snapshot load path {name:?}")))
    }
}

/// Directory entry: where one set lives in the backing store and what
/// layout its bytes are in.
#[derive(Debug, Clone, Copy)]
struct SetDir {
    /// Byte offset of the set's first payload byte (multiple of
    /// [`SET_ALIGN`]).
    offset: usize,
    /// Per-table range `r` for batmap sets (power of two ≥ `r₀`; width
    /// is `3·r` bytes). Stored as `0` for the other representations,
    /// whose widths derive from `m` (bitmap) or `len` (tidlist).
    r: u64,
    /// Stored cardinality.
    len: usize,
    /// Storage representation of this set's payload bytes.
    repr: SetRepr,
}

/// Payload width in bytes of one directory entry.
fn dir_width(params: &BatmapParams, d: &SetDir) -> usize {
    match d.repr {
        SetRepr::Batmap => (TABLES as u64 * d.r) as usize,
        SetRepr::Bitmap => bitmap_width_bytes(params.m()),
        SetRepr::Tidlist => tidlist_width_bytes(d.len),
    }
}

/// Layout request for one set in [`BatmapArena::with_layout`]: the
/// representation plus whatever sizes it needs reserved up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetSpec {
    /// Representation the set's window will hold.
    pub repr: SetRepr,
    /// Batmap per-table range (ignored by the other representations).
    pub r: u64,
    /// Cardinality the window is sized for. A tidlist window is exactly
    /// `4·len` bytes, so for tidlists this must be the final stored
    /// cardinality; for the fixed-width representations it is advisory
    /// and [`ArenaStage::finish`] overwrites it.
    pub len: usize,
}

impl SetSpec {
    /// A batmap window of range `r`.
    pub fn batmap(r: u64) -> Self {
        SetSpec {
            repr: SetRepr::Batmap,
            r,
            len: 0,
        }
    }

    /// An uncompressed-bitmap window (width comes from the universe).
    pub fn bitmap(len: usize) -> Self {
        SetSpec {
            repr: SetRepr::Bitmap,
            r: 0,
            len,
        }
    }

    /// A tidlist window of exactly `len` elements.
    pub fn tidlist(len: usize) -> Self {
        SetSpec {
            repr: SetRepr::Tidlist,
            r: 0,
            len,
        }
    }

    /// Payload width in bytes this spec reserves.
    pub fn width_bytes(&self, params: &BatmapParams) -> usize {
        match self.repr {
            SetRepr::Batmap => (TABLES as u64 * self.r) as usize,
            SetRepr::Bitmap => bitmap_width_bytes(params.m()),
            SetRepr::Tidlist => tidlist_width_bytes(self.len),
        }
    }
}

/// All slot bytes of a corpus in one contiguous, word-aligned buffer,
/// plus the offset/range/len directory. See the module docs.
#[derive(Debug, Clone)]
pub struct BatmapArena {
    params: ParamsHandle,
    /// Backing store; viewed as bytes.
    backing: Backing,
    dir: Box<[SetDir]>,
    /// Directory/payload checksum recorded in the snapshot header but
    /// not yet checked against the bytes (mmap loads defer it until
    /// [`BatmapArena::verify`]). `None` for arenas built in this
    /// process or loaded through the eager buffered path.
    pending_checksum: Option<u64>,
}

/// Where an arena's payload bytes live (module docs, "Backing stores").
#[derive(Debug, Clone)]
enum Backing {
    /// Owned words (`u64` only for alignment; always viewed as bytes).
    Heap(Box<[u64]>),
    /// A window of a read-only mapped snapshot file. The snapshot
    /// format 64-byte-aligns the payload within the envelope and the
    /// mapping base is page-aligned, so windows keep [`SET_ALIGN`]
    /// alignment.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mmap {
        map: Arc<crate::mmap::MmapFile>,
        /// Payload start within the mapping.
        offset: usize,
        /// Payload length in bytes (a multiple of 8).
        len: usize,
    },
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            Backing::Heap(words) => words_as_bytes(words),
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mmap { map, offset, len } => &map.bytes()[*offset..*offset + *len],
        }
    }

    /// Mutable byte view — only the in-process construction paths use
    /// it, and those always build [`Backing::Heap`].
    fn bytes_mut(&mut self) -> &mut [u8] {
        match self {
            Backing::Heap(words) => words_as_bytes_mut(words),
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mmap { .. } => unreachable!("mmap-backed arenas are never mutated"),
        }
    }

    /// Heap bytes owned by this backing (0 for a mapped payload — the
    /// pages belong to the page cache, which is the point).
    fn heap_bytes(&self) -> usize {
        match self {
            Backing::Heap(words) => words.len() * 8,
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mmap { .. } => 0,
        }
    }
}

/// A borrowed, zero-copy view of one set inside a [`BatmapArena`].
///
/// Three words on the stack; `Copy`. Interoperates with owned
/// [`Batmap`]s from the same universe through every generic
/// entry point (the [`AsSlots`] seam).
#[derive(Debug, Clone, Copy)]
pub struct BatmapRef<'a> {
    params: &'a ParamsHandle,
    r: u64,
    bytes: &'a [u8],
    len: usize,
}

/// View a word buffer as bytes (sound: `u8` has no alignment or
/// validity requirements, and the length covers exactly the buffer).
fn words_as_bytes(words: &[u64]) -> &[u8] {
    // SAFETY: `words` is a live, initialized allocation of
    // `words.len() * 8` bytes; any byte pattern is a valid `u8`.
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8) }
}

/// Mutable byte view of a word buffer (same soundness argument).
fn words_as_bytes_mut(words: &mut [u64]) -> &mut [u8] {
    // SAFETY: as in `words_as_bytes`, plus exclusive access via `&mut`.
    unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8) }
}

/// Number of backing words for `total_bytes` of payload.
fn words_for(total_bytes: usize) -> usize {
    total_bytes.div_ceil(8)
}

impl BatmapArena {
    /// The shared universe parameters.
    pub fn params(&self) -> &ParamsHandle {
        &self.params
    }

    /// Number of sets stored.
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    /// True when the arena holds no sets.
    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }

    /// Zero-copy batmap view of set `i` (the legacy all-batmap entry
    /// point; hybrid consumers use [`BatmapArena::payload`]).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds or set `i` is not stored as a
    /// batmap.
    pub fn get(&self, i: usize) -> BatmapRef<'_> {
        let d = self.dir[i];
        assert_eq!(
            d.repr,
            SetRepr::Batmap,
            "set {i} is stored as a {}; use BatmapArena::payload for hybrid arenas",
            d.repr
        );
        let width = (TABLES as u64 * d.r) as usize;
        BatmapRef {
            params: &self.params,
            r: d.r,
            bytes: &self.backing.bytes()[d.offset..d.offset + width],
            len: d.len,
        }
    }

    /// Storage representation of set `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn repr(&self, i: usize) -> SetRepr {
        self.dir[i].repr
    }

    /// True when every set is stored as a batmap (the legacy corpus
    /// shape; lets executors keep the all-batmap fast path).
    pub fn is_all_batmap(&self) -> bool {
        self.dir.iter().all(|d| d.repr == SetRepr::Batmap)
    }

    /// How many sets each representation holds, indexed by
    /// [`SetRepr::tag`] (the chosen-representation histogram the perf
    /// scenarios log).
    pub fn repr_histogram(&self) -> [usize; REPR_COUNT] {
        let mut h = [0usize; REPR_COUNT];
        for d in self.dir.iter() {
            h[d.repr.tag() as usize] += 1;
        }
        h
    }

    /// Zero-copy typed view of set `i`, whatever its representation
    /// (the hybrid storage seam).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn payload(&self, i: usize) -> SetView<'_> {
        let d = self.dir[i];
        let bytes = &self.backing.bytes()[d.offset..d.offset + dir_width(&self.params, &d)];
        match d.repr {
            SetRepr::Batmap => SetView::Batmap(BatmapRef {
                params: &self.params,
                r: d.r,
                bytes,
                len: d.len,
            }),
            SetRepr::Bitmap => SetView::Bitmap(BitmapRef {
                params: &self.params,
                bytes,
                len: d.len,
            }),
            SetRepr::Tidlist => SetView::Tidlist(TidlistRef {
                params: &self.params,
                bytes,
            }),
        }
    }

    /// Batmap views of the sets in `range`, in order (the all-batmap
    /// tile executors materialize one such column block per tile).
    ///
    /// # Panics
    /// Panics if any set in `range` is not stored as a batmap.
    pub fn views(&self, range: std::ops::Range<usize>) -> Vec<BatmapRef<'_>> {
        range.map(|i| self.get(i)).collect()
    }

    /// Typed views of the sets in `range`, in order (the hybrid tile
    /// executors' column block).
    pub fn payload_views(&self, range: std::ops::Range<usize>) -> Vec<SetView<'_>> {
        range.map(|i| self.payload(i)).collect()
    }

    /// Iterate over all batmap views in index order.
    ///
    /// # Panics
    /// Panics (lazily, per item) if a set is not stored as a batmap.
    pub fn iter(&self) -> impl Iterator<Item = BatmapRef<'_>> {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Total payload bytes across all sets (directory widths; excludes
    /// alignment padding).
    pub fn slot_bytes_total(&self) -> usize {
        self.dir.iter().map(|d| dir_width(&self.params, d)).sum()
    }

    /// Bytes of the backing store (slot bytes plus alignment padding).
    pub fn backing_bytes(&self) -> usize {
        self.backing.bytes().len()
    }

    /// True when a deferred payload checksum has not been run yet (the
    /// mmap load path; see [`SnapshotLoad::Mmap`]). [`BatmapArena::verify`]
    /// performs the check.
    pub fn verification_pending(&self) -> bool {
        self.pending_checksum.is_some()
    }

    /// Run the deferred directory/payload checksum of a lazily-loaded
    /// snapshot (a no-op `Ok` for eagerly-verified arenas). Touches —
    /// and therefore faults in — every payload byte, so on a mapped
    /// corpus this costs one sequential sweep of the file; run it from
    /// a background task when serving cold corpora. The check is
    /// stateless and can be repeated (e.g. periodically, to catch
    /// on-disk bit-rot behind a long-lived mapping).
    pub fn verify(&self) -> Result<(), SnapshotError> {
        if let Some(expected) = self.pending_checksum {
            let dir_bytes = encode_dir(&self.dir);
            if fnv1a(&dir_bytes, fnv1a(self.backing.bytes(), FNV_OFFSET)) != expected {
                return Err(SnapshotError::Corrupted(
                    "directory/payload checksum mismatch".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Reserve the full arena layout for sets with the given per-table
    /// ranges, for in-place construction. Alignment-gap bytes are
    /// initialized to [`EMPTY_SLOT`] (so snapshots are deterministic);
    /// the set windows themselves start **zeroed, not empty** — `0x00`
    /// decodes as a live key-0 slot, so every window must be written
    /// before the arena is used: fill each set through
    /// [`ArenaStage::set_slices`] (`BatmapBuilder::finish_into`
    /// overwrites its window entirely) and seal with
    /// [`ArenaStage::finish`].
    ///
    /// # Panics
    /// Panics if any range is not a power of two ≥ the parameters' `r₀`.
    pub fn with_ranges(params: ParamsHandle, ranges: &[u64]) -> ArenaStage {
        let specs: Vec<SetSpec> = ranges.iter().map(|&r| SetSpec::batmap(r)).collect();
        Self::with_layout(params, &specs)
    }

    /// Reserve the full arena layout for sets with the given per-set
    /// representations and sizes, for in-place construction — the
    /// hybrid generalization of [`BatmapArena::with_ranges`]. The same
    /// window contract applies: alignment-gap bytes are initialized (to
    /// [`EMPTY_SLOT`], for snapshot determinism), the set windows
    /// themselves must be fully overwritten before the arena is used
    /// (`BatmapBuilder::finish_into` and the
    /// [`crate::repr::encode_bitmap_into`] /
    /// [`crate::repr::encode_tidlist_into`] encoders all do).
    ///
    /// # Panics
    /// Panics if any batmap spec's range is not a power of two ≥ the
    /// parameters' `r₀`.
    pub fn with_layout(params: ParamsHandle, specs: &[SetSpec]) -> ArenaStage {
        let mut dir = Vec::with_capacity(specs.len());
        let mut offset = 0usize;
        for spec in specs {
            if spec.repr == SetRepr::Batmap {
                assert!(
                    spec.r.is_power_of_two() && spec.r >= params.r0(),
                    "range {} invalid for this universe (r₀ = {})",
                    spec.r,
                    params.r0()
                );
            }
            let d = SetDir {
                offset,
                r: if spec.repr == SetRepr::Batmap {
                    spec.r
                } else {
                    0
                },
                len: spec.len,
                repr: spec.repr,
            };
            offset += dir_width(&params, &d).next_multiple_of(SET_ALIGN);
            dir.push(d);
        }
        let mut words = vec![0u64; words_for(offset)].into_boxed_slice();
        // Only the alignment gaps are initialized here (for snapshot
        // determinism): every set window must be — and in the build
        // paths is — overwritten wholesale, so pre-filling them would be
        // a redundant memset of the whole corpus. With the GPU shift,
        // batmap widths are multiples of SET_ALIGN; gaps appear only
        // after bitmap/tidlist windows.
        let bytes = words_as_bytes_mut(&mut words);
        let mut gap_start = 0usize;
        for d in &dir {
            bytes[gap_start..d.offset].fill(EMPTY_SLOT);
            gap_start = d.offset + dir_width(&params, d);
        }
        bytes[gap_start..].fill(EMPTY_SLOT);
        ArenaStage {
            arena: BatmapArena {
                params,
                backing: Backing::Heap(words),
                dir: dir.into_boxed_slice(),
                pending_checksum: None,
            },
        }
    }

    /// Persist this arena as a versioned snapshot.
    ///
    /// Layout: [`SNAPSHOT_MAGIC`], version (`u32` LE), header length
    /// (`u32` LE), header checksum (`u64` LE, FNV-1a over the header
    /// bytes), JSON header (full [`BatmapParams`], fingerprint, set
    /// count, payload size, checksum, and the kernel-independence
    /// marker), the directory (four `u64` LE per set: offset, range,
    /// cardinality, representation tag), zero padding up to the next
    /// [`SET_ALIGN`] boundary of the envelope (v4; excluded from the
    /// checksum, deterministic on read), then the raw backing bytes.
    /// [`BatmapArena::read_from`] checks every field before accepting
    /// the payload.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let payload = self.backing.bytes();
        let dir_bytes = encode_dir(&self.dir);
        let header = SnapshotHeader {
            params: (*self.params).clone(),
            fingerprint: self.params.fingerprint(),
            n_sets: self.dir.len() as u64,
            payload_bytes: payload.len() as u64,
            checksum: fnv1a(&dir_bytes, fnv1a(payload, FNV_OFFSET)),
            counts_kernel_independent: true,
        };
        let header_json = serde_json::to_string(&header)
            .map_err(|e| std::io::Error::other(format!("snapshot header: {e}")))?;
        hpcutil::fault_point!("snapshot.write.header", |m: String| {
            Err(std::io::Error::other(m))
        });
        w.write_all(&SNAPSHOT_MAGIC)?;
        w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        w.write_all(&(header_json.len() as u32).to_le_bytes())?;
        // The directory and payload have always been checksummed; the
        // header JSON needs its own (v3) or a flipped digit inside a
        // parameter would load as a plausible but different corpus.
        w.write_all(&snapshot_checksum(header_json.as_bytes()).to_le_bytes())?;
        w.write_all(header_json.as_bytes())?;
        w.write_all(&dir_bytes)?;
        let pad = payload_pad(header_json.len(), dir_bytes.len());
        w.write_all(&[0u8; SET_ALIGN][..pad])?;
        hpcutil::fault_point!("snapshot.write.payload", |m: String| {
            Err(std::io::Error::other(m))
        });
        w.write_all(payload)?;
        Ok(())
    }

    /// Persist this arena to `path` crash-safely: the snapshot is
    /// written to a sibling temporary file, flushed and fsynced, then
    /// atomically renamed over `path` (and the parent directory synced
    /// on Unix). A crash at any point — including mid-rename — leaves
    /// either the complete old snapshot or the complete new one, never
    /// a torn mix. Fault sites `snapshot.write.{header,payload,rename}`
    /// cover the three failure windows.
    pub fn write_to_file<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        atomic_write(path.as_ref(), |w| self.write_to(w))
    }

    /// Load an arena from a snapshot file written by
    /// [`BatmapArena::write_to_file`] (buffered
    /// [`BatmapArena::read_from`]).
    pub fn read_from_file<P: AsRef<std::path::Path>>(path: P) -> Result<Self, SnapshotError> {
        let file = std::fs::File::open(path)?;
        Self::read_from(&mut std::io::BufReader::new(file))
    }

    /// Load an arena from a snapshot written by [`BatmapArena::write_to`].
    ///
    /// Every header field is checked before the payload is trusted:
    /// magic and version, parameter self-consistency (the stored
    /// fingerprint must match one recomputed from the stored
    /// parameters — a corrupted or spliced header fails here), the
    /// kernel-independence marker, directory sanity (ranges powers of
    /// two ≥ `r₀`, aligned non-overlapping monotone offsets, windows in
    /// bounds, plausible cardinalities), and the payload checksum.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, SnapshotError> {
        let bad = |what: &str| SnapshotError::Format(what.to_string());
        let mut magic = [0u8; 8];
        read_section(r, &mut magic, "magic")?;
        if magic != SNAPSHOT_MAGIC {
            return Err(bad("not a batmap arena snapshot (bad magic)"));
        }
        let mut u32buf = [0u8; 4];
        read_section(r, &mut u32buf, "version")?;
        let version = u32::from_le_bytes(u32buf);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Format(format!(
                "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
            )));
        }
        read_section(r, &mut u32buf, "header length")?;
        let header_len = u32::from_le_bytes(u32buf) as usize;
        if header_len > 1 << 20 {
            return Err(bad("implausible header length"));
        }
        let mut u64buf = [0u8; 8];
        read_section(r, &mut u64buf, "header checksum")?;
        let header_checksum = u64::from_le_bytes(u64buf);
        let mut header_bytes = vec![0u8; header_len];
        read_section(r, &mut header_bytes, "header")?;
        let header = parse_snapshot_header(&header_bytes, header_checksum)?;
        let params: ParamsHandle = Arc::new(header.params);
        let n_sets = usize::try_from(header.n_sets).map_err(|_| bad("set count overflow"))?;
        let payload_bytes =
            usize::try_from(header.payload_bytes).map_err(|_| bad("payload size overflow"))?;
        if payload_bytes % 8 != 0 {
            return Err(bad("payload not a whole number of words"));
        }
        // Size fields come from a header that is parse- and
        // fingerprint-checked but not yet checksummed against the data,
        // so never allocate what *it* claims up front: the directory
        // read is `take`-bounded and the payload buffer grows
        // geometrically with the bytes the stream actually delivers, so
        // a lying or corrupted header surfaces as a truncation error
        // instead of a multi-terabyte allocation request (which would
        // abort the process rather than return a `SnapshotError`).
        let dir_len = n_sets
            .checked_mul(32)
            .ok_or_else(|| bad("directory overflow"))?;
        let mut dir_bytes = Vec::new();
        r.by_ref()
            .take(dir_len as u64)
            .read_to_end(&mut dir_bytes)?;
        if dir_bytes.len() != dir_len {
            return Err(SnapshotError::Truncated(format!(
                "directory ends after {} of {} bytes",
                dir_bytes.len(),
                dir_len
            )));
        }
        let pad = payload_pad(header_len, dir_len);
        let mut padbuf = [0u8; SET_ALIGN];
        read_section(r, &mut padbuf[..pad], "alignment padding")?;
        check_pad_zero(&padbuf[..pad])?;
        // Single pass: read straight into the word buffer's byte view —
        // no intermediate Vec<u8> plus copy. Growth is geometric and
        // capped at the claimed size, so a premature EOF costs at most
        // 2× the delivered bytes, never the claimed size.
        let mut words: Vec<u64> = Vec::new();
        let mut filled = 0usize;
        while filled < payload_bytes {
            if filled == words.len() * 8 {
                let grown = (words.len() * 16).max(64 * 1024).min(payload_bytes);
                words.resize(words_for(grown), 0);
            }
            match r.read(&mut words_as_bytes_mut(&mut words)[filled..]) {
                Ok(0) => {
                    return Err(SnapshotError::Truncated(format!(
                        "payload ends after {filled} of {payload_bytes} bytes"
                    )));
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(SnapshotError::Io(e)),
            }
        }
        let words = words.into_boxed_slice();
        if fnv1a(&dir_bytes, fnv1a(words_as_bytes(&words), FNV_OFFSET)) != header.checksum {
            return Err(SnapshotError::Corrupted(
                "directory/payload checksum mismatch".to_string(),
            ));
        }
        let dir = parse_dir(&params, &dir_bytes, payload_bytes)?;
        Ok(BatmapArena {
            params,
            backing: Backing::Heap(words),
            dir,
            pending_checksum: None,
        })
    }

    /// Load an arena from a snapshot file, choosing the read path with
    /// an explicit [`SnapshotLoad`] knob ([`SnapshotLoad::Auto`]
    /// consults `BATMAP_LOAD`). The engine and server thread
    /// [`crate::EngineOptions::load`](crate::EngineOptions#structfield.load)
    /// through here.
    pub fn read_from_file_with<P: AsRef<std::path::Path>>(
        path: P,
        load: SnapshotLoad,
    ) -> Result<Self, SnapshotError> {
        match load.resolve() {
            #[cfg(all(unix, target_pointer_width = "64"))]
            SnapshotLoad::Mmap => Self::open_mmap_file(path),
            _ => Self::read_from_file(path),
        }
    }

    /// Map a snapshot file read-only and serve the payload zero-copy
    /// (the [`SnapshotLoad::Mmap`] path; 64-bit Unix only). Envelope,
    /// header, and directory are validated exactly as in
    /// [`BatmapArena::read_from`]; the payload checksum is deferred to
    /// [`BatmapArena::verify`] so a cold multi-GiB corpus opens in
    /// O(header + directory) time.
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub fn open_mmap_file<P: AsRef<std::path::Path>>(path: P) -> Result<Self, SnapshotError> {
        let map = Arc::new(crate::mmap::MmapFile::open(path.as_ref())?);
        let (arena, _end) = Self::from_mapped(map, 0)?;
        Ok(arena)
    }

    /// Open the arena snapshot starting at byte `at` of `map` without
    /// copying the payload; returns the arena and the offset one past
    /// its envelope (so wrappers embedding an arena snapshot — the
    /// `pairminer` corpus format — can keep parsing after it). `at`
    /// must be a multiple of [`SET_ALIGN`] or the mapped payload would
    /// lose the alignment the format guarantees; embedders pad to
    /// ensure this, and a misaligned start is rejected as a format
    /// error.
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub fn from_mapped(
        map: Arc<crate::mmap::MmapFile>,
        at: usize,
    ) -> Result<(Self, usize), SnapshotError> {
        let bad = |what: &str| SnapshotError::Format(what.to_string());
        if !at.is_multiple_of(SET_ALIGN) {
            return Err(bad("mapped arena envelope must start 64-byte aligned"));
        }
        let bytes = map.bytes();
        let magic = mapped_section(bytes, at, 8, "magic")?;
        if magic != SNAPSHOT_MAGIC {
            return Err(bad("not a batmap arena snapshot (bad magic)"));
        }
        let version = u32::from_le_bytes(
            mapped_section(bytes, at + 8, 4, "version")?
                .try_into()
                .unwrap(),
        );
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Format(format!(
                "unsupported snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
            )));
        }
        let header_len = u32::from_le_bytes(
            mapped_section(bytes, at + 12, 4, "header length")?
                .try_into()
                .unwrap(),
        ) as usize;
        if header_len > 1 << 20 {
            return Err(bad("implausible header length"));
        }
        let header_checksum = u64::from_le_bytes(
            mapped_section(bytes, at + 16, 8, "header checksum")?
                .try_into()
                .unwrap(),
        );
        let header_bytes = mapped_section(bytes, at + 24, header_len, "header")?;
        let header = parse_snapshot_header(header_bytes, header_checksum)?;
        let params: ParamsHandle = Arc::new(header.params);
        let n_sets = usize::try_from(header.n_sets).map_err(|_| bad("set count overflow"))?;
        let payload_bytes =
            usize::try_from(header.payload_bytes).map_err(|_| bad("payload size overflow"))?;
        if payload_bytes % 8 != 0 {
            return Err(bad("payload not a whole number of words"));
        }
        let dir_len = n_sets
            .checked_mul(32)
            .ok_or_else(|| bad("directory overflow"))?;
        let dir_bytes = mapped_section(bytes, at + 24 + header_len, dir_len, "directory")?;
        let pad = payload_pad(header_len, dir_len);
        check_pad_zero(mapped_section(
            bytes,
            at + 24 + header_len + dir_len,
            pad,
            "alignment padding",
        )?)?;
        let payload_at = at + 24 + header_len + dir_len + pad;
        let payload = mapped_section(bytes, payload_at, payload_bytes, "payload")?;
        debug_assert_eq!(payload.as_ptr() as usize % SET_ALIGN % 8, 0);
        let dir = parse_dir(&params, dir_bytes, payload_bytes)?;
        Ok((
            BatmapArena {
                params,
                backing: Backing::Mmap {
                    map: map.clone(),
                    offset: payload_at,
                    len: payload_bytes,
                },
                dir,
                // The payload was deliberately not touched: record the
                // header's claim for a later `verify()`.
                pending_checksum: Some(header.checksum),
            },
            payload_at + payload_bytes,
        ))
    }
}

/// Encode the directory as it appears in the snapshot envelope (four
/// `u64` LE per set). Shared by [`BatmapArena::write_to`] and the
/// deferred [`BatmapArena::verify`], which must reproduce the written
/// bytes exactly to recompute the checksum.
fn encode_dir(dir: &[SetDir]) -> Vec<u8> {
    let mut dir_bytes = Vec::with_capacity(dir.len() * 32);
    for d in dir {
        dir_bytes.extend_from_slice(&(d.offset as u64).to_le_bytes());
        dir_bytes.extend_from_slice(&d.r.to_le_bytes());
        dir_bytes.extend_from_slice(&(d.len as u64).to_le_bytes());
        dir_bytes.extend_from_slice(&d.repr.tag().to_le_bytes());
    }
    dir_bytes
}

/// Bytes of zero padding between the directory and the payload: the
/// distance from the end of the directory to the next [`SET_ALIGN`]
/// boundary of the envelope (v4). Deterministic from the two lengths,
/// so readers skip it without any stored size; excluded from the
/// checksum (it is structural, not data).
fn payload_pad(header_len: usize, dir_len: usize) -> usize {
    let pos = 24 + header_len + dir_len;
    pos.next_multiple_of(SET_ALIGN) - pos
}

/// Alignment padding is written as zeros and sits outside both
/// checksums, so the readers enforce it directly — every byte of a
/// snapshot is validated by exactly one mechanism, and a bit-flip in
/// the pad cannot parse (shared by the buffered and mapped readers,
/// and by the corpus envelope in `pairminer`).
pub fn check_pad_zero(pad: &[u8]) -> Result<(), SnapshotError> {
    if pad.iter().any(|&b| b != 0) {
        return Err(SnapshotError::Corrupted(
            "alignment padding is not zeroed".to_string(),
        ));
    }
    Ok(())
}

/// Checksum-check and parse the JSON snapshot header, enforcing the
/// self-consistency invariants every load path relies on (shared by
/// the buffered and mapped readers).
fn parse_snapshot_header(
    header_bytes: &[u8],
    header_checksum: u64,
) -> Result<SnapshotHeader, SnapshotError> {
    let bad = |what: &str| SnapshotError::Format(what.to_string());
    if snapshot_checksum(header_bytes) != header_checksum {
        return Err(SnapshotError::Corrupted(
            "arena header checksum mismatch".to_string(),
        ));
    }
    let header_json =
        std::str::from_utf8(header_bytes).map_err(|_| bad("header is not valid UTF-8"))?;
    let header: SnapshotHeader = serde_json::from_str(header_json)
        .map_err(|e| SnapshotError::Format(format!("header does not parse: {e}")))?;
    if !header.counts_kernel_independent {
        // The invariant every reader relies on: any match-count
        // backend may serve this corpus. A writer that ever breaks
        // it must clear the flag, and we must refuse the file.
        return Err(bad("snapshot disclaims kernel-independent counts"));
    }
    if header.fingerprint != header.params.fingerprint() {
        return Err(bad(
            "header fingerprint does not match its own parameters (corrupted header)",
        ));
    }
    Ok(header)
}

/// Validate and decode the snapshot directory against `payload_bytes`
/// (shared by the buffered and mapped readers): known representation
/// tags, ranges powers of two ≥ `r₀`, plausible cardinalities, aligned
/// non-overlapping monotone offsets, windows in bounds. This is the
/// structural check that makes even an *unverified* mapped arena
/// memory-safe to query — every window a view can hand out lies inside
/// the payload.
fn parse_dir(
    params: &ParamsHandle,
    dir_bytes: &[u8],
    payload_bytes: usize,
) -> Result<Box<[SetDir]>, SnapshotError> {
    let bad = |what: &str| SnapshotError::Format(what.to_string());
    let mut dir = Vec::with_capacity(dir_bytes.len() / 32);
    let mut next_free = 0usize;
    for entry in dir_bytes.chunks_exact(32) {
        let offset = u64::from_le_bytes(entry[0..8].try_into().unwrap());
        let r_set = u64::from_le_bytes(entry[8..16].try_into().unwrap());
        let len = u64::from_le_bytes(entry[16..24].try_into().unwrap());
        let tag = u64::from_le_bytes(entry[24..32].try_into().unwrap());
        let offset = usize::try_from(offset).map_err(|_| bad("offset overflow"))?;
        let repr = SetRepr::from_tag(tag)
            .ok_or_else(|| SnapshotError::Format(format!("unknown representation tag {tag}")))?;
        let width = match repr {
            SetRepr::Batmap => {
                if !r_set.is_power_of_two() || r_set < params.r0() {
                    return Err(bad("directory range not a power of two ≥ r₀"));
                }
                // Each element occupies 2 of the 3·r slots.
                if len > (3 * r_set) / 2 {
                    return Err(bad("stored cardinality exceeds slot capacity"));
                }
                (TABLES as u64 * r_set) as usize
            }
            SetRepr::Bitmap => {
                if r_set != 0 {
                    return Err(bad("bitmap entry carries a batmap range"));
                }
                if len > params.m() {
                    return Err(bad("stored cardinality exceeds the universe"));
                }
                bitmap_width_bytes(params.m())
            }
            SetRepr::Tidlist => {
                if r_set != 0 {
                    return Err(bad("tidlist entry carries a batmap range"));
                }
                if len > params.m() {
                    return Err(bad("stored cardinality exceeds the universe"));
                }
                usize::try_from(len)
                    .ok()
                    .and_then(|l| l.checked_mul(4))
                    .ok_or_else(|| bad("tidlist width overflow"))?
            }
        };
        if offset % SET_ALIGN != 0 || offset < next_free {
            return Err(bad("directory offsets unaligned or overlapping"));
        }
        if offset
            .checked_add(width)
            .is_none_or(|end| end > payload_bytes)
        {
            return Err(bad("set window out of payload bounds"));
        }
        next_free = offset + width;
        dir.push(SetDir {
            offset,
            r: r_set,
            len: len as usize,
            repr,
        });
    }
    Ok(dir.into_boxed_slice())
}

/// Bounds-checked window of a mapped snapshot, with the same
/// truncation classification [`read_section`] gives streams.
#[cfg(all(unix, target_pointer_width = "64"))]
fn mapped_section<'a>(
    bytes: &'a [u8],
    at: usize,
    len: usize,
    section: &str,
) -> Result<&'a [u8], SnapshotError> {
    at.checked_add(len)
        .and_then(|end| bytes.get(at..end))
        .ok_or_else(|| {
            SnapshotError::Truncated(format!("{section} cut short ({len} bytes expected)"))
        })
}

impl MemoryFootprint for BatmapArena {
    fn heap_bytes(&self) -> usize {
        // A mapped payload contributes 0: its pages are the page
        // cache's, reclaimable under pressure — the zero-copy story the
        // footprint reports should reflect.
        self.backing.heap_bytes() + self.dir.len() * std::mem::size_of::<SetDir>()
    }
}

/// A [`BatmapArena`] whose layout is fixed but whose slots are still
/// being filled in place (see [`BatmapArena::with_ranges`]).
#[derive(Debug)]
pub struct ArenaStage {
    arena: BatmapArena,
}

impl ArenaStage {
    /// The shared universe parameters.
    pub fn params(&self) -> &ParamsHandle {
        &self.arena.params
    }

    /// Disjoint mutable slot windows, one per set in directory order.
    /// Hand contiguous runs of these to worker threads: each run is one
    /// worker's bump segment of the final buffer.
    pub fn set_slices(&mut self) -> Vec<&mut [u8]> {
        let params = self.arena.params.clone();
        let dir = &self.arena.dir;
        let mut rest = self.arena.backing.bytes_mut();
        let mut consumed = 0usize;
        let mut out = Vec::with_capacity(dir.len());
        for d in dir.iter() {
            let width = dir_width(&params, d);
            let (_, tail) = std::mem::take(&mut rest).split_at_mut(d.offset - consumed);
            let (set, tail) = tail.split_at_mut(width);
            out.push(set);
            consumed = d.offset + width;
            rest = tail;
        }
        out
    }

    /// Record the stored cardinalities (in directory order) and seal the
    /// arena.
    ///
    /// # Panics
    /// Panics if `lens.len()` differs from the set count, or if a
    /// tidlist set's length differs from the one its window was laid
    /// out for (a tidlist window is exactly `4·len` bytes, so the
    /// cardinality is part of the layout, not a late-bound fact).
    pub fn finish(mut self, lens: &[usize]) -> BatmapArena {
        assert_eq!(lens.len(), self.arena.dir.len(), "one length per set");
        for (d, &len) in self.arena.dir.iter_mut().zip(lens) {
            if d.repr == SetRepr::Tidlist {
                assert_eq!(d.len, len, "tidlist cardinality fixed at layout time");
            }
            d.len = len;
        }
        self.arena
    }
}

/// Incremental arena construction by copying existing sets (owned
/// [`Batmap`]s or views from another arena).
#[derive(Debug)]
pub struct ArenaBuilder {
    params: ParamsHandle,
    bytes: Vec<u8>,
    dir: Vec<SetDir>,
}

impl ArenaBuilder {
    /// Start an empty arena over `params`.
    pub fn new(params: ParamsHandle) -> Self {
        ArenaBuilder {
            params,
            bytes: Vec::new(),
            dir: Vec::new(),
        }
    }

    /// Append a copy of `set`'s slot bytes; returns its index.
    ///
    /// # Panics
    /// Panics if `set` comes from a different universe.
    pub fn push(&mut self, set: &impl AsSlots) -> usize {
        assert_eq!(
            set.params().fingerprint(),
            self.params.fingerprint(),
            "set from a different universe"
        );
        let offset = self.bytes.len().next_multiple_of(SET_ALIGN);
        self.bytes.resize(offset, EMPTY_SLOT);
        self.bytes.extend_from_slice(set.slot_bytes());
        self.dir.push(SetDir {
            offset,
            r: set.range(),
            len: set.len(),
            repr: SetRepr::Batmap,
        });
        self.dir.len() - 1
    }

    /// Append a set built from `elements` (any order, duplicates
    /// tolerated) in the given representation; returns its index. This
    /// is the forced-representation path the hybrid tests and the
    /// `intersect_mixed` scenario use to assemble arbitrary mixed
    /// corpora.
    ///
    /// # Panics
    /// Panics if an element is outside the universe, or if `repr` is
    /// [`SetRepr::Batmap`] and the cuckoo build does not place every
    /// element (raise `max_loop` or the seed in that unlikely case).
    pub fn push_elements(&mut self, elements: &[u32], repr: SetRepr) -> usize {
        let mut sorted = elements.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(&max) = sorted.last() {
            assert!(
                (max as u64) < self.params.m(),
                "element {max} outside universe of size {}",
                self.params.m()
            );
        }
        if repr == SetRepr::Batmap {
            let outcome = Batmap::build_sorted(self.params.clone(), &sorted);
            assert!(
                outcome.failed.is_empty(),
                "batmap build failed to place {} elements",
                outcome.failed.len()
            );
            return self.push(&outcome.batmap);
        }
        let offset = self.bytes.len().next_multiple_of(SET_ALIGN);
        self.bytes.resize(offset, EMPTY_SLOT);
        let width = match repr {
            SetRepr::Bitmap => bitmap_width_bytes(self.params.m()),
            SetRepr::Tidlist => tidlist_width_bytes(sorted.len()),
            SetRepr::Batmap => unreachable!(),
        };
        self.bytes.resize(offset + width, 0);
        let window = &mut self.bytes[offset..];
        match repr {
            SetRepr::Bitmap => encode_bitmap_into(&sorted, window),
            SetRepr::Tidlist => encode_tidlist_into(&sorted, window),
            SetRepr::Batmap => unreachable!(),
        }
        self.dir.push(SetDir {
            offset,
            r: 0,
            len: sorted.len(),
            repr,
        });
        self.dir.len() - 1
    }

    /// Number of sets pushed so far.
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }

    /// Seal into an immutable, word-aligned arena.
    pub fn finish(self) -> BatmapArena {
        let mut words = vec![0u64; words_for(self.bytes.len())].into_boxed_slice();
        let buf = words_as_bytes_mut(&mut words);
        buf[..self.bytes.len()].copy_from_slice(&self.bytes);
        buf[self.bytes.len()..].fill(EMPTY_SLOT);
        BatmapArena {
            params: self.params,
            backing: Backing::Heap(words),
            dir: self.dir.into_boxed_slice(),
            pending_checksum: None,
        }
    }
}

impl<'a> BatmapRef<'a> {
    /// The universe parameters this view's corpus shares.
    pub fn params(&self) -> &'a ParamsHandle {
        self.params
    }

    /// Per-table hash range `r`.
    pub fn range(&self) -> u64 {
        self.r
    }

    /// Width of the representation in bytes (`3·r`).
    pub fn width_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw slot bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Exact membership test (see [`AsSlots::contains`]).
    pub fn contains(&self, x: u32) -> bool {
        AsSlots::contains(self, x)
    }

    /// Enumerate the stored elements (see [`AsSlots::elements`]).
    pub fn elements(&self) -> Vec<u32> {
        AsSlots::elements(self)
    }

    /// Copy this view into an owned [`Batmap`] (the escape hatch when a
    /// set must outlive its arena).
    pub fn to_batmap(&self) -> Batmap {
        Batmap::from_raw_parts(self.params.clone(), self.r, self.bytes.into(), self.len)
    }

    /// `|self ∩ other|` by positional comparison, against any storage.
    ///
    /// # Panics
    /// Panics if the operands come from different universes.
    pub fn intersect_count(&self, other: &impl AsSlots) -> u64 {
        self.try_intersect_count(other)
            .expect("batmaps from different universes")
    }

    /// Fallible [`BatmapRef::intersect_count`].
    pub fn try_intersect_count(&self, other: &impl AsSlots) -> Result<u64, BatmapError> {
        intersect::try_count(self, other)
    }

    /// [`BatmapRef::intersect_count`] with an explicit match-count
    /// backend.
    ///
    /// # Panics
    /// Panics if the operands come from different universes.
    pub fn intersect_count_with(
        &self,
        kernel: &dyn crate::kernel::MatchKernel,
        other: &impl AsSlots,
    ) -> u64 {
        assert_eq!(
            self.params.fingerprint(),
            other.params().fingerprint(),
            "batmaps from different universes"
        );
        intersect::count_with(kernel, self, other)
    }
}

impl AsSlots for BatmapRef<'_> {
    fn params(&self) -> &ParamsHandle {
        self.params
    }
    fn range(&self) -> u64 {
        self.r
    }
    fn slot_bytes(&self) -> &[u8] {
        self.bytes
    }
    fn len(&self) -> usize {
        self.len
    }
}

/// The checked snapshot header (serialized as JSON inside the binary
/// envelope so it stays human-inspectable with `strings`/`head`).
#[derive(Debug, Serialize, Deserialize)]
struct SnapshotHeader {
    /// Full universe parameters, including the advisory kernel backend
    /// and parallelism knobs (neither affects counts).
    params: BatmapParams,
    /// `params.fingerprint()` at write time; re-derived and compared on
    /// load, so a header whose defining scalars were corrupted — or
    /// spliced from another universe — is rejected before any count can
    /// silently disagree.
    fingerprint: u64,
    /// Number of sets in the directory.
    n_sets: u64,
    /// Bytes of backing payload.
    payload_bytes: u64,
    /// FNV-1a over payload then directory bytes.
    checksum: u64,
    /// The serving invariant: counts do not depend on the match-count
    /// backend, so any host may serve this corpus with its widest
    /// available kernel. Always written `true`; readers refuse `false`.
    counts_kernel_independent: bool,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The snapshot envelope's FNV-1a checksum, exposed so wrappers that
/// embed an arena snapshot (the `pairminer` corpus snapshot) can
/// protect their own side tables with the same primitive.
pub fn snapshot_checksum(bytes: &[u8]) -> u64 {
    fnv1a(bytes, FNV_OFFSET)
}

/// Write a file crash-safely: `fill` streams into a sibling temporary
/// file (same directory, so the rename cannot cross filesystems), the
/// file is flushed and fsynced, then atomically renamed over `path`;
/// on Unix the parent directory is fsynced too so the rename itself
/// survives a crash. Any failure removes the temporary file and leaves
/// `path` untouched. Shared by the arena and `pairminer` snapshot
/// writers; the `snapshot.write.rename` fault site sits between fsync
/// and rename — the exact window a mid-write crash occupies.
pub fn atomic_write<F>(path: &std::path::Path, fill: F) -> std::io::Result<()>
where
    F: FnOnce(&mut std::io::BufWriter<&mut std::fs::File>) -> std::io::Result<()>,
{
    use std::sync::atomic::{AtomicU64, Ordering};
    // Unique-per-call sibling name: pid distinguishes processes, the
    // counter distinguishes concurrent writers in this process.
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snapshot".to_string());
    tmp_name.push_str(&format!(".tmp.{}.{}", std::process::id(), seq));
    let tmp = path.with_file_name(tmp_name);

    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        {
            let mut writer = std::io::BufWriter::new(&mut file);
            fill(&mut writer)?;
            writer.flush()?;
        }
        file.sync_all()?;
        hpcutil::fault_point!("snapshot.write.rename", |m: String| {
            Err(std::io::Error::other(m))
        });
        std::fs::rename(&tmp, path)?;
        #[cfg(unix)]
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            // Persist the directory entry; a rename only the page cache
            // saw is still a torn write from the crash's point of view.
            std::fs::File::open(dir)?.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// `read_exact` that classifies an unexpected EOF as
/// [`SnapshotError::Truncated`] naming the section that was cut short
/// — the signature of a torn write — while other I/O failures stay
/// [`SnapshotError::Io`].
fn read_section<R: Read>(r: &mut R, buf: &mut [u8], section: &str) -> Result<(), SnapshotError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated(format!(
                "{section} cut short ({} bytes expected)",
                buf.len()
            ))
        } else {
            SnapshotError::Io(e)
        }
    })
}

/// FNV-1a folded over `bytes`, seeded with `seed` (chain calls to hash
/// multiple regions).
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BatmapParams;
    use crate::Batmap;

    fn params(m: u64) -> ParamsHandle {
        Arc::new(BatmapParams::new(m, 0xA12E))
    }

    fn sets() -> Vec<Vec<u32>> {
        vec![
            (0..900).map(|i| i * 3 % 20_000).collect(),
            (0..50).map(|i| i * 11).collect(),
            vec![],
            (0..2500).map(|i| i * 7 % 20_000).collect(),
        ]
    }

    fn build_arena(p: &ParamsHandle) -> (Vec<Batmap>, BatmapArena) {
        let owned: Vec<Batmap> = sets()
            .iter()
            .map(|s| Batmap::build(p.clone(), s).batmap)
            .collect();
        let mut b = ArenaBuilder::new(p.clone());
        for bm in &owned {
            b.push(bm);
        }
        (owned, b.finish())
    }

    #[test]
    fn views_mirror_owned_batmaps() {
        let p = params(20_000);
        let (owned, arena) = build_arena(&p);
        assert_eq!(arena.len(), owned.len());
        for (i, bm) in owned.iter().enumerate() {
            let v = arena.get(i);
            assert_eq!(v.len(), bm.len());
            assert_eq!(v.range(), bm.range());
            assert_eq!(v.as_bytes(), bm.as_bytes());
            let mut ve = v.elements();
            let mut be = bm.elements();
            ve.sort_unstable();
            be.sort_unstable();
            assert_eq!(ve, be);
        }
    }

    #[test]
    fn views_are_word_aligned_and_counts_agree_both_ways() {
        let p = params(20_000);
        let (owned, arena) = build_arena(&p);
        for i in 0..owned.len() {
            assert_eq!(arena.get(i).as_bytes().as_ptr() as usize % 8, 0);
            for (j, bm) in owned.iter().enumerate() {
                let expect = owned[i].intersect_count(bm);
                assert_eq!(arena.get(i).intersect_count(&arena.get(j)), expect);
                // Mixed storage: view vs owned and owned vs view.
                assert_eq!(arena.get(i).intersect_count(bm), expect);
                assert_eq!(owned[i].intersect_count(&arena.get(j)), expect);
            }
        }
    }

    #[test]
    fn views_as_one_vs_many_candidates() {
        let p = params(20_000);
        let (owned, arena) = build_arena(&p);
        let views = arena.views(0..arena.len());
        let probe = arena.get(3);
        let counts = intersect::count_one_vs_many(&probe, &views);
        for (j, bm) in owned.iter().enumerate() {
            assert_eq!(counts[j], owned[3].intersect_count(bm));
        }
    }

    #[test]
    fn to_batmap_detaches() {
        let p = params(20_000);
        let (owned, arena) = build_arena(&p);
        let detached = arena.get(0).to_batmap();
        drop(arena);
        assert_eq!(detached.intersect_count(&owned[0]), owned[0].len() as u64);
    }

    #[test]
    fn in_place_stage_matches_builder_path() {
        let p = params(20_000);
        let (_, pushed) = build_arena(&p);
        let ranges: Vec<u64> = sets().iter().map(|s| p.range_for(s.len())).collect();
        let mut stage = BatmapArena::with_ranges(p.clone(), &ranges);
        let mut lens = Vec::new();
        {
            let slices = stage.set_slices();
            let mut builder = crate::builder::BatmapBuilder::with_capacity(p.clone(), 0);
            for (s, out) in sets().iter().zip(slices) {
                let mut sorted = s.clone();
                sorted.sort_unstable();
                sorted.dedup();
                builder.reset(sorted.len());
                builder.extend_sorted_dedup(&sorted);
                let outcome = builder.finish_into(out);
                assert!(outcome.failed.is_empty());
                lens.push(outcome.len);
            }
        }
        let staged = stage.finish(&lens);
        assert_eq!(staged.len(), pushed.len());
        for i in 0..staged.len() {
            assert_eq!(staged.get(i).as_bytes(), pushed.get(i).as_bytes());
            assert_eq!(staged.get(i).len(), pushed.get(i).len());
        }
    }

    #[test]
    fn snapshot_roundtrip_is_exact() {
        let p = params(20_000);
        let (owned, arena) = build_arena(&p);
        let mut buf = Vec::new();
        arena.write_to(&mut buf).unwrap();
        let loaded = BatmapArena::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), arena.len());
        assert_eq!(loaded.params().fingerprint(), arena.params().fingerprint());
        for i in 0..arena.len() {
            assert_eq!(loaded.get(i).as_bytes(), arena.get(i).as_bytes());
            assert_eq!(loaded.get(i).len(), arena.get(i).len());
            // Loaded views interoperate with the original owned sets.
            for (j, bm) in owned.iter().enumerate() {
                assert_eq!(
                    loaded.get(i).intersect_count(bm),
                    arena.get(i).intersect_count(&arena.get(j))
                );
            }
        }
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let p = params(20_000);
        let (_, arena) = build_arena(&p);
        let mut buf = Vec::new();
        arena.write_to(&mut buf).unwrap();

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(BatmapArena::read_from(&mut bad.as_slice()).is_err());

        // Bad version.
        let mut bad = buf.clone();
        bad[8] = 99;
        assert!(BatmapArena::read_from(&mut bad.as_slice()).is_err());

        // Corrupted header JSON (flip a byte inside the header region).
        let mut bad = buf.clone();
        bad[20] ^= 0x01;
        assert!(BatmapArena::read_from(&mut bad.as_slice()).is_err());

        // Corrupted payload (checksum catches it).
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(BatmapArena::read_from(&mut bad.as_slice()).is_err());

        // Truncation.
        let bad = &buf[..buf.len() - 16];
        assert!(BatmapArena::read_from(&mut &bad[..]).is_err());

        // The pristine buffer still loads.
        assert!(BatmapArena::read_from(&mut buf.as_slice()).is_ok());
    }

    #[test]
    fn empty_arena_roundtrips() {
        let p = params(1_000);
        let arena = ArenaBuilder::new(p).finish();
        assert!(arena.is_empty());
        let mut buf = Vec::new();
        arena.write_to(&mut buf).unwrap();
        let loaded = BatmapArena::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 0);
    }

    #[test]
    #[should_panic]
    fn builder_rejects_foreign_universe() {
        let a = params(1_000);
        let b = Arc::new(BatmapParams::new(1_000, 0xFFFF_1234));
        let bm = Batmap::build(b, &[1, 2, 3]).batmap;
        ArenaBuilder::new(a).push(&bm);
    }

    fn build_hybrid(p: &ParamsHandle) -> BatmapArena {
        let reprs = [
            SetRepr::Batmap,
            SetRepr::Tidlist,
            SetRepr::Bitmap,
            SetRepr::Bitmap,
        ];
        let mut b = ArenaBuilder::new(p.clone());
        for (s, &repr) in sets().iter().zip(&reprs) {
            b.push_elements(s, repr);
        }
        b.finish()
    }

    #[test]
    fn hybrid_payload_views_report_exact_sets() {
        let p = params(20_000);
        let arena = build_hybrid(&p);
        assert!(!arena.is_all_batmap());
        assert_eq!(arena.repr_histogram(), [1, 2, 1]);
        for (i, s) in sets().iter().enumerate() {
            let mut expect = s.clone();
            expect.sort_unstable();
            expect.dedup();
            let v = arena.payload(i);
            assert_eq!(v.repr(), arena.repr(i));
            assert_eq!(v.len(), expect.len());
            let mut got = v.elements();
            got.sort_unstable();
            assert_eq!(got, expect, "set {i}");
            for &x in expect.iter().take(50) {
                assert!(v.contains(x));
            }
        }
        // The typed column block mirrors per-index payloads.
        let views = arena.payload_views(0..arena.len());
        assert_eq!(views.len(), arena.len());
        for (i, v) in views.iter().enumerate() {
            assert_eq!(v.repr(), arena.repr(i));
        }
    }

    #[test]
    #[should_panic(expected = "use BatmapArena::payload")]
    fn get_refuses_non_batmap_sets() {
        let p = params(20_000);
        build_hybrid(&p).get(1);
    }

    #[test]
    fn hybrid_snapshot_roundtrip_preserves_reprs() {
        let p = params(20_000);
        let arena = build_hybrid(&p);
        let mut buf = Vec::new();
        arena.write_to(&mut buf).unwrap();
        let loaded = BatmapArena::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.repr_histogram(), arena.repr_histogram());
        for i in 0..arena.len() {
            assert_eq!(loaded.repr(i), arena.repr(i));
            let mut a = loaded.payload(i).elements();
            let mut b = arena.payload(i).elements();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "set {i}");
        }
    }

    #[test]
    fn snapshot_rejects_version_1_files() {
        // The version field sits outside the checksum, so rewriting it
        // to the pre-representation-tag version must surface as a clean
        // version rejection — not a checksum panic or a misparse of the
        // 24-byte-entry directory.
        let p = params(20_000);
        let (_, arena) = build_arena(&p);
        let mut buf = Vec::new();
        arena.write_to(&mut buf).unwrap();
        buf[8..12].copy_from_slice(&1u32.to_le_bytes());
        match BatmapArena::read_from(&mut buf.as_slice()) {
            Err(SnapshotError::Format(msg)) => {
                assert!(msg.contains("version 1"), "unexpected message: {msg}");
                assert!(msg.contains("reads 4"), "unexpected message: {msg}");
            }
            other => panic!("expected a version Format error, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_rejects_unknown_repr_tag() {
        let p = params(20_000);
        let arena = build_hybrid(&p);
        let mut buf = Vec::new();
        arena.write_to(&mut buf).unwrap();
        // Locate the directory: magic(8) + version(4) + header_len(4) +
        // header checksum(8) + header JSON, then 32-byte entries, then
        // zero padding to the next 64-byte envelope boundary, then the
        // payload. Poke the first entry's tag and re-seal both
        // checksums — and re-derive the padding, which depends on the
        // resealed header's length — so only the tag check can fire.
        let header_len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
        let dir_start = 24 + header_len;
        let dir_len = arena.len() * 32;
        let payload_start = dir_start + dir_len + payload_pad(header_len, dir_len);
        let mut dir_bytes = buf[dir_start..dir_start + dir_len].to_vec();
        dir_bytes[24..32].copy_from_slice(&7u64.to_le_bytes());
        let payload = &buf[payload_start..];
        let checksum = fnv1a(&dir_bytes, fnv1a(payload, FNV_OFFSET));
        let json = std::str::from_utf8(&buf[24..dir_start])
            .unwrap()
            .to_string();
        let resealed = regex_replace_checksum(&json, checksum);
        let mut patched = buf[..12].to_vec();
        patched.extend_from_slice(&(resealed.len() as u32).to_le_bytes());
        patched.extend_from_slice(&snapshot_checksum(resealed.as_bytes()).to_le_bytes());
        patched.extend_from_slice(resealed.as_bytes());
        patched.extend_from_slice(&dir_bytes);
        let pad = payload_pad(resealed.len(), dir_len);
        patched.extend_from_slice(&[0u8; SET_ALIGN][..pad]);
        patched.extend_from_slice(payload);
        match BatmapArena::read_from(&mut patched.as_slice()) {
            Err(SnapshotError::Format(msg)) => {
                assert!(msg.contains("unknown representation tag"), "{msg}");
            }
            other => panic!("expected a tag Format error, got {other:?}"),
        }
    }

    /// Swap the `"checksum":N` field inside a snapshot header (test
    /// helper; JSON numbers here are plain `u64` decimals).
    fn regex_replace_checksum(json: &str, checksum: u64) -> String {
        let key = "\"checksum\":";
        let start = json.find(key).unwrap() + key.len();
        let end = start
            + json[start..]
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(json.len() - start);
        format!("{}{}{}", &json[..start], checksum, &json[end..])
    }

    #[test]
    fn with_layout_hybrid_stage_matches_builder_path() {
        let p = params(20_000);
        let reprs = [
            SetRepr::Batmap,
            SetRepr::Tidlist,
            SetRepr::Bitmap,
            SetRepr::Bitmap,
        ];
        let normalized: Vec<Vec<u32>> = sets()
            .iter()
            .map(|s| {
                let mut v = s.clone();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let specs: Vec<SetSpec> = normalized
            .iter()
            .zip(&reprs)
            .map(|(s, &repr)| match repr {
                SetRepr::Batmap => SetSpec::batmap(p.range_for(s.len())),
                SetRepr::Bitmap => SetSpec::bitmap(s.len()),
                SetRepr::Tidlist => SetSpec::tidlist(s.len()),
            })
            .collect();
        let mut stage = BatmapArena::with_layout(p.clone(), &specs);
        let mut lens = Vec::new();
        {
            let slices = stage.set_slices();
            let mut builder = crate::builder::BatmapBuilder::with_capacity(p.clone(), 0);
            for ((s, out), &repr) in normalized.iter().zip(slices).zip(&reprs) {
                match repr {
                    SetRepr::Batmap => {
                        builder.reset(s.len());
                        builder.extend_sorted_dedup(s);
                        let outcome = builder.finish_into(out);
                        assert!(outcome.failed.is_empty());
                        lens.push(outcome.len);
                    }
                    SetRepr::Bitmap => {
                        crate::repr::encode_bitmap_into(s, out);
                        lens.push(s.len());
                    }
                    SetRepr::Tidlist => {
                        crate::repr::encode_tidlist_into(s, out);
                        lens.push(s.len());
                    }
                }
            }
        }
        let staged = stage.finish(&lens);
        let pushed = build_hybrid(&p);
        assert_eq!(staged.len(), pushed.len());
        for i in 0..staged.len() {
            assert_eq!(staged.repr(i), pushed.repr(i));
            assert_eq!(staged.payload(i).len(), pushed.payload(i).len());
            let mut a = staged.payload(i).elements();
            let mut b = pushed.payload(i).elements();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "set {i}");
        }
    }

    #[test]
    fn snapshot_payload_starts_64_aligned_in_the_envelope() {
        let p = params(20_000);
        let (_, arena) = build_arena(&p);
        let mut buf = Vec::new();
        arena.write_to(&mut buf).unwrap();
        let header_len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
        let dir_len = arena.len() * 32;
        let payload_start = 24 + header_len + dir_len + payload_pad(header_len, dir_len);
        assert_eq!(payload_start % SET_ALIGN, 0);
        // And the padding really is where the payload's first set
        // window begins: set 0 sits at payload offset 0.
        assert_eq!(
            &buf[payload_start..payload_start + arena.get(0).width_bytes()],
            arena.get(0).as_bytes()
        );
    }

    #[test]
    fn snapshot_load_knob_parses_resolves_and_displays() {
        for (name, load) in [
            ("auto", SnapshotLoad::Auto),
            ("buffered", SnapshotLoad::Buffered),
            ("mmap", SnapshotLoad::Mmap),
        ] {
            assert_eq!(SnapshotLoad::from_name(name), Some(load));
            assert_eq!(load.name(), name);
            assert_eq!(load.to_string(), name);
        }
        assert_eq!(SnapshotLoad::from_name("  MMAP "), Some(SnapshotLoad::Mmap));
        assert_eq!(SnapshotLoad::from_name("teleport"), None);
        // No override and garbage both resolve to the verify-first
        // default; a valid available request wins.
        assert_eq!(SnapshotLoad::resolve_override(None), SnapshotLoad::Buffered);
        assert_eq!(
            SnapshotLoad::resolve_override(Some("nonsense")),
            SnapshotLoad::Buffered
        );
        assert_eq!(
            SnapshotLoad::resolve_override(Some("buffered")),
            SnapshotLoad::Buffered
        );
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert_eq!(
            SnapshotLoad::resolve_override(Some("mmap")),
            SnapshotLoad::Mmap
        );
        // Buffered is available everywhere and resolves to itself.
        assert_eq!(SnapshotLoad::Buffered.resolve(), SnapshotLoad::Buffered);
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    mod mmap_load {
        use super::*;

        fn snapshot_on_disk(tag: &str) -> (Vec<Batmap>, BatmapArena, std::path::PathBuf) {
            let p = params(20_000);
            let (owned, arena) = build_arena(&p);
            let dir = std::env::temp_dir()
                .join(format!("batmap-arena-mmap-{tag}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("corpus.arena");
            arena.write_to_file(&path).unwrap();
            (owned, arena, path)
        }

        fn cleanup(path: &std::path::Path) {
            let _ = std::fs::remove_dir_all(path.parent().unwrap());
        }

        #[test]
        fn mmap_load_is_byte_identical_to_buffered() {
            let (owned, arena, path) = snapshot_on_disk("roundtrip");
            let buffered = BatmapArena::read_from_file(&path).unwrap();
            let mapped = BatmapArena::open_mmap_file(&path).unwrap();
            assert!(!buffered.verification_pending());
            assert!(mapped.verification_pending());
            mapped.verify().unwrap();
            assert_eq!(mapped.len(), arena.len());
            for i in 0..arena.len() {
                assert_eq!(mapped.get(i).as_bytes(), buffered.get(i).as_bytes());
                assert_eq!(mapped.get(i).len(), buffered.get(i).len());
                // Mapped windows keep the arena's 64-byte alignment.
                assert_eq!(mapped.get(i).as_bytes().as_ptr() as usize % SET_ALIGN, 0);
                for bm in &owned {
                    assert_eq!(
                        mapped.get(i).intersect_count(bm),
                        buffered.get(i).intersect_count(bm)
                    );
                }
            }
            // The mapped payload is not heap memory.
            use hpcutil::MemoryFootprint;
            assert!(mapped.heap_bytes() < buffered.heap_bytes());
            cleanup(&path);
        }

        #[test]
        fn mmap_defers_payload_corruption_to_verify() {
            let (_, _, path) = snapshot_on_disk("bitflip");
            // Flip one payload byte (the file's last byte) on disk.
            let mut bytes = std::fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            // The buffered path refuses outright; the mapped path opens
            // (structure is intact) but reports the damage on verify.
            assert!(BatmapArena::read_from_file(&path).is_err());
            let mapped = BatmapArena::open_mmap_file(&path).unwrap();
            assert!(mapped.verification_pending());
            match mapped.verify() {
                Err(SnapshotError::Corrupted(msg)) => {
                    assert!(msg.contains("checksum"), "{msg}")
                }
                other => panic!("expected corruption, got {other:?}"),
            }
            cleanup(&path);
        }

        #[test]
        fn mmap_rejects_truncation_and_header_corruption_eagerly() {
            let (_, _, path) = snapshot_on_disk("truncate");
            let bytes = std::fs::read(&path).unwrap();

            // Truncated payload: caught at open (window bounds check),
            // no verify() needed.
            std::fs::write(&path, &bytes[..bytes.len() - 16]).unwrap();
            match BatmapArena::open_mmap_file(&path) {
                Err(SnapshotError::Truncated(msg)) => {
                    assert!(msg.contains("payload"), "{msg}")
                }
                other => panic!("expected truncation, got {other:?}"),
            }

            // Header bit-flip: caught at open by the header checksum.
            let mut bad = bytes.clone();
            bad[30] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            assert!(BatmapArena::open_mmap_file(&path).is_err());

            // Pristine bytes still map fine.
            std::fs::write(&path, &bytes).unwrap();
            assert!(BatmapArena::open_mmap_file(&path).is_ok());
            cleanup(&path);
        }

        #[test]
        fn read_from_file_with_honours_the_explicit_knob() {
            let (_, _, path) = snapshot_on_disk("knob");
            let buffered = BatmapArena::read_from_file_with(&path, SnapshotLoad::Buffered).unwrap();
            assert!(!buffered.verification_pending());
            let mapped = BatmapArena::read_from_file_with(&path, SnapshotLoad::Mmap).unwrap();
            assert!(mapped.verification_pending());
            assert_eq!(mapped.backing_bytes(), buffered.backing_bytes());
            cleanup(&path);
        }

        #[test]
        fn from_mapped_rejects_misaligned_embedding_offsets() {
            let (_, _, path) = snapshot_on_disk("misaligned");
            let map = Arc::new(crate::mmap::MmapFile::open(&path).unwrap());
            match BatmapArena::from_mapped(map, 8) {
                Err(SnapshotError::Format(msg)) => {
                    assert!(msg.contains("aligned"), "{msg}")
                }
                other => panic!("expected alignment rejection, got {other:?}"),
            }
            cleanup(&path);
        }
    }
}
