//! Positional intersection counting between batmaps (§II, Fig. 1).
//!
//! Equal widths: compare slot `p` against slot `p` for every `p` — a
//! single word-wise sweep.
//!
//! Different widths: the interleaved block layout of §III-A (Fig. 4) is
//! chosen precisely so folding `mod rᵢ` becomes *chunk wrap-around*: the
//! larger batmap is an array of `|Bᵢ|`-byte chunks, each compared
//! against the whole smaller batmap. (Block `g` of `Bⱼ` maps to block
//! `g mod (rᵢ/r₀)` of `Bᵢ` with identical within-block offsets, and
//! blocks are laid out consecutively; see `BatmapParams::slot_of`.)
//!
//! Dispatch discipline: every entry point here selects its backend
//! **once per intersection** (or once per batch) via
//! [`KernelBackend::dispatch`] and then runs fully monomorphized bulk
//! loops — no virtual call ever sits inside a per-word or per-chunk
//! loop. The batched one-vs-many driver ([`count_one_vs_many_into`])
//! additionally groups candidates of the probe's width into blocks so
//! the SIMD backends keep each probe register load amortized across the
//! block (see [`MatchKernel::count_equal_width_many`]); candidates of
//! other widths fall back to the monomorphized pairwise path within the
//! same dispatch.

use crate::batmap::AsSlots;
use crate::kernel::{KernelBackend, KernelDispatch, MatchKernel};
use crate::BatmapError;

/// `|a ∩ b|` using the backend configured on `a`'s universe parameters,
/// monomorphized through one dispatch. Generic over the storage of both
/// operands ([`crate::Batmap`] or [`crate::arena::BatmapRef`]). Callers
/// must have verified the batmaps share a universe (see [`try_count`]).
pub(crate) fn count<A: AsSlots + ?Sized, B: AsSlots + ?Sized>(a: &A, b: &B) -> u64 {
    struct Count<'a, A: ?Sized, B: ?Sized>(&'a A, &'a B);
    impl<A: AsSlots + ?Sized, B: AsSlots + ?Sized> KernelDispatch for Count<'_, A, B> {
        type Output = u64;
        fn run<K: MatchKernel>(self, kernel: K) -> u64 {
            count_pair(&kernel, self.0, self.1)
        }
    }
    a.params().kernel_backend().dispatch(Count(a, b))
}

/// Fallible `|a ∩ b|`: checks the universe fingerprints, then counts
/// with the backend configured on `a`'s parameters. The storage-agnostic
/// entry point behind `Batmap::try_intersect_count` and
/// `BatmapRef::try_intersect_count`.
pub fn try_count<A: AsSlots + ?Sized, B: AsSlots + ?Sized>(
    a: &A,
    b: &B,
) -> Result<u64, BatmapError> {
    if a.params().fingerprint() != b.params().fingerprint() {
        return Err(BatmapError::UniverseMismatch);
    }
    Ok(count(a, b))
}

/// `|a ∩ b|` with an explicit match-count backend. This is the single
/// entry point through which positional counting reaches a kernel; the
/// per-backend bench axis drives it directly. Generic over the kernel
/// type so concrete callers monomorphize (`&dyn MatchKernel` works too —
/// one virtual call per intersection, the bulk loop inside is still
/// branch-free) and over the operand storage.
pub fn count_with<K, A, B>(kernel: &K, a: &A, b: &B) -> u64
where
    K: MatchKernel + ?Sized,
    A: AsSlots + ?Sized,
    B: AsSlots + ?Sized,
{
    count_pair(kernel, a, b)
}

/// The width-ordering + equal/wrapped split shared by every pairwise
/// path.
#[inline]
fn count_pair<K, A, B>(kernel: &K, a: &A, b: &B) -> u64
where
    K: MatchKernel + ?Sized,
    A: AsSlots + ?Sized,
    B: AsSlots + ?Sized,
{
    let (wa, wb) = (a.width_bytes(), b.width_bytes());
    if wa == wb {
        kernel.count_equal_width(a.slot_bytes(), b.slot_bytes())
    } else if wa < wb {
        kernel.count_wrapped(b.slot_bytes(), a.slot_bytes())
    } else {
        kernel.count_wrapped(a.slot_bytes(), b.slot_bytes())
    }
}

/// Count intersections of one batmap against many, through the batched
/// driver: one backend dispatch for the whole batch, equal-width
/// candidates swept in register-blocked groups. Used by the examples
/// and figure binaries; the mining tile executors route their row loops
/// through [`count_one_vs_many_into`] with arena-backed views.
///
/// # Panics
/// Panics if any candidate comes from a different universe.
pub fn count_one_vs_many<A: AsSlots, B: AsSlots>(one: &A, many: &[B]) -> Vec<u64> {
    let mut out = vec![0u64; many.len()];
    count_one_vs_many_into(one, many, &mut out);
    out
}

/// [`count_one_vs_many`] writing into a caller-provided slice (the tile
/// executors reuse their row buffers), with the backend taken from
/// `one`'s universe parameters.
///
/// # Panics
/// Panics if `out.len() != many.len()` or any candidate comes from a
/// different universe.
pub fn count_one_vs_many_into<A: AsSlots, B: AsSlots>(one: &A, many: &[B], out: &mut [u64]) {
    count_one_vs_many_with(one.params().kernel_backend(), one, many, out);
}

/// [`count_one_vs_many_into`] with an explicit backend (the bench
/// batch-size sweep drives each backend directly).
///
/// # Panics
/// Panics if `out.len() != many.len()` or any candidate comes from a
/// different universe.
pub fn count_one_vs_many_with<A: AsSlots, B: AsSlots>(
    backend: KernelBackend,
    one: &A,
    many: &[B],
    out: &mut [u64],
) {
    assert_eq!(out.len(), many.len(), "one output slot per candidate");
    struct Batch<'a, A, B> {
        one: &'a A,
        many: &'a [B],
        out: &'a mut [u64],
    }
    impl<A: AsSlots, B: AsSlots> KernelDispatch for Batch<'_, A, B> {
        type Output = ();
        fn run<K: MatchKernel>(self, kernel: K) {
            one_vs_many_sweep(&kernel, self.one, self.many, self.out);
        }
    }
    backend.dispatch(Batch { one, many, out });
}

/// The monomorphized one-vs-many sweep: candidates that share the
/// probe's width go through the kernel's blocked
/// [`MatchKernel::count_equal_width_many`] (probe words stay hot in
/// registers/L1 across the block); the rest take the pairwise
/// equal/wrapped path — still inside this single dispatch.
fn one_vs_many_sweep<K: MatchKernel, A: AsSlots, B: AsSlots>(
    kernel: &K,
    one: &A,
    many: &[B],
    out: &mut [u64],
) {
    let fp = one.params().fingerprint();
    for b in many {
        assert_eq!(
            b.params().fingerprint(),
            fp,
            "batmaps from different universes"
        );
    }
    let width = one.width_bytes();
    // Common case (the tile executors' row loop: preprocessing sorts
    // batmaps by width, so whole rows usually share one width): every
    // candidate matches the probe — sweep straight into `out` in
    // stack-buffered blocks, no heap allocation per row.
    if many.iter().all(|b| b.width_bytes() == width) {
        const SWEEP_BLOCK: usize = 8;
        for (chunk, out_chunk) in many.chunks(SWEEP_BLOCK).zip(out.chunks_mut(SWEEP_BLOCK)) {
            let mut bytes: [&[u8]; SWEEP_BLOCK] = [&[]; SWEEP_BLOCK];
            for (slot, b) in bytes.iter_mut().zip(chunk) {
                *slot = b.slot_bytes();
            }
            kernel.count_equal_width_many(one.slot_bytes(), &bytes[..chunk.len()], out_chunk);
        }
        return;
    }
    // Mixed widths: blocked sweep for the probe-width candidates,
    // monomorphized pairwise path for the rest, scattered back by
    // index (ordering does not matter for correctness). `Vec::new`
    // defers allocation to the first width match, so a row whose width
    // matches no column stays allocation-free like the fast path.
    let mut eq_idx: Vec<usize> = Vec::new();
    let mut eq_bytes: Vec<&[u8]> = Vec::new();
    for (i, b) in many.iter().enumerate() {
        if b.width_bytes() == width {
            eq_idx.push(i);
            eq_bytes.push(b.slot_bytes());
        } else {
            out[i] = count_pair(kernel, one, b);
        }
    }
    if eq_idx.is_empty() {
        return;
    }
    let mut counts = vec![0u64; eq_bytes.len()];
    kernel.count_equal_width_many(one.slot_bytes(), &eq_bytes, &mut counts);
    for (&i, c) in eq_idx.iter().zip(counts) {
        out[i] = c;
    }
}

/// Exact reference: decode both element sets and intersect them. Used by
/// tests and the verification examples; O(n log n) and branchy — the very
/// thing the paper avoids on the hot path.
pub fn count_by_decoding<A: AsSlots + ?Sized, B: AsSlots + ?Sized>(a: &A, b: &B) -> u64 {
    let mut ea = a.elements();
    ea.sort_unstable();
    let mut count = 0u64;
    for x in b.elements() {
        if ea.binary_search(&x).is_ok() {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use crate::params::BatmapParams;
    use crate::Batmap;
    use std::sync::Arc;

    #[test]
    fn positional_equals_decoded() {
        let p = Arc::new(BatmapParams::new(40_000, 77));
        let a: Vec<u32> = (0..1500).map(|i| i * 3 % 40_000).collect();
        let b: Vec<u32> = (0..400).map(|i| i * 9 % 40_000).collect();
        let ba = Batmap::build(p.clone(), &a).batmap;
        let bb = Batmap::build(p, &b).batmap;
        assert_eq!(ba.intersect_count(&bb), super::count_by_decoding(&ba, &bb));
    }

    #[test]
    fn every_backend_counts_identically() {
        use crate::kernel::available_backends;
        let p = Arc::new(BatmapParams::new(30_000, 5));
        let small: Vec<u32> = (0..200).map(|i| i * 11 % 30_000).collect();
        let large: Vec<u32> = (0..4000).map(|i| i * 7 % 30_000).collect();
        let bs = Batmap::build(p.clone(), &small).batmap;
        let bl = Batmap::build(p, &large).batmap;
        let expect = super::count_by_decoding(&bs, &bl);
        for backend in available_backends() {
            assert_eq!(
                super::count_with(backend.kernel(), &bs, &bl),
                expect,
                "backend {backend} (folded path)"
            );
            assert_eq!(
                super::count_with(backend.kernel(), &bl, &bl),
                bl.len() as u64,
                "backend {backend} (equal-width path)"
            );
        }
    }

    #[test]
    fn params_pinned_backend_is_used() {
        use crate::kernel::KernelBackend;
        for backend in crate::kernel::available_backends() {
            let p = Arc::new(BatmapParams::new(10_000, 9).with_kernel(backend));
            let a = Batmap::build(p.clone(), &(0..800).collect::<Vec<_>>()).batmap;
            let b = Batmap::build(p, &(400..1200).collect::<Vec<_>>()).batmap;
            assert_eq!(a.params().kernel_backend(), backend);
            assert_eq!(a.intersect_count(&b), 400);
        }
        let _ = KernelBackend::Auto; // exercised via the default elsewhere
    }

    #[test]
    fn one_vs_many_matches_pointwise() {
        let p = Arc::new(BatmapParams::new(10_000, 3));
        let probe = Batmap::build(p.clone(), &(0..500).collect::<Vec<_>>()).batmap;
        let many: Vec<Batmap> = (0..5)
            .map(|k| {
                Batmap::build(
                    p.clone(),
                    &(0..(100 * (k + 1))).map(|i| i * 2).collect::<Vec<_>>(),
                )
                .batmap
            })
            .collect();
        let counts = super::count_one_vs_many(&probe, &many);
        for (i, b) in many.iter().enumerate() {
            assert_eq!(counts[i], probe.intersect_count(b));
        }
    }

    #[test]
    fn one_vs_many_batches_per_backend() {
        // Mixed widths: some candidates share the probe's width (the
        // blocked path), some are smaller/larger (the pairwise path).
        let p = Arc::new(BatmapParams::new(50_000, 21));
        let probe = Batmap::build(p.clone(), &(0..1000).collect::<Vec<_>>()).batmap;
        let sizes = [50usize, 1000, 900, 4000, 1000, 1000, 30, 1100, 1000];
        let many: Vec<Batmap> = sizes
            .iter()
            .map(|&n| {
                Batmap::build(p.clone(), &(0..n as u32).map(|i| i * 3).collect::<Vec<_>>()).batmap
            })
            .collect();
        assert!(
            many.iter().any(|b| b.width_bytes() == probe.width_bytes()),
            "fixture must exercise the blocked path"
        );
        let expect: Vec<u64> = many.iter().map(|b| probe.intersect_count(b)).collect();
        for backend in crate::kernel::available_backends() {
            let mut out = vec![0u64; many.len()];
            super::count_one_vs_many_with(backend, &probe, &many, &mut out);
            assert_eq!(out, expect, "backend {backend}");
        }
    }

    #[test]
    #[should_panic]
    fn one_vs_many_rejects_foreign_universe() {
        let p = Arc::new(BatmapParams::new(1_000, 1));
        let q = Arc::new(BatmapParams::new(1_000, 2));
        let probe = Batmap::build(p, &[1, 2, 3]).batmap;
        let alien = Batmap::build(q, &[1, 2, 3]).batmap;
        let _ = super::count_one_vs_many(&probe, &[alien]);
    }
}
