//! Positional intersection counting between batmaps (§II, Fig. 1).
//!
//! Equal widths: compare slot `p` against slot `p` for every `p` — a
//! single word-wise sweep.
//!
//! Different widths: the interleaved block layout of §III-A (Fig. 4) is
//! chosen precisely so folding `mod rᵢ` becomes *chunk wrap-around*: the
//! larger batmap is an array of `|Bᵢ|`-byte chunks, each compared
//! against the whole smaller batmap. (Block `g` of `Bⱼ` maps to block
//! `g mod (rᵢ/r₀)` of `Bᵢ` with identical within-block offsets, and
//! blocks are laid out consecutively; see `BatmapParams::slot_of`.)

use crate::kernel::MatchKernel;
use crate::Batmap;

/// `|a ∩ b|` using the backend configured on `a`'s universe parameters.
/// Callers must have verified the batmaps share a universe (see
/// [`Batmap::try_intersect_count`]).
pub(crate) fn count(a: &Batmap, b: &Batmap) -> u64 {
    count_with(a.params().kernel(), a, b)
}

/// `|a ∩ b|` with an explicit match-count backend. This is the single
/// entry point through which positional counting reaches a kernel; the
/// per-backend bench axis drives it directly.
pub fn count_with(kernel: &dyn MatchKernel, a: &Batmap, b: &Batmap) -> u64 {
    let (small, large) = if a.width_bytes() <= b.width_bytes() {
        (a, b)
    } else {
        (b, a)
    };
    if small.width_bytes() == large.width_bytes() {
        kernel.count_equal_width(small.as_bytes(), large.as_bytes())
    } else {
        kernel.count_wrapped(large.as_bytes(), small.as_bytes())
    }
}

/// Count intersections of one batmap against many (a convenience used by
/// the examples; the mining pipeline has its own tiled driver).
pub fn count_one_vs_many(one: &Batmap, many: &[Batmap]) -> Vec<u64> {
    many.iter().map(|b| one.intersect_count(b)).collect()
}

/// Exact reference: decode both element sets and intersect them. Used by
/// tests and the verification examples; O(n log n) and branchy — the very
/// thing the paper avoids on the hot path.
pub fn count_by_decoding(a: &Batmap, b: &Batmap) -> u64 {
    let mut ea = a.elements();
    ea.sort_unstable();
    let mut count = 0u64;
    for x in b.elements() {
        if ea.binary_search(&x).is_ok() {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use crate::params::BatmapParams;
    use crate::Batmap;
    use std::sync::Arc;

    #[test]
    fn positional_equals_decoded() {
        let p = Arc::new(BatmapParams::new(40_000, 77));
        let a: Vec<u32> = (0..1500).map(|i| i * 3 % 40_000).collect();
        let b: Vec<u32> = (0..400).map(|i| i * 9 % 40_000).collect();
        let ba = Batmap::build(p.clone(), &a).batmap;
        let bb = Batmap::build(p, &b).batmap;
        assert_eq!(ba.intersect_count(&bb), super::count_by_decoding(&ba, &bb));
    }

    #[test]
    fn every_backend_counts_identically() {
        use crate::kernel::ALL_BACKENDS;
        let p = Arc::new(BatmapParams::new(30_000, 5));
        let small: Vec<u32> = (0..200).map(|i| i * 11 % 30_000).collect();
        let large: Vec<u32> = (0..4000).map(|i| i * 7 % 30_000).collect();
        let bs = Batmap::build(p.clone(), &small).batmap;
        let bl = Batmap::build(p, &large).batmap;
        let expect = super::count_by_decoding(&bs, &bl);
        for backend in ALL_BACKENDS {
            assert_eq!(
                super::count_with(backend.kernel(), &bs, &bl),
                expect,
                "backend {backend} (folded path)"
            );
            assert_eq!(
                super::count_with(backend.kernel(), &bl, &bl),
                bl.len() as u64,
                "backend {backend} (equal-width path)"
            );
        }
    }

    #[test]
    fn params_pinned_backend_is_used() {
        use crate::kernel::KernelBackend;
        for backend in crate::kernel::ALL_BACKENDS {
            let p = Arc::new(BatmapParams::new(10_000, 9).with_kernel(backend));
            let a = Batmap::build(p.clone(), &(0..800).collect::<Vec<_>>()).batmap;
            let b = Batmap::build(p, &(400..1200).collect::<Vec<_>>()).batmap;
            assert_eq!(a.params().kernel_backend(), backend);
            assert_eq!(a.intersect_count(&b), 400);
        }
        let _ = KernelBackend::Auto; // exercised via the default elsewhere
    }

    #[test]
    fn one_vs_many_matches_pointwise() {
        let p = Arc::new(BatmapParams::new(10_000, 3));
        let probe = Batmap::build(p.clone(), &(0..500).collect::<Vec<_>>()).batmap;
        let many: Vec<Batmap> = (0..5)
            .map(|k| {
                Batmap::build(
                    p.clone(),
                    &(0..(100 * (k + 1))).map(|i| i * 2).collect::<Vec<_>>(),
                )
                .batmap
            })
            .collect();
        let counts = super::count_one_vs_many(&probe, &many);
        for (i, b) in many.iter().enumerate() {
            assert_eq!(counts[i], probe.intersect_count(b));
        }
    }
}
